//! Property tests for HTTP framing: any body, split any way, framed with
//! any version, reads back byte-identical — including pipelined requests
//! on one connection, and through the zero-copy vectored send path
//! against a pathological writer (1–3 bytes per call, injected EINTR).

use bsoap_transport::http::{
    post_gather, post_gather_vectored, HttpVersion, PostScratch, RequestConfig, RequestReader,
};
use proptest::prelude::*;
use std::io::{self, IoSlice, Write};

/// Writer accepting only 1–3 bytes per call (cycling), periodically
/// failing with `Interrupted` before consuming anything — the worst
/// plausible `write_vectored` behavior a real socket can exhibit.
struct InterruptingDribbler {
    out: Vec<u8>,
    calls: usize,
    /// Every `interrupt_every`-th call errors with EINTR (0 = never;
    /// 1 would fail every call and starve any correct retry loop).
    interrupt_every: usize,
}

impl InterruptingDribbler {
    fn new(interrupt_every: usize) -> Self {
        InterruptingDribbler {
            out: Vec::new(),
            calls: 0,
            interrupt_every,
        }
    }

    fn admit(&mut self) -> io::Result<usize> {
        self.calls += 1;
        if self.interrupt_every != 0 && self.calls.is_multiple_of(self.interrupt_every) {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "EINTR"));
        }
        Ok(1 + self.calls % 3)
    }
}

impl Write for InterruptingDribbler {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let cap = self.admit()?;
        let n = buf.len().min(cap);
        self.out.extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        let mut cap = self.admit()?;
        let mut n = 0;
        for b in bufs {
            if cap == 0 {
                break;
            }
            let take = b.len().min(cap);
            self.out.extend_from_slice(&b[..take]);
            cap -= take;
            n += take;
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn version_strategy() -> impl Strategy<Value = HttpVersion> {
    prop_oneof![
        Just(HttpVersion::Http10),
        Just(HttpVersion::Http11Length),
        Just(HttpVersion::Http11Chunked),
    ]
}

/// Split `body` into segments at the given fractional cut points.
fn split_body(body: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
    let mut idx: Vec<usize> = cuts.iter().map(|&c| c % (body.len() + 1)).collect();
    idx.sort_unstable();
    idx.dedup();
    let mut parts = Vec::new();
    let mut prev = 0;
    for &i in &idx {
        parts.push(body[prev..i].to_vec());
        prev = i;
    }
    parts.push(body[prev..].to_vec());
    parts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn any_split_any_version_round_trips(
        body in proptest::collection::vec(any::<u8>(), 0..4096),
        cuts in proptest::collection::vec(any::<usize>(), 0..6),
        version in version_strategy(),
    ) {
        let parts = split_body(&body, &cuts);
        let slices: Vec<IoSlice<'_>> = parts.iter().map(|p| IoSlice::new(p)).collect();
        let cfg = RequestConfig::loopback(version);
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        post_gather(&mut wire, &cfg, &slices, &mut scratch).unwrap();

        let mut reader = RequestReader::new(&wire[..]);
        let (head, got) = reader.next_request().unwrap().expect("one request");
        prop_assert_eq!(got, body);
        prop_assert_eq!(head.method.as_str(), "POST");
        prop_assert!(reader.next_request().unwrap().is_none());
    }

    #[test]
    fn pipelined_requests_round_trip(
        bodies in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..512),
            1..6
        ),
        version in version_strategy(),
    ) {
        let cfg = RequestConfig::loopback(version);
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        for b in &bodies {
            let slices = [IoSlice::new(b.as_slice())];
            post_gather(&mut wire, &cfg, &slices, &mut scratch).unwrap();
        }
        let mut reader = RequestReader::new(&wire[..]);
        for want in &bodies {
            let (_, got) = reader.next_request().unwrap().expect("request present");
            prop_assert_eq!(&got, want);
        }
        prop_assert!(reader.next_request().unwrap().is_none());
    }

    /// The zero-copy vectored POST produces the exact bytes of the
    /// flattened/sequential path for every body, split, and version —
    /// even through a writer that takes 1–3 bytes per call and injects
    /// `Interrupted` errors mid-drain.
    #[test]
    fn vectored_post_byte_identical_under_dribble_and_eintr(
        body in proptest::collection::vec(any::<u8>(), 0..1024),
        cuts in proptest::collection::vec(any::<usize>(), 0..6),
        version in version_strategy(),
        interrupt_every in prop_oneof![Just(0usize), 2usize..6],
    ) {
        let parts = split_body(&body, &cuts);
        let slices: Vec<IoSlice<'_>> = parts.iter().map(|p| IoSlice::new(p)).collect();
        let cfg = RequestConfig::loopback(version);

        let mut flat = Vec::new();
        let mut head_scratch = Vec::new();
        let want = post_gather(&mut flat, &cfg, &slices, &mut head_scratch).unwrap();

        let mut w = InterruptingDribbler::new(interrupt_every);
        let mut scratch = PostScratch::default();
        let got = post_gather_vectored(&mut w, &cfg, &slices, &mut scratch).unwrap();
        prop_assert_eq!(got, want);
        prop_assert_eq!(w.out, flat);
    }

    #[test]
    fn vectored_response_byte_identical_under_dribble_and_eintr(
        body in proptest::collection::vec(any::<u8>(), 0..1024),
        cuts in proptest::collection::vec(any::<usize>(), 0..4),
        interrupt_every in prop_oneof![Just(0usize), 2usize..6],
    ) {
        use bsoap_transport::http::{render_response, write_response_vectored};
        let parts = split_body(&body, &cuts);
        let slices: Vec<IoSlice<'_>> = parts.iter().map(|p| IoSlice::new(p)).collect();
        let mut flat = Vec::new();
        render_response(&mut flat, 200, "OK", &body);
        let mut w = InterruptingDribbler::new(interrupt_every);
        let mut head_scratch = Vec::new();
        let got = write_response_vectored(&mut w, 200, "OK", &slices, &mut head_scratch).unwrap();
        prop_assert_eq!(got, flat.len());
        prop_assert_eq!(w.out, flat);
    }

    #[test]
    fn truncated_wire_never_panics(
        body in proptest::collection::vec(any::<u8>(), 0..512),
        version in version_strategy(),
        keep_fraction in 0.0f64..1.0,
    ) {
        let cfg = RequestConfig::loopback(version);
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        post_gather(&mut wire, &cfg, &[IoSlice::new(&body)], &mut scratch).unwrap();
        let keep = ((wire.len() as f64) * keep_fraction) as usize;
        let mut reader = RequestReader::new(&wire[..keep]);
        // Truncation yields Ok(None), Ok(Some) only when the cut landed
        // beyond the full request, or a clean error — never a panic.
        let _ = reader.next_request();
    }
}
