//! Property tests for HTTP framing: any body, split any way, framed with
//! any version, reads back byte-identical — including pipelined requests
//! on one connection.

use bsoap_transport::http::{post_gather, HttpVersion, RequestConfig, RequestReader};
use proptest::prelude::*;
use std::io::IoSlice;

fn version_strategy() -> impl Strategy<Value = HttpVersion> {
    prop_oneof![
        Just(HttpVersion::Http10),
        Just(HttpVersion::Http11Length),
        Just(HttpVersion::Http11Chunked),
    ]
}

/// Split `body` into segments at the given fractional cut points.
fn split_body(body: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
    let mut idx: Vec<usize> = cuts.iter().map(|&c| c % (body.len() + 1)).collect();
    idx.sort_unstable();
    idx.dedup();
    let mut parts = Vec::new();
    let mut prev = 0;
    for &i in &idx {
        parts.push(body[prev..i].to_vec());
        prev = i;
    }
    parts.push(body[prev..].to_vec());
    parts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn any_split_any_version_round_trips(
        body in proptest::collection::vec(any::<u8>(), 0..4096),
        cuts in proptest::collection::vec(any::<usize>(), 0..6),
        version in version_strategy(),
    ) {
        let parts = split_body(&body, &cuts);
        let slices: Vec<IoSlice<'_>> = parts.iter().map(|p| IoSlice::new(p)).collect();
        let cfg = RequestConfig::loopback(version);
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        post_gather(&mut wire, &cfg, &slices, &mut scratch).unwrap();

        let mut reader = RequestReader::new(&wire[..]);
        let (head, got) = reader.next_request().unwrap().expect("one request");
        prop_assert_eq!(got, body);
        prop_assert_eq!(head.method.as_str(), "POST");
        prop_assert!(reader.next_request().unwrap().is_none());
    }

    #[test]
    fn pipelined_requests_round_trip(
        bodies in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..512),
            1..6
        ),
        version in version_strategy(),
    ) {
        let cfg = RequestConfig::loopback(version);
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        for b in &bodies {
            let slices = [IoSlice::new(b.as_slice())];
            post_gather(&mut wire, &cfg, &slices, &mut scratch).unwrap();
        }
        let mut reader = RequestReader::new(&wire[..]);
        for want in &bodies {
            let (_, got) = reader.next_request().unwrap().expect("request present");
            prop_assert_eq!(&got, want);
        }
        prop_assert!(reader.next_request().unwrap().is_none());
    }

    #[test]
    fn truncated_wire_never_panics(
        body in proptest::collection::vec(any::<u8>(), 0..512),
        version in version_strategy(),
        keep_fraction in 0.0f64..1.0,
    ) {
        let cfg = RequestConfig::loopback(version);
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        post_gather(&mut wire, &cfg, &[IoSlice::new(&body)], &mut scratch).unwrap();
        let keep = ((wire.len() as f64) * keep_fraction) as usize;
        let mut reader = RequestReader::new(&wire[..keep]);
        // Truncation yields Ok(None), Ok(Some) only when the cut landed
        // beyond the full request, or a clean error — never a panic.
        let _ = reader.next_request();
    }
}
