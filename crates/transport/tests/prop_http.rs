//! Property tests for HTTP framing: any body, split any way, framed with
//! any version, reads back byte-identical — including pipelined requests
//! on one connection, and through the zero-copy vectored send path
//! against a pathological writer (1–3 bytes per call, injected EINTR).

use bsoap_transport::http::{
    post_gather, post_gather_vectored, HttpVersion, PostScratch, RequestConfig, RequestReader,
};
use proptest::prelude::*;
use std::io::{self, IoSlice, Write};

/// Writer accepting only 1–3 bytes per call (cycling), periodically
/// failing with `Interrupted` before consuming anything — the worst
/// plausible `write_vectored` behavior a real socket can exhibit.
struct InterruptingDribbler {
    out: Vec<u8>,
    calls: usize,
    /// Every `interrupt_every`-th call errors with EINTR (0 = never;
    /// 1 would fail every call and starve any correct retry loop).
    interrupt_every: usize,
}

impl InterruptingDribbler {
    fn new(interrupt_every: usize) -> Self {
        InterruptingDribbler {
            out: Vec::new(),
            calls: 0,
            interrupt_every,
        }
    }

    fn admit(&mut self) -> io::Result<usize> {
        self.calls += 1;
        if self.interrupt_every != 0 && self.calls.is_multiple_of(self.interrupt_every) {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "EINTR"));
        }
        Ok(1 + self.calls % 3)
    }
}

impl Write for InterruptingDribbler {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let cap = self.admit()?;
        let n = buf.len().min(cap);
        self.out.extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        let mut cap = self.admit()?;
        let mut n = 0;
        for b in bufs {
            if cap == 0 {
                break;
            }
            let take = b.len().min(cap);
            self.out.extend_from_slice(&b[..take]);
            cap -= take;
            n += take;
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn version_strategy() -> impl Strategy<Value = HttpVersion> {
    prop_oneof![
        Just(HttpVersion::Http10),
        Just(HttpVersion::Http11Length),
        Just(HttpVersion::Http11Chunked),
    ]
}

/// Split `body` into segments at the given fractional cut points.
fn split_body(body: &[u8], cuts: &[usize]) -> Vec<Vec<u8>> {
    let mut idx: Vec<usize> = cuts.iter().map(|&c| c % (body.len() + 1)).collect();
    idx.sort_unstable();
    idx.dedup();
    let mut parts = Vec::new();
    let mut prev = 0;
    for &i in &idx {
        parts.push(body[prev..i].to_vec());
        prev = i;
    }
    parts.push(body[prev..].to_vec());
    parts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn any_split_any_version_round_trips(
        body in proptest::collection::vec(any::<u8>(), 0..4096),
        cuts in proptest::collection::vec(any::<usize>(), 0..6),
        version in version_strategy(),
    ) {
        let parts = split_body(&body, &cuts);
        let slices: Vec<IoSlice<'_>> = parts.iter().map(|p| IoSlice::new(p)).collect();
        let cfg = RequestConfig::loopback(version);
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        post_gather(&mut wire, &cfg, &slices, &mut scratch).unwrap();

        let mut reader = RequestReader::new(&wire[..]);
        let (head, got) = reader.next_request().unwrap().expect("one request");
        prop_assert_eq!(got, body);
        prop_assert_eq!(head.method.as_str(), "POST");
        prop_assert!(reader.next_request().unwrap().is_none());
    }

    #[test]
    fn pipelined_requests_round_trip(
        bodies in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..512),
            1..6
        ),
        version in version_strategy(),
    ) {
        let cfg = RequestConfig::loopback(version);
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        for b in &bodies {
            let slices = [IoSlice::new(b.as_slice())];
            post_gather(&mut wire, &cfg, &slices, &mut scratch).unwrap();
        }
        let mut reader = RequestReader::new(&wire[..]);
        for want in &bodies {
            let (_, got) = reader.next_request().unwrap().expect("request present");
            prop_assert_eq!(&got, want);
        }
        prop_assert!(reader.next_request().unwrap().is_none());
    }

    /// The zero-copy vectored POST produces the exact bytes of the
    /// flattened/sequential path for every body, split, and version —
    /// even through a writer that takes 1–3 bytes per call and injects
    /// `Interrupted` errors mid-drain.
    #[test]
    fn vectored_post_byte_identical_under_dribble_and_eintr(
        body in proptest::collection::vec(any::<u8>(), 0..1024),
        cuts in proptest::collection::vec(any::<usize>(), 0..6),
        version in version_strategy(),
        interrupt_every in prop_oneof![Just(0usize), 2usize..6],
    ) {
        let parts = split_body(&body, &cuts);
        let slices: Vec<IoSlice<'_>> = parts.iter().map(|p| IoSlice::new(p)).collect();
        let cfg = RequestConfig::loopback(version);

        let mut flat = Vec::new();
        let mut head_scratch = Vec::new();
        let want = post_gather(&mut flat, &cfg, &slices, &mut head_scratch).unwrap();

        let mut w = InterruptingDribbler::new(interrupt_every);
        let mut scratch = PostScratch::default();
        let got = post_gather_vectored(&mut w, &cfg, &slices, &mut scratch).unwrap();
        prop_assert_eq!(got, want);
        prop_assert_eq!(w.out, flat);
    }

    #[test]
    fn vectored_response_byte_identical_under_dribble_and_eintr(
        body in proptest::collection::vec(any::<u8>(), 0..1024),
        cuts in proptest::collection::vec(any::<usize>(), 0..4),
        interrupt_every in prop_oneof![Just(0usize), 2usize..6],
    ) {
        use bsoap_transport::http::{render_response, write_response_vectored};
        let parts = split_body(&body, &cuts);
        let slices: Vec<IoSlice<'_>> = parts.iter().map(|p| IoSlice::new(p)).collect();
        let mut flat = Vec::new();
        render_response(&mut flat, 200, "OK", &body);
        let mut w = InterruptingDribbler::new(interrupt_every);
        let mut head_scratch = Vec::new();
        let got = write_response_vectored(&mut w, 200, "OK", &slices, &mut head_scratch).unwrap();
        prop_assert_eq!(got, flat.len());
        prop_assert_eq!(w.out, flat);
    }

    /// One head splitter, three consumers: the buffered `RequestReader`,
    /// the streaming `read_head` + `parse_request_head` pair, and the
    /// event-loop core's incremental `Conn` machine must all split and
    /// parse the same head identically no matter how the wire is
    /// fragmented (all three route through `http::head_end`).
    #[test]
    fn head_fragmentation_parses_identically_on_all_paths(
        path_seg in "[a-zA-Z0-9]{1,12}",
        headers in proptest::collection::vec(
            ("[a-zA-Z][a-zA-Z0-9-]{0,10}", "[a-zA-Z0-9 ._-]{0,20}"),
            0..4
        ),
        body in proptest::collection::vec(any::<u8>(), 0..256),
        caps in proptest::collection::vec(1usize..8, 1..12),
        eintr_every in prop_oneof![Just(0usize), 2usize..5],
    ) {
        use bsoap_transport::http::parse_request_head;
        use bsoap_transport::{read_head, Conn, ConnAction, ConnConfig, ReqBody};
        use bsoap_obs::NullRecorder;
        use std::io::Read;

        let mut wire = format!("POST /{path_seg} HTTP/1.1\r\nHost: prop\r\n").into_bytes();
        for (name, value) in &headers {
            wire.extend_from_slice(format!("x-{name}: {value}\r\n").as_bytes());
        }
        wire.extend_from_slice(format!("Content-Length: {}\r\n\r\n", body.len()).as_bytes());
        wire.extend_from_slice(&body);

        /// Reads at most `caps[i % len]` bytes per call with EINTR noise.
        struct Dribbler {
            data: Vec<u8>,
            pos: usize,
            caps: Vec<usize>,
            calls: usize,
            eintr_every: usize,
        }
        impl Read for Dribbler {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                self.calls += 1;
                if self.eintr_every != 0 && self.calls.is_multiple_of(self.eintr_every) {
                    return Err(io::ErrorKind::Interrupted.into());
                }
                let cap = self.caps[self.calls % self.caps.len()];
                let n = cap.min(buf.len()).min(self.data.len() - self.pos);
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }

        // Path 1: buffered RequestReader.
        let mut reader = RequestReader::new(&wire[..]);
        let (head1, body1) = reader.next_request().unwrap().expect("one request");
        prop_assert_eq!(&body1, &body);

        // Path 2: streaming read_head + parse_request_head over a
        // dribbling, EINTR-injecting reader.
        let mut d = Dribbler {
            data: wire.clone(),
            pos: 0,
            caps: caps.clone(),
            calls: 0,
            eintr_every,
        };
        let (head_bytes, leftover) = read_head(&mut d, 1 << 20).unwrap().expect("head present");
        let head2 = parse_request_head(&head_bytes).unwrap();
        prop_assert_eq!(&head1, &head2, "streaming vs buffered head split");
        // Leftover + remaining stream reconstitutes the body exactly.
        let mut rest = leftover;
        loop {
            let mut scratch = [0u8; 512];
            match d.read(&mut scratch) {
                Ok(0) => break,
                Ok(n) => rest.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("body read failed: {e}"),
            }
        }
        prop_assert_eq!(&rest, &body);

        // Path 3: the event-loop core's incremental Conn machine, fed the
        // same fragmentation.
        let rec = NullRecorder;
        let mut conn = Conn::new(1, ConnConfig::default());
        let mut out = Vec::new();
        let mut d2 = Dribbler {
            data: wire,
            pos: 0,
            caps,
            calls: 0,
            eintr_every,
        };
        conn.on_readable(&mut d2, &rec, &mut out);
        let (head3, body3) = out
            .into_iter()
            .find_map(|a| match a {
                ConnAction::Dispatch(h, ReqBody::Full(b)) => Some((h, b)),
                _ => None,
            })
            .expect("conn dispatched the request");
        prop_assert_eq!(&head1, &head3, "conn vs buffered head split");
        prop_assert_eq!(&body3, &body);
    }

    #[test]
    fn truncated_wire_never_panics(
        body in proptest::collection::vec(any::<u8>(), 0..512),
        version in version_strategy(),
        keep_fraction in 0.0f64..1.0,
    ) {
        let cfg = RequestConfig::loopback(version);
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        post_gather(&mut wire, &cfg, &[IoSlice::new(&body)], &mut scratch).unwrap();
        let keep = ((wire.len() as f64) * keep_fraction) as usize;
        let mut reader = RequestReader::new(&wire[..keep]);
        // Truncation yields Ok(None), Ok(Some) only when the cut landed
        // beyond the full request, or a clean error — never a panic.
        let _ = reader.next_request();
    }
}
