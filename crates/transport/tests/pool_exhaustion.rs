//! Pool exhaustion and breaker contention tests (integration-level).
//!
//! The `max_live` cap must *queue* over-cap checkouts, never refuse them:
//! every queued checkout eventually succeeds once a connection returns,
//! and the pool's counters account for each wait exactly. A deadline
//! turns the queue wait into a typed `TimedOut`, not a hang. And when a
//! tripped breaker's cooldown lapses, exactly one of N racing callers
//! wins the half-open probe slot.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use bsoap_obs::{BreakerState, Clock, Deadline, MonotonicClock, VirtualClock};
use bsoap_transport::pool::{ConnectionPool, PoolConfig, PoolStats};
use bsoap_transport::CircuitBreaker;

/// Accept exactly `n` connections and hold them open (no reads, no
/// writes — a held socket passes the pool's reuse health check) until
/// the returned guard is dropped.
struct HoldingServer {
    addr: SocketAddr,
    release: Option<mpsc::Sender<()>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl HoldingServer {
    fn accept(n: usize) -> Self {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let (tx, rx) = mpsc::channel::<()>();
        let thread = std::thread::spawn(move || {
            let mut held: Vec<TcpStream> = Vec::with_capacity(n);
            for _ in 0..n {
                let (s, _) = listener.accept().unwrap();
                held.push(s);
            }
            // Keep every accepted socket open until the test is done.
            let _ = rx.recv();
            drop(held);
        });
        HoldingServer {
            addr,
            release: Some(tx),
            thread: Some(thread),
        }
    }
}

impl Drop for HoldingServer {
    fn drop(&mut self) {
        drop(self.release.take());
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Spin (no sleeps) until `cond` holds, panicking after `cap`.
fn spin_until(cap: Duration, what: &str, mut cond: impl FnMut() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(start.elapsed() < cap, "timed out spinning for: {what}");
        std::thread::yield_now();
    }
}

/// Over-cap checkouts queue behind the `max_live` gate and every one of
/// them is eventually served — none is refused, none dials past the cap
/// — with exact `waited`/`created`/`reused` accounting.
#[test]
fn max_live_checkouts_queue_not_refuse() {
    let server = HoldingServer::accept(2);
    let pool = ConnectionPool::new(
        server.addr,
        PoolConfig {
            max_idle: 4,
            max_live: Some(2),
            ..PoolConfig::default()
        },
    );

    // Saturate the cap.
    let c1 = pool.checkout().unwrap();
    let c2 = pool.checkout().unwrap();
    assert_eq!(pool.live_count(), 2);
    assert_eq!(pool.stats().created, 2);

    let (done_tx, done_rx) = mpsc::channel::<bool>();
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let tx = done_tx.clone();
            let pool = &pool;
            scope.spawn(move || {
                // Blocks (queued) until a permit frees up; must never
                // error and must never open a third connection.
                let conn = pool.checkout();
                tx.send(conn.is_ok()).unwrap();
                drop(conn); // checkin + release: wakes the next waiter
            });
        }

        // All three must be queued (each counts `waited` exactly once on
        // first observing the cap) while the cap holds firm.
        spin_until(Duration::from_secs(10), "3 queued checkouts", || {
            pool.stats().waited == 3
        });
        assert_eq!(pool.live_count(), 2, "queueing must not dial past the cap");
        assert_eq!(pool.stats().created, 2);

        // Release both; the waiters drain one at a time through the gate.
        drop(c1);
        drop(c2);
        for _ in 0..3 {
            let ok = done_rx
                .recv_timeout(Duration::from_secs(10))
                .expect("queued checkout never completed");
            assert!(ok, "queued checkout was refused");
        }
    });

    // Queued checkouts were served from the checked-in sockets: no new
    // dials, every wait accounted, gate fully released.
    let stats = pool.stats();
    assert_eq!(
        stats,
        PoolStats {
            created: 2,
            reused: 3,
            stale: 0,
            expired: 0,
            retries: 0,
            waited: 3,
        }
    );
    assert_eq!(pool.live_count(), 0);
    assert_eq!(pool.idle_count(), 2);
}

/// A deadline bounds the queue wait: a checkout against a saturated pool
/// fails with a typed `TimedOut` (never hangs, never panics), and the
/// pool still serves the next unbounded checkout once capacity returns.
#[test]
fn saturated_pool_checkout_times_out_typed() {
    let server = HoldingServer::accept(1);
    let pool = ConnectionPool::new(
        server.addr,
        PoolConfig {
            max_live: Some(1),
            ..PoolConfig::default()
        },
    );

    let held = pool.checkout().unwrap();
    assert_eq!(pool.live_count(), 1);

    // Real-clock deadline: the condvar wait itself must give up.
    let clock: Arc<dyn Clock> = Arc::new(MonotonicClock::new());
    let deadline = Deadline::from_budget(clock, Some(Duration::from_millis(25)));
    let err = pool
        .checkout_within(Some(&deadline))
        .err()
        .expect("saturated checkout under a deadline must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);

    // Already-expired deadline on a virtual clock: fails before waiting.
    let vclock = Arc::new(VirtualClock::new());
    let expired = Deadline::from_budget(vclock as Arc<dyn Clock>, Some(Duration::ZERO));
    let err = pool
        .checkout_within(Some(&expired))
        .err()
        .expect("expired deadline must fail immediately");
    assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);

    // Both timed-out attempts observed the cap exactly once each, and a
    // failed wait must not leak a permit or wedge the gate.
    assert_eq!(pool.stats().waited, 2);
    assert_eq!(pool.live_count(), 1);
    drop(held);
    let conn = pool.checkout().expect("pool wedged after timed-out waits");
    assert!(conn.reused, "returned socket should be served from idle");
    assert_eq!(pool.stats().reused, 1);
}

/// The queue wait burns *deadline-clock* time, not wall time: a queued
/// checkout under a virtual-clock deadline must keep waiting while real
/// time passes (the old code handed the deadline's remaining budget to
/// a real-time condvar wait, timing out on the wrong clock), then fail
/// with a typed `TimedOut` promptly once the virtual clock is advanced
/// past the budget.
#[test]
fn queued_checkout_waits_on_the_deadline_clock_not_real_time() {
    let server = HoldingServer::accept(1);
    let pool = ConnectionPool::new(
        server.addr,
        PoolConfig {
            max_live: Some(1),
            ..PoolConfig::default()
        },
    );

    let held = pool.checkout().unwrap();
    assert_eq!(pool.live_count(), 1);

    let vclock = Arc::new(VirtualClock::new());
    let deadline = Deadline::from_budget(
        Arc::clone(&vclock) as Arc<dyn Clock>,
        Some(Duration::from_millis(50)),
    );

    let (tx, rx) = mpsc::channel::<std::io::Result<()>>();
    std::thread::scope(|scope| {
        let pool = &pool;
        let deadline = deadline.clone();
        scope.spawn(move || {
            let res = pool.checkout_within(Some(&deadline)).map(drop);
            tx.send(res).unwrap();
        });

        // The waiter is queued on the gate...
        spin_until(Duration::from_secs(10), "queued checkout", || {
            pool.stats().waited == 1
        });
        // ...and 120ms of *real* time must not expire its 50ms of
        // *virtual* budget.
        std::thread::sleep(Duration::from_millis(120));
        assert!(
            matches!(rx.try_recv(), Err(mpsc::TryRecvError::Empty)),
            "queued checkout gave up on real time despite a frozen virtual deadline"
        );

        // Spend the virtual budget: the waiter must notice promptly.
        vclock.advance(50_000_001);
        let res = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("waiter never observed the advanced virtual clock");
        let err = res.expect_err("expired virtual deadline must fail");
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
    });

    // The failed wait released its queue slot: capacity returning still
    // serves the next checkout.
    assert_eq!(pool.live_count(), 1);
    drop(held);
    let conn = pool
        .checkout()
        .expect("pool wedged after virtual-clock timeout");
    assert!(conn.reused);
}

/// When a tripped breaker's cooldown lapses, exactly one of N racing
/// callers is admitted as the half-open probe; the rest fail fast. The
/// probe's verdict then decides for everyone.
#[test]
fn breaker_half_open_admits_exactly_one_probe() {
    let clock = Arc::new(VirtualClock::new());
    let breaker = CircuitBreaker::new(
        3,
        Duration::from_secs(1),
        Arc::clone(&clock) as Arc<dyn Clock>,
    );

    for _ in 0..3 {
        breaker.record_failure();
    }
    assert_eq!(breaker.state(), BreakerState::Open);
    assert!(!breaker.allow(), "open breaker must fail fast");

    // Cooldown lapses (virtual time only): N threads race for the probe.
    clock.advance(1_000_000_001);
    let n = 8;
    let barrier = Barrier::new(n);
    let admitted: Vec<bool> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let breaker = &breaker;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    breaker.allow()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(
        admitted.iter().filter(|&&a| a).count(),
        1,
        "exactly one racer may hold the half-open probe, got {admitted:?}"
    );
    assert_eq!(breaker.state(), BreakerState::HalfOpen);

    // Probe fails: straight back to Open, cooldown restarts.
    breaker.record_failure();
    assert_eq!(breaker.state(), BreakerState::Open);
    assert!(!breaker.allow());

    // Next cooldown, next probe — this time it succeeds and the breaker
    // closes for everyone.
    clock.advance(1_000_000_001);
    assert!(breaker.allow(), "post-cooldown caller must get the probe");
    assert_eq!(breaker.state(), BreakerState::HalfOpen);
    breaker.record_success();
    assert_eq!(breaker.state(), BreakerState::Closed);
    assert!(breaker.allow());

    // Closed-state failure counting starts from zero again.
    breaker.record_failure();
    breaker.record_failure();
    assert_eq!(breaker.state(), BreakerState::Closed);
    breaker.record_success();
    assert_eq!(breaker.state(), BreakerState::Closed);
}

/// The queued-not-refused guarantee holds on the *server* side too, on
/// both cores: more concurrent keep-alive clients than the core has
/// capacity for (worker pool: `workers` threads; event loop:
/// `max_connections` accepts) all get every request served — over-cap
/// connections wait in the listen backlog, none is refused or dropped.
#[test]
fn overloaded_server_queues_every_client_on_both_cores() {
    use bsoap_transport::http::{post_gather, read_response, HttpVersion, RequestConfig};
    use bsoap_transport::{ServerCore, ServerMode, ServerOptions, TestServer};
    use std::io::{IoSlice, Write};

    let cores = if bsoap_transport::poller::supported() {
        vec![ServerCore::WorkerPool, ServerCore::EventLoop]
    } else {
        vec![ServerCore::WorkerPool]
    };
    for core in cores {
        let server = TestServer::spawn_with(
            ServerMode::Ack,
            ServerOptions {
                core,
                workers: 2,
                event_loop_threads: 1,
                max_connections: 4,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        let clients = 12;
        let reqs_per_conn = 3;

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|i| {
                    scope.spawn(move || {
                        let mut s = TcpStream::connect(addr).unwrap();
                        let cfg = RequestConfig::loopback(HttpVersion::Http11Length);
                        for r in 0..reqs_per_conn {
                            let body = format!("<m>client {i} req {r}</m>");
                            let mut scratch = Vec::new();
                            post_gather(
                                &mut s,
                                &cfg,
                                &[IoSlice::new(body.as_bytes())],
                                &mut scratch,
                            )
                            .unwrap();
                            s.flush().unwrap();
                            let (status, _) = read_response(&mut s).unwrap();
                            assert_eq!(status, 200, "core {core:?} client {i} req {r}");
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });

        let stats = server.stop();
        assert_eq!(
            stats.requests as usize,
            clients * reqs_per_conn,
            "core {core:?}: every queued request must be served"
        );
    }
}

/// Scripted checkout/checkin/reap sequence with exact `PoolStats` at the
/// end — every counter justified by a specific event, idle expiry driven
/// by a virtual clock (no sleeps).
#[test]
fn pool_stats_reconcile_exactly() {
    let server = HoldingServer::accept(3);
    let clock = Arc::new(VirtualClock::new());
    let mut pool = ConnectionPool::new(
        server.addr,
        PoolConfig {
            max_idle: 1,
            idle_timeout: Duration::from_secs(5),
            max_live: None,
        },
    );
    pool.set_clock(Arc::clone(&clock) as Arc<dyn Clock>);

    // Cold checkout dials (created=1); checkin pools it.
    let c = pool.checkout().unwrap();
    assert!(!c.reused);
    drop(c);
    assert_eq!(pool.idle_count(), 1);

    // Warm checkout reuses it (reused=1).
    let c = pool.checkout().unwrap();
    assert!(c.reused);
    drop(c);

    // Two concurrent checkouts: one warm (reused=2), one dials
    // (created=2). On checkin, max_idle=1 retains only one of them.
    let a = pool.checkout().unwrap();
    let b = pool.checkout().unwrap();
    assert!(a.reused);
    assert!(!b.reused);
    drop(a);
    drop(b);
    assert_eq!(pool.idle_count(), 1);

    // The survivor out-sits the idle timeout (virtual time); reap
    // discards it (expired=1).
    clock.advance(6_000_000_000);
    pool.reap();
    assert_eq!(pool.idle_count(), 0);

    // Nothing idle: the next checkout dials again (created=3).
    let c = pool.checkout().unwrap();
    assert!(!c.reused);
    drop(c);

    assert_eq!(
        pool.stats(),
        PoolStats {
            created: 3,
            reused: 2,
            stale: 0,
            expired: 1,
            retries: 0,
            waited: 0,
        }
    );
    // `max_live` unset: the gate never counts.
    assert_eq!(pool.live_count(), 0);
}
