//! Streaming chunk transport: writer/reader round trips under hostile
//! fragmentation, adversarial chunked-decoder fuzz (typed errors, never a
//! panic or unbounded buffer), and the hardened response reader.

use bsoap_transport::http::{
    parse_request_head, read_response, read_response_limited, HttpVersion, RequestConfig,
    RequestReader,
};
use bsoap_transport::stream::{read_head, ChunkedBodyReader, ChunkedBodyWriter};
use proptest::prelude::*;
use std::io::{self, IoSlice, Read};

/// Reader handing out 1–3 bytes per call (cycling), periodically failing
/// with EINTR before consuming anything — the read-side mirror of the
/// PR-2 write dribbler. Chunk size lines split across `read()`s and
/// signal interruptions are exactly what it manufactures.
struct DribbleReader {
    data: Vec<u8>,
    pos: usize,
    calls: usize,
    /// Every `interrupt_every`-th call errors with EINTR (0 = never).
    interrupt_every: usize,
}

impl DribbleReader {
    fn new(data: Vec<u8>, interrupt_every: usize) -> Self {
        DribbleReader {
            data,
            pos: 0,
            calls: 0,
            interrupt_every,
        }
    }
}

impl Read for DribbleReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.calls += 1;
        // interrupt_every <= 1 never interrupts: an every-call EINTR would
        // (correctly) starve any retry loop forever.
        if self.interrupt_every > 1 && self.calls.is_multiple_of(self.interrupt_every) {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "EINTR"));
        }
        let cap = 1 + self.calls % 3;
        let n = cap.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Encode `portions` through a ChunkedBodyWriter, returning the full wire
/// bytes (head + chunked body).
fn stream_out(portions: &[&[u8]]) -> Vec<u8> {
    let cfg = RequestConfig::loopback(HttpVersion::Http11Chunked);
    let mut wire = Vec::new();
    let mut head = Vec::new();
    let mut w = ChunkedBodyWriter::start(&mut wire, &cfg, &mut head, None).unwrap();
    for p in portions {
        w.write_portion(&[IoSlice::new(p)]).unwrap();
    }
    w.finish().unwrap();
    wire
}

/// Decode a chunked body (already past the head) collecting all slices.
fn decode_all(body: &[u8], capacity: usize, max_body: usize) -> io::Result<Vec<u8>> {
    let mut r = ChunkedBodyReader::with_capacity(
        DribbleReader::new(body.to_vec(), 0),
        Vec::new(),
        capacity,
        max_body,
    );
    let mut out = Vec::new();
    while let Some(s) = r.next_slice()? {
        out.extend_from_slice(s);
    }
    Ok(out)
}

#[test]
fn writer_reader_round_trip() {
    let portions: &[&[u8]] = &[b"<a>1</a>", b"<b>22</b>", b"", b"<c>333</c>"];
    let wire = stream_out(portions);
    // Split head from body the way a streaming server would.
    let mut cursor = io::Cursor::new(wire);
    let (head, leftover) = read_head(&mut cursor, 1 << 16).unwrap().unwrap();
    let parsed = parse_request_head(&head).unwrap();
    assert_eq!(parsed.method, "POST");
    assert_eq!(
        parsed.header("transfer-encoding").map(str::to_owned),
        Some("chunked".to_owned())
    );
    let mut r = ChunkedBodyReader::with_capacity(cursor, leftover, 4096, usize::MAX);
    let mut got = Vec::new();
    while let Some(s) = r.next_slice().unwrap() {
        got.extend_from_slice(s);
    }
    assert_eq!(got, b"<a>1</a><b>22</b><c>333</c>".to_vec());
    assert_eq!(r.body_bytes(), got.len());
}

#[test]
fn wire_format_matches_buffered_encoder() {
    // The streaming writer must be byte-identical to what the buffered
    // post_gather path would emit for the same portion list.
    let portions: &[&[u8]] = &[b"hello", b" ", b"world"];
    let wire = stream_out(portions);
    let cfg = RequestConfig::loopback(HttpVersion::Http11Chunked);
    let mut expect = Vec::new();
    let slices: Vec<IoSlice<'_>> = portions.iter().map(|p| IoSlice::new(p)).collect();
    bsoap_transport::http::post_gather(&mut expect, &cfg, &slices, &mut Vec::new()).unwrap();
    assert_eq!(wire, expect);
}

#[test]
fn reader_survives_dribbled_reads_with_eintr() {
    // Size lines split across 1–3-byte reads with periodic EINTR must
    // reassemble, not error (the satellite-2 regression).
    let body = b"4\r\nwiki\r\n10\r\n0123456789abcdef\r\n0\r\n\r\n".to_vec();
    for interrupt_every in [0usize, 2, 3, 5] {
        let mut r = ChunkedBodyReader::with_capacity(
            DribbleReader::new(body.clone(), interrupt_every),
            Vec::new(),
            512,
            usize::MAX,
        );
        let mut got = Vec::new();
        while let Some(s) = r.next_slice().unwrap() {
            got.extend_from_slice(s);
        }
        assert_eq!(
            got,
            b"wiki0123456789abcdef".to_vec(),
            "ie={interrupt_every}"
        );
    }
}

#[test]
fn response_size_line_split_across_reads() {
    // read_response over a dribbling stream: the chunk-size line arrives
    // one byte at a time and EINTR fires periodically.
    let resp =
        b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nb\r\nhello world\r\n0\r\n\r\n";
    for interrupt_every in [0usize, 2, 7] {
        let mut stream = DribbleReader::new(resp.to_vec(), interrupt_every);
        let (status, body) = read_response(&mut stream).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"hello world".to_vec(), "ie={interrupt_every}");
    }
}

#[test]
fn response_caps_enforced_on_chunked_and_length_framed() {
    let chunked = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nff\r\n".to_vec();
    let mut stream = io::Cursor::new(chunked);
    let err = read_response_limited(&mut stream, 1 << 16, 16).unwrap_err();
    assert!(err.to_string().contains("size cap"), "{err}");

    let framed = b"HTTP/1.1 200 OK\r\nContent-Length: 100000\r\n\r\n".to_vec();
    let mut stream = io::Cursor::new(framed);
    let err = read_response_limited(&mut stream, 1 << 16, 16).unwrap_err();
    assert!(err.to_string().contains("size cap"), "{err}");
}

#[test]
fn server_reader_caps_chunked_request_bodies() {
    // Satellite 1: the server-side cap applies to chunk-accumulated
    // bodies, not just Content-Length, and surfaces as the typed
    // TooLarge (-> 400) rather than unbounded buffering.
    let req = b"POST /s HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n\
                20\r\naaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n\
                20\r\naaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n0\r\n\r\n";
    let mut reader = RequestReader::with_limits(io::Cursor::new(req.to_vec()), 1 << 16, 48);
    let err = reader.next_request().unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("size cap"), "{err}");
}

#[test]
fn reader_cumulative_cap_spans_chunks() {
    // Each chunk is under the cap; their sum is not.
    let body = b"8\r\naaaaaaaa\r\n8\r\nbbbbbbbb\r\n0\r\n\r\n";
    let err = decode_all(body, 256, 12).unwrap_err();
    assert!(err.to_string().contains("size cap"), "{err}");
}

#[test]
fn fixed_buffer_never_grows() {
    // A body far larger than the buffer streams through it.
    let payload = vec![b'x'; 1 << 16];
    let mut body = format!("{:x}\r\n", payload.len()).into_bytes();
    body.extend_from_slice(&payload);
    body.extend_from_slice(b"\r\n0\r\n\r\n");
    let mut r =
        ChunkedBodyReader::with_capacity(io::Cursor::new(body), Vec::new(), 1024, usize::MAX);
    let cap = r.capacity();
    let mut total = 0usize;
    while let Some(s) = r.next_slice().unwrap() {
        assert!(s.len() <= cap, "slice exceeds the fixed buffer");
        total += s.len();
    }
    assert_eq!(total, 1 << 16);
    assert_eq!(r.capacity(), cap, "buffer grew");
}

// ---------------------------------------------------------------------
// Adversarial fuzz: typed error or clean parse, never a panic or hang.
// ---------------------------------------------------------------------

fn decode_adversarial(body: &[u8]) -> io::Result<Vec<u8>> {
    decode_all(body, 512, 1 << 20)
}

#[test]
fn truncated_chunk_header_is_typed_error() {
    for body in [
        &b"4"[..],         // size line cut mid-digit
        &b"4\r"[..],       // cut between CR and LF
        &b"4\r\nwi"[..],   // cut inside data
        &b"4\r\nwiki"[..], // cut before data CRLF
        &b"4\r\nwiki\r"[..],
        &b""[..], // nothing at all
    ] {
        let err = decode_adversarial(body).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{body:?}");
    }
}

#[test]
fn missing_final_zero_chunk_is_typed_error() {
    let err = decode_adversarial(b"4\r\nwiki\r\n").unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
}

#[test]
fn oversized_size_line_is_typed_error() {
    // A "size line" that never terminates must be cut off at the line
    // cap, not buffered forever.
    let body = vec![b'a'; 4096];
    let err = decode_adversarial(&body).unwrap_err();
    assert!(err.to_string().contains("size cap"), "{err}");
}

#[test]
fn garbage_size_lines_are_typed_errors() {
    for body in [
        &b"zz\r\nxx\r\n0\r\n\r\n"[..],   // non-hex
        &b"\r\nxx\r\n0\r\n\r\n"[..],     // empty size
        &b"-4\r\nxxxx\r\n0\r\n\r\n"[..], // negative
    ] {
        let err = decode_adversarial(body).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{body:?}");
    }
}

#[test]
fn missing_data_crlf_is_typed_error() {
    let err = decode_adversarial(b"4\r\nwikiXX0\r\n\r\n").unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
}

#[test]
fn garbage_trailers_skipped_or_rejected_cleanly() {
    // Trailer lines are skipped (clean parse)...
    let got = decode_adversarial(b"4\r\nwiki\r\n0\r\nX-Junk: !!!\r\nMore junk\r\n\r\n").unwrap();
    assert_eq!(got, b"wiki".to_vec());
    // ...but a trailer that never terminates is a typed error.
    let mut body = b"4\r\nwiki\r\n0\r\n".to_vec();
    body.extend_from_slice(&vec![b'j'; 4096]);
    let err = decode_adversarial(&body).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    // ...and EOF inside the trailer section is a typed error too.
    let err = decode_adversarial(b"4\r\nwiki\r\n0\r\nX-Junk: v\r\n").unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
}

#[test]
fn chunk_extensions_tolerated() {
    let got = decode_adversarial(b"4;ext=1\r\nwiki\r\n0\r\n\r\n").unwrap();
    assert_eq!(got, b"wiki".to_vec());
}

#[test]
fn read_head_returns_leftover_and_respects_cap() {
    let mut data = b"POST /s HTTP/1.1\r\nHost: x\r\n\r\nBODYBYTES".to_vec();
    let mut cursor = io::Cursor::new(data.clone());
    let (head, leftover) = read_head(&mut cursor, 1 << 16).unwrap().unwrap();
    assert!(head.ends_with(b"\r\n\r\n"));
    // The dribble-free Cursor hands everything over in one read, so the
    // body lands in leftover.
    let mut rest = leftover;
    let mut tail = Vec::new();
    cursor.read_to_end(&mut tail).unwrap();
    rest.extend_from_slice(&tail);
    assert_eq!(rest, b"BODYBYTES".to_vec());

    // Cap: a head that never terminates errors instead of buffering.
    data = vec![b'h'; 4096];
    let err = read_head(&mut io::Cursor::new(data), 128).unwrap_err();
    assert!(err.to_string().contains("size cap"), "{err}");

    // Clean EOF before any byte: keep-alive close.
    assert!(read_head(&mut io::Cursor::new(Vec::new()), 128)
        .unwrap()
        .is_none());
}

proptest! {
    /// Any portion list, any fragmentation, any EINTR cadence: the
    /// decoded body equals the concatenated portions.
    #[test]
    fn round_trip_any_portions(
        portions in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 0..12),
        interrupt_every in 0usize..5,
        capacity in 300usize..2048,
    ) {
        let refs: Vec<&[u8]> = portions.iter().map(|p| p.as_slice()).collect();
        let wire = stream_out(&refs);
        let mut cursor = DribbleReader::new(wire, interrupt_every);
        let (_, leftover) = read_head(&mut cursor, 1 << 16).unwrap().unwrap();
        let mut r = ChunkedBodyReader::with_capacity(cursor, leftover, capacity, usize::MAX);
        let mut got = Vec::new();
        while let Some(s) = r.next_slice().unwrap() {
            got.extend_from_slice(s);
        }
        let expect: Vec<u8> = portions.concat();
        prop_assert_eq!(got, expect);
    }

    /// Arbitrary garbage bytes never panic or hang the decoder: either a
    /// clean parse or a typed error.
    #[test]
    fn arbitrary_bytes_never_panic(body in proptest::collection::vec(any::<u8>(), 0..600)) {
        let _ = decode_adversarial(&body);
    }

    /// Valid chunked streams with a corrupted byte: never a panic; the
    /// result is either an error or a (possibly different) clean body.
    #[test]
    fn single_byte_corruption_never_panics(
        payload in proptest::collection::vec(any::<u8>(), 1..100),
        flip_at in any::<usize>(),
        flip_to in any::<u8>(),
    ) {
        let refs: Vec<&[u8]> = vec![payload.as_slice()];
        let wire = stream_out(&refs);
        let head_end = wire.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        let mut body = wire[head_end..].to_vec();
        let at = flip_at % body.len();
        body[at] = flip_to;
        let _ = decode_adversarial(&body);
    }
}
