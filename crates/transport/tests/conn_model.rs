//! Model-checked connection-lifecycle suite for the event-loop core's
//! per-connection state machine ([`bsoap_transport::Conn`]).
//!
//! `ConnModel` is an independent re-statement of the lifecycle spec
//! (DESIGN §3.13): it predicts every state transition, timer arm/cancel,
//! epoll-interest change, dispatch hand-off, and counter tick — not by
//! re-parsing HTTP, but from *generative* knowledge: the harness builds
//! each request itself, so the model knows exactly where every head and
//! body boundary falls on the wire. A seeded LCG then drives both the
//! real `Conn` (with scripted, syscall-free I/O) and the model through
//! the same randomized event schedule — fragmented reads, EINTR, partial
//! writes, timer firings, EOF truncation, graceful drain — and after
//! every single event the harness asserts:
//!
//! * the real machine's state equals the model's,
//! * the full `(from, to)` transition trace matches exactly,
//! * the set of armed timers matches (the harness plays the timer wheel,
//!   fed only by the real machine's `Arm`/`Cancel` actions),
//! * the last requested epoll interest matches,
//! * every dispatched request's path and body bytes match what was sent.
//!
//! At the end of each schedule the two metrics registries — one ticked by
//! the real machine, one by the model — must produce identical
//! [`EngineStats`] snapshots and identical trace-event sequences.
//!
//! 256 schedules (≥ the 200 the acceptance criteria require), all seeds
//! fixed, no wall-clock dependence: failures replay exactly.

use bsoap_obs::{Counter, EngineStats, Metrics, Recorder, TraceKind};
use bsoap_transport::http::{render_response_head_typed, HttpError};
use bsoap_transport::{Conn, ConnAction, ConnConfig, ConnState, ReqBody, Response, TimerKind};
use std::collections::BTreeSet;
use std::io::{self, Read, Write};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Deterministic randomness: SplitMix64-style LCG, no external crates.
// ---------------------------------------------------------------------------

struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    fn chance(&mut self, one_in: usize) -> bool {
        self.below(one_in) == 0
    }
}

// ---------------------------------------------------------------------------
// Generated wire: requests with known boundaries.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Framing {
    Empty,
    Length,
    Chunked,
}

#[derive(Clone, Debug)]
struct ReqSpec {
    start: usize,
    head_len: usize,
    total_len: usize,
    framing: Framing,
    path: String,
    body: Vec<u8>,
}

impl ReqSpec {
    fn end(&self) -> usize {
        self.start + self.total_len
    }
}

fn gen_requests(rng: &mut Lcg) -> (Vec<u8>, Vec<ReqSpec>) {
    let n = 1 + rng.below(3);
    let mut wire = Vec::new();
    let mut specs = Vec::new();
    for i in 0..n {
        let start = wire.len();
        let path = format!("/op{i}");
        let kind = rng.below(3);
        let (framing, body): (Framing, Vec<u8>) = match kind {
            0 => (Framing::Empty, Vec::new()),
            1 => {
                let len = 1 + rng.below(48);
                (
                    Framing::Length,
                    (0..len).map(|j| b'a' + (j % 26) as u8).collect(),
                )
            }
            _ => {
                let chunks = 1 + rng.below(3);
                let body: Vec<u8> = (0..chunks)
                    .flat_map(|c| {
                        let len = 1 + rng.below(12);
                        (0..len).map(move |j| b'A' + ((c + j) % 26) as u8)
                    })
                    .collect();
                (Framing::Chunked, body)
            }
        };
        let mut head = format!("POST {path} HTTP/1.1\r\nHost: model\r\n");
        match framing {
            Framing::Chunked => head.push_str("Transfer-Encoding: chunked\r\n\r\n"),
            _ => head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len())),
        }
        wire.extend_from_slice(head.as_bytes());
        let head_len = wire.len() - start;
        match framing {
            Framing::Chunked => {
                // Re-chunk the body the same way it was generated: the
                // boundaries themselves don't matter to the model (only
                // the request's total wire length does).
                let mut off = 0;
                let mut rng2 = Lcg::new(start as u64); // deterministic re-split
                while off < body.len() {
                    let take = (1 + rng2.below(12)).min(body.len() - off);
                    wire.extend_from_slice(format!("{take:x}\r\n").as_bytes());
                    wire.extend_from_slice(&body[off..off + take]);
                    wire.extend_from_slice(b"\r\n");
                    off += take;
                }
                wire.extend_from_slice(b"0\r\n\r\n");
            }
            _ => wire.extend_from_slice(&body),
        }
        specs.push(ReqSpec {
            start,
            head_len,
            total_len: wire.len() - start,
            framing,
            path,
            body,
        });
    }
    (wire, specs)
}

// ---------------------------------------------------------------------------
// Scripted I/O: one fragment per readiness event, then WouldBlock.
// ---------------------------------------------------------------------------

enum Frag {
    Bytes(Vec<u8>),
    Eof,
}

/// Reader that yields optional EINTR noise, then one fragment, then
/// `WouldBlock` — exactly one readiness event's worth of input.
struct OneShot {
    eintr: bool,
    frag: Option<Frag>,
}

impl Read for OneShot {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.eintr {
            self.eintr = false;
            return Err(io::ErrorKind::Interrupted.into());
        }
        match self.frag.take() {
            Some(Frag::Bytes(b)) => {
                assert!(b.len() <= buf.len(), "fragment exceeds scratch");
                buf[..b.len()].copy_from_slice(&b);
                Ok(b.len())
            }
            Some(Frag::Eof) => Ok(0),
            None => Err(io::ErrorKind::WouldBlock.into()),
        }
    }
}

/// Writer accepting `cap` bytes this event, then `WouldBlock` (never
/// `Ok(0)`), or failing outright.
struct CapWriter {
    cap: usize,
    fail: bool,
    sunk: Vec<u8>,
}

impl Write for CapWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.fail {
            return Err(io::ErrorKind::BrokenPipe.into());
        }
        if self.cap == 0 {
            return Err(io::ErrorKind::WouldBlock.into());
        }
        let n = buf.len().min(self.cap);
        self.cap -= n;
        self.sunk.extend_from_slice(&buf[..n]);
        Ok(n)
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The model.
// ---------------------------------------------------------------------------

/// Spec-level mirror of `Conn`: same states, same transition rules, fed
/// from generative knowledge of the wire instead of a parser.
struct ConnModel {
    state: ConnState,
    transitions: Vec<(ConnState, ConnState)>,
    armed: BTreeSet<TimerKind>,
    interest: Option<(bool, bool)>,
    /// Bytes of the wire delivered to the machine so far.
    fed: usize,
    /// Index of the next request to complete.
    next_req: usize,
    /// Response bytes still to drain (None = not writing).
    write_remaining: Option<usize>,
    close_after_write: bool,
    draining: bool,
    closed: bool,
    /// Dispatches predicted so far: (path, body).
    dispatched: Vec<(String, Vec<u8>)>,
    cfg_read: Option<Duration>,
    cfg_request: Option<Duration>,
    cfg_idle: Option<Duration>,
    specs: Vec<ReqSpec>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fate {
    Open,
    Completed,
    Evicted,
    IdleReaped,
    BadRequest,
    CleanEof,
    Drained,
    WriteFailed,
}

impl ConnModel {
    fn new(cfg: &ConnConfig, specs: Vec<ReqSpec>) -> ConnModel {
        ConnModel {
            state: ConnState::Idle,
            transitions: Vec::new(),
            armed: BTreeSet::new(),
            interest: None,
            fed: 0,
            next_req: 0,
            write_remaining: None,
            close_after_write: false,
            draining: false,
            closed: false,
            dispatched: Vec::new(),
            cfg_read: cfg.read_timeout,
            cfg_request: cfg.request_timeout,
            cfg_idle: cfg.idle_timeout,
            specs,
        }
    }

    fn reading(&self) -> bool {
        matches!(
            self.state,
            ConnState::Idle
                | ConnState::ReadingHead
                | ConnState::ReadingBody
                | ConnState::ReadingChunked
        )
    }

    fn goto(&mut self, to: ConnState, rec: &Metrics) {
        self.transitions.push((self.state, to));
        rec.add(Counter::ConnStateTransitions, 1);
        self.state = to;
    }

    fn on_accept(&mut self) {
        if self.cfg_idle.is_some() {
            self.armed.insert(TimerKind::IdleReap);
        }
        if self.cfg_read.is_some() {
            self.armed.insert(TimerKind::ReadStall);
        }
    }

    /// The length of the 400 response `bad_request` renders for `err`.
    fn response_len(status: u16, reason: &'static str, body_len: usize) -> usize {
        let mut scratch = Vec::new();
        render_response_head_typed(
            &mut scratch,
            status,
            reason,
            "text/xml; charset=utf-8",
            body_len,
        );
        scratch.len() + body_len
    }

    fn bad_request(&mut self, err: HttpError, rec: &Metrics) {
        rec.add(Counter::ServerBadRequests, 1);
        let ioe: io::Error = err.into();
        self.armed.clear();
        self.write_remaining = Some(Self::response_len(
            400,
            "Bad Request",
            ioe.to_string().len(),
        ));
        self.close_after_write = true;
        self.goto(ConnState::Writing, rec);
        self.interest = Some((false, true));
    }

    fn complete_request(&mut self, rec: &Metrics) {
        let spec = &self.specs[self.next_req];
        self.dispatched.push((spec.path.clone(), spec.body.clone()));
        self.next_req += 1;
        self.armed.remove(&TimerKind::ReadStall);
        self.armed.remove(&TimerKind::RequestBudget);
        self.goto(ConnState::Dispatching, rec);
        self.interest = Some((false, false));
    }

    /// Mirror of `Conn::advance`: consume as far as the fed bytes allow.
    fn run_parse(&mut self, rec: &Metrics) {
        loop {
            match self.state {
                ConnState::Idle => {
                    let Some(spec) = self.specs.get(self.next_req) else {
                        break;
                    };
                    if self.fed > spec.start {
                        self.goto(ConnState::ReadingHead, rec);
                        self.armed.remove(&TimerKind::IdleReap);
                        if self.cfg_request.is_some() {
                            self.armed.insert(TimerKind::RequestBudget);
                        }
                    } else {
                        break;
                    }
                }
                ConnState::ReadingHead => {
                    let spec = self.specs[self.next_req].clone();
                    if self.fed >= spec.start + spec.head_len {
                        match spec.framing {
                            Framing::Empty => self.complete_request(rec),
                            Framing::Length => self.goto(ConnState::ReadingBody, rec),
                            Framing::Chunked => self.goto(ConnState::ReadingChunked, rec),
                        }
                    } else {
                        break;
                    }
                }
                ConnState::ReadingBody | ConnState::ReadingChunked => {
                    if self.fed >= self.specs[self.next_req].end() {
                        self.complete_request(rec);
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
    }

    fn on_readable_bytes(&mut self, n: usize, rec: &Metrics) {
        if !self.reading() {
            return;
        }
        self.fed += n;
        self.run_parse(rec);
        if self.reading() && self.cfg_read.is_some() {
            self.armed.insert(TimerKind::ReadStall);
        }
    }

    fn on_eof(&mut self, rec: &Metrics) -> Fate {
        match self.state {
            ConnState::Idle => {
                self.goto(ConnState::Closing, rec);
                self.close();
                Fate::CleanEof
            }
            ConnState::ReadingHead => {
                self.bad_request(HttpError::BadHead("EOF inside request head"), rec);
                Fate::Open
            }
            ConnState::ReadingBody | ConnState::ReadingChunked => {
                self.bad_request(HttpError::BadFraming("EOF inside request body"), rec);
                Fate::Open
            }
            _ => Fate::Open,
        }
    }

    fn on_dispatch_done(&mut self, resp: &Response, rec: &Metrics) {
        assert_eq!(self.state, ConnState::Dispatching);
        self.write_remaining = Some(Self::response_len(
            resp.status,
            resp.reason,
            resp.body.len(),
        ));
        self.goto(ConnState::Writing, rec);
    }

    fn on_writable(&mut self, cap: usize, fail: bool, rec: &Metrics) -> Fate {
        assert_eq!(self.state, ConnState::Writing);
        if fail {
            self.goto(ConnState::Closing, rec);
            self.close();
            return Fate::WriteFailed;
        }
        let remaining = self.write_remaining.expect("writing implies a response");
        if cap < remaining {
            self.write_remaining = Some(remaining - cap);
            self.interest = Some((false, true));
            return Fate::Open;
        }
        // Response fully drained.
        self.write_remaining = None;
        if self.close_after_write {
            self.goto(ConnState::Closing, rec);
            self.close();
            return Fate::BadRequest;
        }
        if self.draining {
            self.goto(ConnState::Closing, rec);
            self.close();
            return Fate::Drained;
        }
        let leftover = self
            .specs
            .get(self.next_req)
            .map(|s| self.fed > s.start)
            .unwrap_or(false);
        if leftover {
            self.goto(ConnState::ReadingHead, rec);
            if self.cfg_request.is_some() {
                self.armed.insert(TimerKind::RequestBudget);
            }
            if self.cfg_read.is_some() {
                self.armed.insert(TimerKind::ReadStall);
            }
            self.run_parse(rec);
            if self.reading() {
                self.interest = Some((true, false));
            }
        } else {
            self.goto(ConnState::Idle, rec);
            if self.cfg_idle.is_some() {
                self.armed.insert(TimerKind::IdleReap);
            }
            if self.cfg_read.is_some() {
                self.armed.insert(TimerKind::ReadStall);
            }
            self.interest = Some((true, false));
        }
        Fate::Completed
    }

    fn on_timer(&mut self, kind: TimerKind, rec: &Metrics) -> Fate {
        match (kind, self.state) {
            (TimerKind::ReadStall, s) if self.reading() => {
                rec.add(Counter::ServerTimeouts, 1);
                rec.trace(TraceKind::Evict {
                    conn_id: 7,
                    idle: s == ConnState::Idle,
                });
                self.goto(ConnState::Closing, rec);
                self.close();
                Fate::Evicted
            }
            (
                TimerKind::RequestBudget,
                ConnState::ReadingHead | ConnState::ReadingBody | ConnState::ReadingChunked,
            ) => {
                rec.add(Counter::ServerTimeouts, 1);
                rec.trace(TraceKind::Evict {
                    conn_id: 7,
                    idle: false,
                });
                self.goto(ConnState::Closing, rec);
                self.close();
                Fate::Evicted
            }
            (TimerKind::IdleReap, ConnState::Idle) => {
                rec.add(Counter::ServerIdleReaped, 1);
                rec.trace(TraceKind::Evict {
                    conn_id: 7,
                    idle: true,
                });
                self.goto(ConnState::Closing, rec);
                self.close();
                Fate::IdleReaped
            }
            _ => Fate::Open,
        }
    }

    fn set_draining(&mut self, rec: &Metrics) -> Fate {
        self.draining = true;
        if self.state == ConnState::Idle {
            self.goto(ConnState::Closing, rec);
            self.close();
            return Fate::Drained;
        }
        Fate::Open
    }

    fn close(&mut self) {
        // The event loop's teardown cancels every pending deadline.
        self.armed.clear();
        self.closed = true;
    }
}

// ---------------------------------------------------------------------------
// Harness: drives Conn + ConnModel through one schedule and checks parity.
// ---------------------------------------------------------------------------

/// Apply the real machine's actions to the harness's wheel/interest
/// mirrors and collect dispatches; panics on spec violations.
struct Harness {
    wheel: BTreeSet<TimerKind>,
    interest: Option<(bool, bool)>,
    dispatched: Vec<(String, Vec<u8>)>,
    closed: bool,
}

impl Harness {
    fn apply(&mut self, actions: Vec<ConnAction>, cfg: &ConnConfig, seed: u64, step: usize) {
        for a in actions {
            match a {
                ConnAction::Arm(kind, dur) => {
                    let expect = match kind {
                        TimerKind::ReadStall => cfg.read_timeout,
                        TimerKind::RequestBudget => cfg.request_timeout,
                        TimerKind::IdleReap => cfg.idle_timeout,
                    };
                    assert_eq!(
                        Some(dur),
                        expect,
                        "seed {seed} step {step}: {kind:?} armed with the wrong deadline"
                    );
                    self.wheel.insert(kind);
                }
                ConnAction::Cancel(kind) => {
                    self.wheel.remove(&kind);
                }
                ConnAction::Interest { read, write } => {
                    self.interest = Some((read, write));
                }
                ConnAction::Dispatch(head, body) => {
                    let bytes = match body {
                        ReqBody::Full(b) => b,
                        ReqBody::Streamed { .. } => panic!("no sink configured"),
                    };
                    self.dispatched.push((head.path, bytes));
                }
                ConnAction::Responded { .. } => {}
                ConnAction::Close(_) => {
                    // Loop teardown cancels everything for this conn.
                    self.wheel.clear();
                    self.closed = true;
                }
            }
        }
    }
}

fn check_parity(seed: u64, step: usize, conn: &Conn, model: &ConnModel, h: &Harness) {
    assert_eq!(
        conn.state(),
        model.state,
        "seed {seed} step {step}: state diverged"
    );
    assert_eq!(
        conn.transitions(),
        &model.transitions[..],
        "seed {seed} step {step}: transition trace diverged"
    );
    assert_eq!(
        h.wheel, model.armed,
        "seed {seed} step {step}: armed timers diverged"
    );
    assert_eq!(
        h.interest, model.interest,
        "seed {seed} step {step}: epoll interest diverged"
    );
    assert_eq!(
        h.dispatched, model.dispatched,
        "seed {seed} step {step}: dispatched requests diverged"
    );
    assert_eq!(
        h.closed, model.closed,
        "seed {seed} step {step}: close disagreement"
    );
}

/// Run one randomized schedule; returns the terminal fate plus whether
/// any request made it all the way to a fully written response.
fn run_schedule(seed: u64) -> (Fate, bool) {
    let mut rng = Lcg::new(seed);
    let cfg = ConnConfig {
        read_timeout: Some(Duration::from_millis(10)),
        request_timeout: if rng.chance(2) {
            Some(Duration::from_millis(20))
        } else {
            None
        },
        idle_timeout: if rng.chance(2) {
            Some(Duration::from_millis(15))
        } else {
            None
        },
        ..ConnConfig::default()
    };

    let (mut wire, specs) = gen_requests(&mut rng);

    // Truncation: cut the wire and end with EOF. A cut exactly on a
    // request boundary lands while Idle (clean EOF); anywhere else it is
    // mid-request and must draw a 400.
    let truncated = rng.chance(4);
    let mut frags: Vec<Frag> = Vec::new();
    if truncated {
        let cut = if rng.chance(3) {
            // Exactly at the end of some request: clean-EOF coverage.
            specs[rng.below(specs.len())].end()
        } else {
            1 + rng.below(wire.len().saturating_sub(1).max(1))
        };
        wire.truncate(cut);
    }
    // Fragment the wire.
    let mut off = 0;
    while off < wire.len() {
        let take = (1 + rng.below(wire.len() - off)).min(1 + rng.below(64) * 8);
        let take = take.max(1).min(wire.len() - off);
        frags.push(Frag::Bytes(wire[off..off + take].to_vec()));
        off += take;
    }
    if truncated {
        frags.push(Frag::Eof);
    }
    frags.reverse(); // pop from the back

    let real_metrics = Metrics::new();
    let model_metrics = Metrics::new();
    let mut conn = Conn::new(7, cfg.clone());
    let mut model = ConnModel::new(&cfg, specs.clone());
    let mut h = Harness {
        wheel: BTreeSet::new(),
        interest: None,
        dispatched: Vec::new(),
        closed: false,
    };

    let mut out = Vec::new();
    conn.on_accept(&mut out);
    h.apply(std::mem::take(&mut out), &cfg, seed, 0);
    model.on_accept();
    check_parity(seed, 0, &conn, &model, &h);

    let mut fate = Fate::Open;
    let mut any_completed = false;
    let mut drained_once = false;
    for step in 1..=600 {
        if model.closed {
            break;
        }
        // Build the weighted choice list from the model's view (parity
        // with the real machine is asserted each step).
        #[derive(Clone, Copy)]
        enum Ev {
            Feed,
            Timer,
            DispatchDone,
            Writable,
            WriteError,
            Drain,
        }
        let mut choices: Vec<Ev> = Vec::new();
        if model.reading() && !frags.is_empty() {
            choices.extend([Ev::Feed; 6]);
        }
        if model.state == ConnState::Dispatching {
            choices.extend([Ev::DispatchDone; 6]);
        }
        if model.state == ConnState::Writing {
            choices.extend([Ev::Writable; 6]);
            if rng.chance(12) {
                choices.push(Ev::WriteError);
            }
        }
        if !h.wheel.is_empty() {
            choices.push(Ev::Timer);
        }
        if !drained_once && rng.chance(40) {
            choices.push(Ev::Drain);
        }
        if choices.is_empty() {
            break; // nothing left to do and no timer to fire
        }
        let ev = choices[rng.below(choices.len())];
        match ev {
            Ev::Feed => {
                let frag = frags.pop().unwrap();
                let n = match &frag {
                    Frag::Bytes(b) => b.len(),
                    Frag::Eof => 0,
                };
                let is_eof = matches!(frag, Frag::Eof);
                let mut io = OneShot {
                    eintr: rng.chance(6),
                    frag: Some(frag),
                };
                conn.on_readable(&mut io, &real_metrics, &mut out);
                h.apply(std::mem::take(&mut out), &cfg, seed, step);
                if is_eof {
                    let f = model.on_eof(&model_metrics);
                    if model.closed {
                        fate = f;
                    }
                } else {
                    model.on_readable_bytes(n, &model_metrics);
                }
            }
            Ev::Timer => {
                let armed: Vec<TimerKind> = h.wheel.iter().copied().collect();
                let kind = armed[rng.below(armed.len())];
                // A fired deadline leaves the wheel before delivery.
                h.wheel.remove(&kind);
                model.armed.remove(&kind);
                conn.on_timer(kind, &real_metrics, &mut out);
                h.apply(std::mem::take(&mut out), &cfg, seed, step);
                let f = model.on_timer(kind, &model_metrics);
                if model.closed {
                    fate = f;
                }
            }
            Ev::DispatchDone => {
                let len = rng.below(61);
                let body: Vec<u8> = std::iter::repeat_n(b'x', len).collect();
                let resp = Response::xml(200, "OK", body);
                conn.on_dispatch_done(resp.clone(), &real_metrics);
                model.on_dispatch_done(&resp, &model_metrics);
            }
            Ev::Writable => {
                let cap = match rng.below(3) {
                    0 => 1 + rng.below(16),
                    1 => 64,
                    _ => usize::MAX,
                };
                let mut w = CapWriter {
                    cap,
                    fail: false,
                    sunk: Vec::new(),
                };
                conn.on_writable(&mut w, &real_metrics, &mut out);
                h.apply(std::mem::take(&mut out), &cfg, seed, step);
                let f = model.on_writable(cap, false, &model_metrics);
                if f == Fate::Completed {
                    any_completed = true;
                }
                if model.closed {
                    fate = f;
                }
            }
            Ev::WriteError => {
                let mut w = CapWriter {
                    cap: 0,
                    fail: true,
                    sunk: Vec::new(),
                };
                conn.on_writable(&mut w, &real_metrics, &mut out);
                h.apply(std::mem::take(&mut out), &cfg, seed, step);
                fate = model.on_writable(0, true, &model_metrics);
            }
            Ev::Drain => {
                drained_once = true;
                conn.set_draining(&real_metrics, &mut out);
                h.apply(std::mem::take(&mut out), &cfg, seed, step);
                let f = model.set_draining(&model_metrics);
                if model.closed {
                    fate = f;
                }
            }
        }
        check_parity(seed, step, &conn, &model, &h);
    }

    // Final oracle: identical metrics snapshots and trace sequences.
    let real_snap = EngineStats::snapshot(&real_metrics);
    let model_snap = EngineStats::snapshot(&model_metrics);
    assert_eq!(
        real_snap, model_snap,
        "seed {seed}: metrics snapshots diverged"
    );
    let (real_trace, _) = real_metrics.trace_ring().snapshot();
    let (model_trace, _) = model_metrics.trace_ring().snapshot();
    let real_kinds: Vec<TraceKind> = real_trace.into_iter().map(|e| e.kind).collect();
    let model_kinds: Vec<TraceKind> = model_trace.into_iter().map(|e| e.kind).collect();
    assert_eq!(
        real_kinds, model_kinds,
        "seed {seed}: trace sequences diverged"
    );
    (fate, any_completed)
}

/// The headline test: 256 randomized schedules, every one checked for
/// exact transition/timer/interest/dispatch/metrics parity against the
/// model, plus coverage assertions so the schedule generator cannot
/// silently stop exercising a lifecycle class.
#[test]
fn model_checked_connection_lifecycles_256_schedules() {
    let mut completed = 0u32;
    let mut evicted = 0u32;
    let mut reaped = 0u32;
    let mut bad = 0u32;
    let mut clean = 0u32;
    let mut drained = 0u32;
    let mut write_failed = 0u32;
    for i in 0..256u64 {
        let (fate, any_completed) = run_schedule(i);
        if any_completed {
            completed += 1;
        }
        match fate {
            Fate::Completed | Fate::Open => {}
            Fate::Evicted => evicted += 1,
            Fate::IdleReaped => reaped += 1,
            Fate::BadRequest => bad += 1,
            Fate::CleanEof => clean += 1,
            Fate::Drained => drained += 1,
            Fate::WriteFailed => write_failed += 1,
        }
    }
    assert!(completed > 0, "no schedule completed a request");
    assert!(evicted > 0, "no schedule exercised timer eviction");
    assert!(reaped > 0, "no schedule exercised the idle reaper");
    assert!(bad > 0, "no schedule exercised truncation → 400");
    assert!(clean > 0, "no schedule exercised clean EOF");
    assert!(drained > 0, "no schedule exercised graceful drain");
    assert!(write_failed > 0, "no schedule exercised write failure");
}

/// Deterministic spot-check: one fully scripted happy-path schedule whose
/// exact transition trace is written out by hand — a readable anchor for
/// the randomized suite above.
#[test]
fn scripted_keep_alive_lifecycle_matches_spec_trace() {
    let cfg = ConnConfig {
        read_timeout: Some(Duration::from_millis(10)),
        request_timeout: Some(Duration::from_millis(20)),
        idle_timeout: Some(Duration::from_millis(15)),
        ..ConnConfig::default()
    };
    let rec = Metrics::new();
    let mut conn = Conn::new(1, cfg);
    let mut out = Vec::new();
    conn.on_accept(&mut out);
    let mut io = OneShot {
        eintr: false,
        frag: Some(Frag::Bytes(
            b"POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi".to_vec(),
        )),
    };
    conn.on_readable(&mut io, &rec, &mut out);
    conn.on_dispatch_done(Response::xml(200, "OK", b"<ok/>".to_vec()), &rec);
    let mut w = CapWriter {
        cap: usize::MAX,
        fail: false,
        sunk: Vec::new(),
    };
    conn.on_writable(&mut w, &rec, &mut out);
    let mut io2 = OneShot {
        eintr: false,
        frag: Some(Frag::Eof),
    };
    conn.on_readable(&mut io2, &rec, &mut out);
    use ConnState::*;
    assert_eq!(
        conn.transitions(),
        &[
            (Idle, ReadingHead),
            (ReadingHead, ReadingBody),
            (ReadingBody, Dispatching),
            (Dispatching, Writing),
            (Writing, Idle),
            (Idle, Closing),
        ]
    );
    assert!(w.sunk.starts_with(b"HTTP/1.1 200 OK\r\n"));
    assert!(w.sunk.ends_with(b"<ok/>"));
    let snap = EngineStats::snapshot(&rec);
    assert_eq!(snap.get(Counter::ConnStateTransitions), 6);
    assert_eq!(snap.get(Counter::ServerBadRequests), 0);
    assert_eq!(snap.get(Counter::ServerTimeouts), 0);
}
