//! Readiness-driven server core: nonblocking listener + epoll loops +
//! per-connection state machines + a small dispatch pool.
//!
//! Topology: `loops` threads each own a [`Poller`], a [`TimerWheel`], and
//! a map of connections. Loop 0 additionally owns the listener and
//! round-robins accepted sockets across loops (cross-loop handoff via an
//! injection queue plus an eventfd wake). Complete requests are pushed
//! onto one shared bounded-pending dispatch queue feeding `dispatchers`
//! CPU workers that run the handler — overload therefore stays
//! queued-not-refused exactly like the worker-pool core, but idle
//! keep-alive connections now cost a map entry instead of a pinned
//! thread.
//!
//! All protocol logic lives in [`Conn`] (sans-io); this module only moves
//! bytes, timers, and queue entries. Timer deadlines read the metrics
//! clock, so a `VirtualClock` drives eviction in tests; `epoll_wait` is
//! capped at 50 ms real time so virtual-clock advances are observed
//! promptly.
//!
//! Graceful drain (`stop`): stop accepting, close idle connections,
//! finish in-flight requests, then force-close whatever remains at the
//! drain deadline — the worker-pool contract, re-implemented on
//! readiness.

use crate::conn::{Conn, ConnAction, ConnConfig, ReqBody, Response};
use crate::http::RequestHead;
use crate::poller::{Interest, PollEvent, Poller, WakeFd};
use crate::timer::{TimerKind, TimerWheel};
use bsoap_obs::{Counter, Gauge, HistId, Metrics, NullRecorder, Recorder, TraceKind};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Token of the listener on loop 0.
const TOKEN_LISTEN: u64 = 0;
/// Token of each loop's wake fd.
const TOKEN_WAKE: u64 = 1;
/// First connection token.
const TOKEN_CONN_BASE: u64 = 2;

/// Request handler run on the dispatch pool.
pub type Handler = Arc<dyn Fn(&RequestHead, ReqBody) -> Response + Send + Sync>;

/// What the loops do with connection bytes.
#[derive(Clone)]
pub enum ServeMode {
    /// Parse HTTP requests and dispatch them to `handler`.
    Http {
        /// Produces the response for each complete request.
        handler: Handler,
    },
    /// No protocol: count every byte read (the `ServerMode::Discard`
    /// contract).
    Discard {
        /// Called with each read's byte count.
        on_bytes: Arc<dyn Fn(u64) + Send + Sync>,
    },
}

/// Tuning for [`EventLoopServer::serve`].
#[derive(Clone)]
pub struct EventLoopOptions {
    /// Event-loop threads (≥ 1).
    pub loops: usize,
    /// Dispatch workers running the handler.
    pub dispatchers: usize,
    /// Accept cap: beyond this, new connections wait in the listen
    /// backlog (queued, not refused).
    pub max_connections: usize,
    /// How long `stop` waits for in-flight work before force-closing.
    pub drain_deadline: Duration,
    /// Per-connection limits, timeouts, and optional body sink.
    pub conn: ConnConfig,
}

impl Default for EventLoopOptions {
    fn default() -> Self {
        EventLoopOptions {
            loops: 2,
            dispatchers: 4,
            max_connections: 8192,
            drain_deadline: Duration::from_secs(2),
            conn: ConnConfig::default(),
        }
    }
}

fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(|p| p.into_inner())
}

/// One pending request for the dispatch pool.
struct Job {
    loop_idx: usize,
    token: u64,
    head: RequestHead,
    body: ReqBody,
}

#[derive(Default)]
struct DqState {
    jobs: VecDeque<Job>,
    closed: bool,
    peak: usize,
}

/// Bounded-pending dispatch queue (bounded by `max_connections`: each
/// connection holds at most one in-flight request).
#[derive(Default)]
struct DispatchQueue {
    state: Mutex<DqState>,
    ready: Condvar,
}

impl DispatchQueue {
    /// Returns the depth including the new job.
    fn push(&self, job: Job) -> usize {
        let mut st = relock(self.state.lock());
        st.jobs.push_back(job);
        let depth = st.jobs.len();
        st.peak = st.peak.max(depth);
        self.ready.notify_one();
        depth
    }

    fn pop(&self) -> Option<Job> {
        let mut st = relock(self.state.lock());
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = relock(self.ready.wait(st));
        }
    }

    fn close(&self) {
        relock(self.state.lock()).closed = true;
        self.ready.notify_all();
    }

    fn peak(&self) -> usize {
        relock(self.state.lock()).peak
    }
}

/// Cross-thread mailbox of one loop.
struct LoopShared {
    /// Sockets accepted by loop 0, destined for this loop.
    injected: Mutex<Vec<(u64, TcpStream)>>,
    /// Finished responses routed back from the dispatch pool.
    completions: Mutex<Vec<(u64, Response)>>,
    wake: WakeFd,
}

struct Shared {
    stop: AtomicBool,
    abandon: AtomicBool,
    drain_traced: AtomicBool,
    listener_parked: AtomicBool,
    conn_count: AtomicU64,
    accepted: AtomicU64,
    next_token: AtomicU64,
    next_loop: AtomicUsize,
    max_connections: usize,
    rec: Arc<dyn Recorder>,
    dispatch: DispatchQueue,
    loops: Vec<LoopShared>,
    live_loops: Mutex<usize>,
    drained: Condvar,
}

impl Shared {
    fn wake_all(&self) {
        for l in &self.loops {
            l.wake.wake();
        }
    }
}

/// Handle to a running event-loop server.
pub struct EventLoopServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    loop_threads: Vec<JoinHandle<()>>,
    dispatch_threads: Vec<JoinHandle<()>>,
    drain_deadline: Duration,
    stopped: bool,
}

impl EventLoopServer {
    /// Start the loops and (for [`ServeMode::Http`]) the dispatch pool.
    /// Fails with `Unsupported` where epoll is unavailable.
    pub fn serve(
        listener: TcpListener,
        opts: EventLoopOptions,
        metrics: Option<Arc<Metrics>>,
        mode: ServeMode,
    ) -> io::Result<EventLoopServer> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let nloops = opts.loops.max(1);
        let rec: Arc<dyn Recorder> = match &metrics {
            Some(m) => m.clone(),
            None => Arc::new(NullRecorder),
        };

        let mut loops = Vec::with_capacity(nloops);
        let mut pollers = Vec::with_capacity(nloops);
        for _ in 0..nloops {
            loops.push(LoopShared {
                injected: Mutex::new(Vec::new()),
                completions: Mutex::new(Vec::new()),
                wake: WakeFd::new()?,
            });
            pollers.push(Poller::new()?);
        }

        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            abandon: AtomicBool::new(false),
            drain_traced: AtomicBool::new(false),
            listener_parked: AtomicBool::new(false),
            conn_count: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            next_token: AtomicU64::new(TOKEN_CONN_BASE),
            next_loop: AtomicUsize::new(0),
            max_connections: opts.max_connections.max(1),
            rec,
            dispatch: DispatchQueue::default(),
            loops,
            live_loops: Mutex::new(nloops),
            drained: Condvar::new(),
        });

        let mut loop_threads = Vec::with_capacity(nloops);
        let mut listener_slot = Some(listener);
        for (idx, poller) in pollers.into_iter().enumerate() {
            let shared = shared.clone();
            let mode = mode.clone();
            let conn_cfg = opts.conn.clone();
            let listener = if idx == 0 { listener_slot.take() } else { None };
            loop_threads.push(
                thread::Builder::new()
                    .name(format!("bsoap-el-{idx}"))
                    .spawn(move || {
                        LoopThread::new(idx, shared.clone(), poller, listener, mode, conn_cfg)
                            .run();
                        let mut live = relock(shared.live_loops.lock());
                        *live -= 1;
                        shared.drained.notify_all();
                    })?,
            );
        }

        let mut dispatch_threads = Vec::new();
        if let ServeMode::Http { handler } = &mode {
            for i in 0..opts.dispatchers.max(1) {
                let shared = shared.clone();
                let handler = handler.clone();
                dispatch_threads.push(
                    thread::Builder::new()
                        .name(format!("bsoap-eld-{i}"))
                        .spawn(move || {
                            while let Some(job) = shared.dispatch.pop() {
                                let resp = handler(&job.head, job.body);
                                relock(shared.loops[job.loop_idx].completions.lock())
                                    .push((job.token, resp));
                                shared.loops[job.loop_idx].wake.wake();
                            }
                        })?,
                );
            }
        }

        Ok(EventLoopServer {
            addr,
            shared,
            loop_threads,
            dispatch_threads,
            drain_deadline: opts.drain_deadline,
            stopped: false,
        })
    }

    /// Bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total connections accepted.
    pub fn connections(&self) -> u64 {
        self.shared.accepted.load(Ordering::Relaxed)
    }

    /// Connections currently open.
    pub fn open_connections(&self) -> u64 {
        self.shared.conn_count.load(Ordering::Relaxed)
    }

    /// Deepest the pending-dispatch queue ever got.
    pub fn peak_queue_depth(&self) -> usize {
        self.shared.dispatch.peak()
    }

    /// Graceful drain: finish in-flight requests, close idle, force the
    /// rest at the drain deadline.
    pub fn stop(&mut self) {
        if self.stopped {
            return;
        }
        self.stopped = true;
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.wake_all();

        let deadline = Instant::now() + self.drain_deadline;
        {
            let mut live = relock(self.shared.live_loops.lock());
            while *live > 0 {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = self
                    .shared
                    .drained
                    .wait_timeout(live, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                live = guard;
            }
            if *live > 0 {
                self.shared.abandon.store(true, Ordering::SeqCst);
                self.shared.wake_all();
            }
        }
        for t in self.loop_threads.drain(..) {
            let _ = t.join();
        }
        self.shared.dispatch.close();
        for t in self.dispatch_threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for EventLoopServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One registered connection.
enum Entry {
    Http {
        conn: Box<Conn>,
        sock: TcpStream,
        interest: Interest,
        /// Clock reading when the current request was dispatched.
        start_ns: u64,
    },
    Discard {
        sock: TcpStream,
    },
}

struct LoopThread {
    idx: usize,
    shared: Arc<Shared>,
    poller: Poller,
    listener: Option<TcpListener>,
    listener_registered: bool,
    mode: ServeMode,
    conn_cfg: ConnConfig,
    conns: HashMap<u64, Entry>,
    wheel: TimerWheel,
    stop_seen: bool,
}

impl LoopThread {
    fn new(
        idx: usize,
        shared: Arc<Shared>,
        poller: Poller,
        listener: Option<TcpListener>,
        mode: ServeMode,
        conn_cfg: ConnConfig,
    ) -> LoopThread {
        LoopThread {
            idx,
            shared,
            poller,
            listener,
            listener_registered: false,
            mode,
            conn_cfg,
            conns: HashMap::new(),
            wheel: TimerWheel::new(),
            stop_seen: false,
        }
    }

    fn rec(&self) -> &dyn Recorder {
        &*self.shared.rec
    }

    fn run(&mut self) {
        if self
            .poller
            .add(
                &self.shared.loops[self.idx].wake,
                TOKEN_WAKE,
                Interest::READ,
            )
            .is_err()
        {
            return;
        }
        if let Some(listener) = &self.listener {
            if self
                .poller
                .add(listener, TOKEN_LISTEN, Interest::READ)
                .is_err()
            {
                return;
            }
            self.listener_registered = true;
        }

        let mut events: Vec<PollEvent> = Vec::new();
        let mut expired: Vec<(u64, TimerKind)> = Vec::new();
        loop {
            // Re-admit accepts if the cap freed up.
            if self.listener.is_some()
                && !self.listener_registered
                && !self.shared.stop.load(Ordering::SeqCst)
                && self.shared.conn_count.load(Ordering::Relaxed)
                    < self.shared.max_connections as u64
            {
                self.unpark_listener();
            }

            let timeout = self.wait_timeout();
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                break;
            }

            for &ev in events.iter() {
                match ev.token {
                    TOKEN_WAKE => self.shared.loops[self.idx].wake.drain(),
                    TOKEN_LISTEN => self.accept_ready(),
                    token => self.conn_ready(token, ev),
                }
            }

            self.take_injected();
            self.take_completions();
            self.fire_timers(&mut expired);

            if self.shared.stop.load(Ordering::SeqCst) && !self.stop_seen {
                self.enter_drain();
            }
            if self.shared.abandon.load(Ordering::SeqCst) {
                let tokens: Vec<u64> = self.conns.keys().copied().collect();
                for t in tokens {
                    self.teardown(t);
                }
            }
            if self.stop_seen && self.conns.is_empty() {
                let injected_empty = relock(self.shared.loops[self.idx].injected.lock()).is_empty();
                if injected_empty {
                    break;
                }
            }
        }
    }

    /// Cap the epoll sleep at 50 ms so virtual-clock advances and stop
    /// flags are observed promptly, and clamp to the next timer deadline.
    fn wait_timeout(&self) -> Duration {
        let mut t = Duration::from_millis(50);
        if let Some(d) = self.wheel.next_deadline_ns() {
            let now = self.rec().now_ns();
            t = t.min(Duration::from_nanos(d.saturating_sub(now)));
        }
        t
    }

    fn unpark_listener(&mut self) {
        let ok = match &self.listener {
            Some(l) => self.poller.add(l, TOKEN_LISTEN, Interest::READ).is_ok(),
            None => false,
        };
        if ok {
            self.listener_registered = true;
            self.shared.listener_parked.store(false, Ordering::SeqCst);
            self.accept_ready();
        }
    }

    fn park_listener(&mut self) {
        if let Some(listener) = &self.listener {
            if self.listener_registered {
                self.poller.delete(listener);
                self.listener_registered = false;
                self.shared.listener_parked.store(true, Ordering::SeqCst);
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            if self.shared.conn_count.load(Ordering::Relaxed) >= self.shared.max_connections as u64
            {
                // At capacity: stop pulling from the backlog (level
                // triggering would spin otherwise). Closes unpark us.
                self.park_listener();
                return;
            }
            let res = match &self.listener {
                Some(l) => l.accept(),
                None => return,
            };
            match res {
                Ok((sock, _)) => {
                    if sock.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = sock.set_nodelay(true);
                    let token = self.shared.next_token.fetch_add(1, Ordering::Relaxed);
                    self.shared.accepted.fetch_add(1, Ordering::Relaxed);
                    let open = self.shared.conn_count.fetch_add(1, Ordering::SeqCst) + 1;
                    let rec = &*self.shared.rec;
                    rec.add(Counter::ServerConnections, 1);
                    rec.gauge(Gauge::ConnectionsOpenPeak, open);
                    rec.trace(TraceKind::Accept { conn_id: token });
                    let nloops = self.shared.loops.len();
                    let target = self.shared.next_loop.fetch_add(1, Ordering::Relaxed) % nloops;
                    if target == self.idx {
                        self.install(token, sock);
                    } else {
                        relock(self.shared.loops[target].injected.lock()).push((token, sock));
                        self.shared.loops[target].wake.wake();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn take_injected(&mut self) {
        let staged: Vec<(u64, TcpStream)> = {
            let mut inj = relock(self.shared.loops[self.idx].injected.lock());
            std::mem::take(&mut *inj)
        };
        for (token, sock) in staged {
            self.install(token, sock);
        }
    }

    fn install(&mut self, token: u64, sock: TcpStream) {
        if self.poller.add(&sock, token, Interest::READ).is_err() {
            self.shared.conn_count.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        if matches!(self.mode, ServeMode::Http { .. }) {
            let mut conn = Box::new(Conn::new(token, self.conn_cfg.clone()));
            let mut actions = Vec::new();
            conn.on_accept(&mut actions);
            if self.stop_seen {
                conn.set_draining(&*self.shared.rec, &mut actions);
            }
            self.conns.insert(
                token,
                Entry::Http {
                    conn,
                    sock,
                    interest: Interest::READ,
                    start_ns: 0,
                },
            );
            self.apply(token, actions);
        } else {
            // Discard connections drain by waiting for client EOF; the
            // abandon deadline bounds them.
            self.conns.insert(token, Entry::Discard { sock });
        }
    }

    fn conn_ready(&mut self, token: u64, ev: PollEvent) {
        match self.conns.get_mut(&token) {
            None => {}
            Some(Entry::Discard { sock }) => {
                let mut scratch = [0u8; 16 * 1024];
                let mut close = false;
                let mut counted: u64 = 0;
                loop {
                    match sock.read(&mut scratch) {
                        Ok(0) => {
                            close = true;
                            break;
                        }
                        Ok(n) => counted += n as u64,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => {
                            close = true;
                            break;
                        }
                    }
                }
                if counted > 0 {
                    if let ServeMode::Discard { on_bytes } = &self.mode {
                        on_bytes(counted);
                    }
                }
                if close || ev.hangup {
                    self.teardown(token);
                }
            }
            Some(Entry::Http { conn, sock, .. }) => {
                let mut actions = Vec::new();
                let rec = &*self.shared.rec;
                if ev.readable || ev.hangup {
                    conn.on_readable(sock, rec, &mut actions);
                }
                if (ev.writable || ev.hangup) && !conn.is_closing() {
                    conn.on_writable(sock, rec, &mut actions);
                }
                let closing = conn.is_closing();
                self.apply(token, actions);
                if ev.hangup && !closing && self.conns.contains_key(&token) {
                    // Error'd socket that produced no state change: drop it.
                    self.teardown(token);
                }
            }
        }
    }

    fn take_completions(&mut self) {
        let staged: Vec<(u64, Response)> = {
            let mut c = relock(self.shared.loops[self.idx].completions.lock());
            std::mem::take(&mut *c)
        };
        for (token, resp) in staged {
            let Some(Entry::Http { conn, sock, .. }) = self.conns.get_mut(&token) else {
                continue;
            };
            let rec = &*self.shared.rec;
            conn.on_dispatch_done(resp, rec);
            let mut actions = Vec::new();
            // Optimistic write: usually completes without an EPOLLOUT
            // round trip.
            conn.on_writable(sock, rec, &mut actions);
            self.apply(token, actions);
        }
    }

    fn fire_timers(&mut self, expired: &mut Vec<(u64, TimerKind)>) {
        let now = self.rec().now_ns();
        self.wheel.pop_expired(now, expired);
        for &(token, kind) in expired.iter() {
            let Some(Entry::Http { conn, .. }) = self.conns.get_mut(&token) else {
                continue;
            };
            let mut actions = Vec::new();
            conn.on_timer(kind, &*self.shared.rec, &mut actions);
            self.apply(token, actions);
        }
    }

    fn apply(&mut self, token: u64, actions: Vec<ConnAction>) {
        let now_ns = self.rec().now_ns();
        for action in actions {
            match action {
                ConnAction::Arm(kind, after) => {
                    self.wheel
                        .arm(token, kind, now_ns.saturating_add(after.as_nanos() as u64));
                }
                ConnAction::Cancel(kind) => self.wheel.cancel(token, kind),
                ConnAction::Interest { read, write } => {
                    if let Some(Entry::Http { sock, interest, .. }) = self.conns.get_mut(&token) {
                        let want = Interest { read, write };
                        if *interest != want && self.poller.modify(sock, token, want).is_ok() {
                            *interest = want;
                        }
                    }
                }
                ConnAction::Dispatch(head, body) => {
                    if let Some(Entry::Http { start_ns, .. }) = self.conns.get_mut(&token) {
                        *start_ns = now_ns;
                    }
                    let depth = self.shared.dispatch.push(Job {
                        loop_idx: self.idx,
                        token,
                        head,
                        body,
                    });
                    let rec = self.rec();
                    rec.gauge(Gauge::QueueDepthPeak, depth as u64);
                    rec.trace(TraceKind::QueueDepth {
                        depth: depth as u64,
                    });
                }
                ConnAction::Responded { bytes, measure } => {
                    if measure {
                        let start = match self.conns.get(&token) {
                            Some(Entry::Http { start_ns, .. }) => *start_ns,
                            _ => now_ns,
                        };
                        let rec = self.rec();
                        rec.add(Counter::ServerBytesOut, bytes);
                        let elapsed = now_ns.saturating_sub(start);
                        rec.observe_ns(HistId::ServerRequest, elapsed);
                        rec.trace(TraceKind::Request {
                            bytes,
                            elapsed_ns: elapsed,
                        });
                    }
                }
                ConnAction::Close(_reason) => self.teardown(token),
            }
        }
    }

    fn teardown(&mut self, token: u64) {
        let Some(entry) = self.conns.remove(&token) else {
            return;
        };
        match &entry {
            Entry::Http { sock, .. } | Entry::Discard { sock } => self.poller.delete(sock),
        }
        self.wheel.cancel_all(token);
        let open = self.shared.conn_count.fetch_sub(1, Ordering::SeqCst) - 1;
        if self.shared.listener_parked.load(Ordering::SeqCst)
            && open < self.shared.max_connections as u64
        {
            // Loop 0 re-admits from the backlog.
            self.shared.loops[0].wake.wake();
        }
    }

    fn enter_drain(&mut self) {
        self.stop_seen = true;
        if self
            .shared
            .drain_traced
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            self.rec().trace(TraceKind::Drain {
                in_flight: self.shared.conn_count.load(Ordering::Relaxed),
            });
        }
        if let Some(listener) = self.listener.take() {
            if self.listener_registered {
                self.poller.delete(&listener);
                self.listener_registered = false;
            }
        }
        // Close idle connections; let in-flight ones finish. Discard-mode
        // connections drain on client EOF (bounded by abandon).
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let is_http = matches!(self.conns.get(&token), Some(Entry::Http { .. }));
            if is_http {
                let mut actions = Vec::new();
                if let Some(Entry::Http { conn, .. }) = self.conns.get_mut(&token) {
                    conn.set_draining(&*self.shared.rec, &mut actions);
                }
                self.apply(token, actions);
            }
        }
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use crate::http::{read_response, render_response, RequestConfig};
    use std::io::Write;

    fn handler_ack() -> Handler {
        Arc::new(|_head, body| Response::xml(200, "OK", format!("len={}", body.len()).into_bytes()))
    }

    fn opts() -> EventLoopOptions {
        EventLoopOptions {
            loops: 2,
            dispatchers: 2,
            ..EventLoopOptions::default()
        }
    }

    fn post(addr: SocketAddr, body: &[u8]) -> (u16, Vec<u8>) {
        let mut s = TcpStream::connect(addr).unwrap();
        let cfg = RequestConfig::loopback(crate::http::HttpVersion::Http11Length);
        let mut head = Vec::new();
        cfg.render_head(&mut head, Some(body.len()));
        s.write_all(&head).unwrap();
        s.write_all(body).unwrap();
        read_response(&mut s).unwrap()
    }

    #[test]
    fn serves_concurrent_keep_alive_clients() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut server = EventLoopServer::serve(
            listener,
            opts(),
            None,
            ServeMode::Http {
                handler: handler_ack(),
            },
        )
        .unwrap();
        let addr = server.addr();
        let mut handles = Vec::new();
        for _ in 0..8 {
            handles.push(thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                let cfg = RequestConfig::loopback(crate::http::HttpVersion::Http11Length);
                for i in 0..5usize {
                    let body = vec![b'x'; 10 + i];
                    let mut head = Vec::new();
                    cfg.render_head(&mut head, Some(body.len()));
                    s.write_all(&head).unwrap();
                    s.write_all(&body).unwrap();
                    let (status, resp) = read_response(&mut s).unwrap();
                    assert_eq!(status, 200);
                    assert_eq!(resp, format!("len={}", body.len()).into_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.connections(), 8);
        server.stop();
    }

    #[test]
    fn responses_match_plain_rendering() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut server = EventLoopServer::serve(
            listener,
            opts(),
            None,
            ServeMode::Http {
                handler: handler_ack(),
            },
        )
        .unwrap();
        let (status, body) = post(server.addr(), b"hello");
        assert_eq!((status, body.as_slice()), (200, b"len=5".as_slice()));
        let mut expect = Vec::new();
        render_response(&mut expect, 200, "OK", b"len=5");
        server.stop();
    }

    #[test]
    fn stop_without_traffic_is_clean() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut server = EventLoopServer::serve(
            listener,
            opts(),
            None,
            ServeMode::Http {
                handler: handler_ack(),
            },
        )
        .unwrap();
        server.stop();
        server.stop(); // idempotent
    }

    #[test]
    fn discard_mode_counts_bytes() {
        let counted = Arc::new(AtomicU64::new(0));
        let c = counted.clone();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut server = EventLoopServer::serve(
            listener,
            opts(),
            None,
            ServeMode::Discard {
                on_bytes: Arc::new(move |n| {
                    c.fetch_add(n, Ordering::Relaxed);
                }),
            },
        )
        .unwrap();
        {
            let mut s = TcpStream::connect(server.addr()).unwrap();
            s.write_all(&vec![7u8; 10_000]).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while counted.load(Ordering::Relaxed) < 10_000 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(counted.load(Ordering::Relaxed), 10_000);
        server.stop();
    }

    #[test]
    fn max_connections_queues_not_refuses() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut o = opts();
        o.max_connections = 2;
        let mut server = EventLoopServer::serve(
            listener,
            o,
            None,
            ServeMode::Http {
                handler: handler_ack(),
            },
        )
        .unwrap();
        let addr = server.addr();
        // Two admitted + two waiting in the backlog.
        let mut held: Vec<TcpStream> = (0..2).map(|_| TcpStream::connect(addr).unwrap()).collect();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.open_connections() < 2 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(2));
        }
        let t = thread::spawn(move || post(addr, b"queued"));
        thread::sleep(Duration::from_millis(50));
        // Freeing one admitted connection lets the queued one through.
        held.pop();
        let (status, body) = t.join().unwrap();
        assert_eq!((status, body.as_slice()), (200, b"len=6".as_slice()));
        drop(held);
        server.stop();
    }
}
