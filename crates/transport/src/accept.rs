//! Bounded worker-pool accept loop shared by the loopback servers.
//!
//! The seed servers spawned one unbounded thread per connection and
//! sleep-polled a nonblocking listener every millisecond — fine for unit
//! tests, hopeless for sustained traffic (thread churn, idle CPU burn,
//! unbounded memory under a connection flood). This module replaces both:
//! a **blocking** accept thread feeds accepted connections into an
//! unbounded queue drained by a **fixed** pool of worker threads, so
//! concurrency beyond the worker count queues instead of spawning or
//! refusing, and an idle server consumes zero CPU.
//!
//! Shutdown is graceful: the stop flag is raised, a loopback self-connect
//! unblocks the accept call (no sleep-poll needed), already-accepted
//! connections are drained to completion, and only after a drain deadline
//! are still-busy connections force-closed.

use bsoap_obs::{Counter, Gauge, Metrics, Recorder, TraceKind};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for [`serve`].
#[derive(Clone, Copy, Debug)]
pub struct PoolOptions {
    /// Fixed number of worker threads handling connections.
    pub workers: usize,
    /// How long [`WorkerPool::stop`] waits for in-flight connections to
    /// drain before force-closing them.
    pub drain_deadline: Duration,
}

impl Default for PoolOptions {
    fn default() -> Self {
        PoolOptions {
            workers: 4,
            drain_deadline: Duration::from_secs(2),
        }
    }
}

/// Accepted-connection queue plus worker bookkeeping, all under one lock
/// so the drain wait can be a plain condvar wait (no sleep polling).
struct QueueState {
    conns: VecDeque<TcpStream>,
    /// No further pushes; workers exit once the queue empties.
    closed: bool,
    /// Drain deadline passed: workers drop queued connections unserved
    /// instead of risking an unbounded read on a live client.
    abandon: bool,
    /// Workers currently inside the connection handler.
    busy: usize,
    /// High-water mark of queued connections (observability: proves
    /// queueing happened when connections outnumber workers).
    peak_depth: usize,
}

struct Queue {
    state: Mutex<QueueState>,
    /// Signaled when work arrives or the queue closes.
    ready: Condvar,
    /// Signaled when the pool may have fully drained.
    drained: Condvar,
}

fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl Queue {
    fn new() -> Self {
        Queue {
            state: Mutex::new(QueueState {
                conns: VecDeque::new(),
                closed: false,
                abandon: false,
                busy: 0,
                peak_depth: 0,
            }),
            ready: Condvar::new(),
            drained: Condvar::new(),
        }
    }

    /// Enqueue a connection; returns the queue depth after the push so the
    /// accept loop can publish it without retaking the lock.
    fn push(&self, s: TcpStream) -> usize {
        let mut st = relock(self.state.lock());
        st.conns.push_back(s);
        let depth = st.conns.len();
        st.peak_depth = st.peak_depth.max(depth);
        drop(st);
        self.ready.notify_one();
        depth
    }

    /// Blocking pop; marks the calling worker busy before releasing the
    /// lock so the drain wait can never observe a claimed-but-untracked
    /// connection. Returns `None` when closed and empty (worker exits).
    fn pop(&self) -> Option<TcpStream> {
        let mut st = relock(self.state.lock());
        loop {
            if st.abandon {
                // Late shutdown: discard whatever is still queued.
                while let Some(c) = st.conns.pop_front() {
                    let _ = c.shutdown(Shutdown::Both);
                }
            }
            if let Some(c) = st.conns.pop_front() {
                st.busy += 1;
                return Some(c);
            }
            if st.closed {
                return None;
            }
            st = relock(self.ready.wait(st));
        }
    }

    fn done(&self) {
        let mut st = relock(self.state.lock());
        st.busy -= 1;
        let idle = st.busy == 0 && st.conns.is_empty();
        drop(st);
        if idle {
            self.drained.notify_all();
        }
    }

    fn close(&self) {
        relock(self.state.lock()).closed = true;
        self.ready.notify_all();
        self.drained.notify_all();
    }

    /// Wait until no connection is queued or being handled, or until the
    /// deadline. Returns `true` if fully drained.
    fn wait_drained(&self, deadline: Duration) -> bool {
        let end = Instant::now() + deadline;
        let mut st = relock(self.state.lock());
        while st.busy > 0 || !st.conns.is_empty() {
            let now = Instant::now();
            if now >= end {
                return false;
            }
            let (g, _) = self
                .drained
                .wait_timeout(st, end - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = g;
        }
        true
    }

    fn abandon(&self) {
        relock(self.state.lock()).abandon = true;
        self.ready.notify_all();
    }
}

/// Streams currently inside a handler, so a timed-out drain can unblock
/// workers parked in `read()` on connections the client left open. Only
/// active (dequeued) connections are held, so the map stays bounded by
/// the worker count.
#[derive(Default)]
struct Registry {
    streams: Mutex<HashMap<u64, TcpStream>>,
}

impl Registry {
    fn insert(&self, id: u64, stream: &TcpStream) {
        if let Ok(clone) = stream.try_clone() {
            relock(self.streams.lock()).insert(id, clone);
        }
    }

    fn remove(&self, id: u64) {
        relock(self.streams.lock()).remove(&id);
    }

    fn shutdown_all(&self) {
        for (_, s) in relock(self.streams.lock()).drain() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

struct PoolShared {
    stop: AtomicBool,
    /// The stop sentinel's client-side address, so the accept thread can
    /// tell the wakeup connection apart from real ones that raced it into
    /// the backlog. [`WorkerPool::stop`] holds this lock from before the
    /// sentinel connect until the address is stored, so an accept-side
    /// lock acquired after observing the stop flag always sees it.
    sentinel: Mutex<Option<SocketAddr>>,
    queue: Queue,
    registry: Registry,
    connections: AtomicU64,
    next_id: AtomicU64,
}

/// Handle to a running worker-pool server. Dropping it stops the pool
/// (with the configured drain deadline).
pub struct WorkerPool {
    addr: SocketAddr,
    opts: PoolOptions,
    shared: Arc<PoolShared>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Serve `listener` with a fixed pool of `opts.workers` threads; `handler`
/// is invoked once per accepted connection and owns it until it returns
/// (keep-alive loops live inside the handler).
pub fn serve<F>(listener: TcpListener, opts: PoolOptions, handler: F) -> io::Result<WorkerPool>
where
    F: Fn(TcpStream) + Send + Sync + 'static,
{
    serve_with_metrics(listener, opts, None, handler)
}

/// [`serve`] with an observability registry attached: every accepted
/// connection ticks [`Counter::ServerConnections`], and each enqueue
/// publishes the observed queue depth as a [`Gauge::QueueDepthPeak`]
/// observation plus a [`TraceKind::QueueDepth`] event. (A separate entry
/// point because [`PoolOptions`] is `Copy` and cannot carry an `Arc`.)
pub fn serve_with_metrics<F>(
    listener: TcpListener,
    opts: PoolOptions,
    metrics: Option<Arc<Metrics>>,
    handler: F,
) -> io::Result<WorkerPool>
where
    F: Fn(TcpStream) + Send + Sync + 'static,
{
    let addr = listener.local_addr()?;
    let shared = Arc::new(PoolShared {
        stop: AtomicBool::new(false),
        sentinel: Mutex::new(None),
        queue: Queue::new(),
        registry: Registry::default(),
        connections: AtomicU64::new(0),
        next_id: AtomicU64::new(0),
    });
    let handler = Arc::new(handler);
    let workers = (0..opts.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            let handler = Arc::clone(&handler);
            std::thread::spawn(move || {
                while let Some(stream) = shared.queue.pop() {
                    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
                    shared.registry.insert(id, &stream);
                    handler(stream);
                    shared.registry.remove(id);
                    shared.queue.done();
                }
            })
        })
        .collect();
    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::spawn(move || {
        // Blocking accept: zero CPU while idle. stop() self-connects to
        // unblock this call; the loop exits only on accepting that exact
        // connection (matched by peer address), so real connections that
        // entered the backlog ahead of the sentinel are still served and
        // the sentinel is never counted.
        loop {
            match listener.accept() {
                Ok((stream, peer)) => {
                    if accept_shared.stop.load(Ordering::Acquire)
                        && *relock(accept_shared.sentinel.lock()) == Some(peer)
                    {
                        break;
                    }
                    let _ = stream.set_nodelay(true);
                    accept_shared.connections.fetch_add(1, Ordering::Relaxed);
                    let depth = accept_shared.queue.push(stream);
                    if let Some(m) = &metrics {
                        m.add(Counter::ServerConnections, 1);
                        m.gauge(Gauge::QueueDepthPeak, depth as u64);
                        m.trace(TraceKind::QueueDepth {
                            depth: depth as u64,
                        });
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        // Listener drops here: no further connections are accepted.
    });
    Ok(WorkerPool {
        addr,
        opts,
        shared,
        accept_thread: Some(accept_thread),
        workers,
    })
}

impl WorkerPool {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted (sentinel self-connects excluded).
    pub fn connections(&self) -> u64 {
        self.shared.connections.load(Ordering::Relaxed)
    }

    /// High-water mark of connections queued awaiting a worker.
    pub fn peak_queue_depth(&self) -> usize {
        relock(self.shared.queue.state.lock()).peak_depth
    }

    /// Number of worker threads (stable across [`WorkerPool::stop`]).
    pub fn workers(&self) -> usize {
        self.opts.workers.max(1)
    }

    /// Stop accepting, drain in-flight connections (bounded by the drain
    /// deadline), then join every thread. Idempotent.
    pub fn stop(&mut self) {
        let Some(accept) = self.accept_thread.take() else {
            return;
        };
        // Hold the sentinel lock across the connect so the accept thread,
        // once it sees the stop flag, blocks here until the sentinel's
        // address is known and never misclassifies a real connection.
        let mut sentinel_slot = relock(self.shared.sentinel.lock());
        self.shared.stop.store(true, Ordering::Release);
        // Unblock the accept call; if the connect fails the listener has
        // already errored out and the thread is gone anyway.
        let sentinel = TcpStream::connect(self.addr).ok();
        *sentinel_slot = sentinel.as_ref().and_then(|s| s.local_addr().ok());
        drop(sentinel_slot);
        let _ = accept.join();
        drop(sentinel);
        self.shared.queue.close();
        if !self.shared.queue.wait_drained(self.opts.drain_deadline) {
            // Deadline passed: force-close active connections to unblock
            // workers parked in read(), and drop still-queued ones.
            self.shared.queue.abandon();
            self.shared.registry.shutdown_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::sync::atomic::AtomicUsize;

    fn echo_pool(workers: usize) -> WorkerPool {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        serve(
            listener,
            PoolOptions {
                workers,
                ..PoolOptions::default()
            },
            |mut s| {
                let mut buf = [0u8; 1024];
                loop {
                    match s.read(&mut buf) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => {
                            if s.write_all(&buf[..n]).is_err() {
                                break;
                            }
                        }
                    }
                }
            },
        )
        .unwrap()
    }

    #[test]
    fn echoes_through_workers() {
        let mut pool = echo_pool(2);
        let mut c = TcpStream::connect(pool.addr()).unwrap();
        c.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        c.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        drop(c);
        pool.stop();
        assert_eq!(pool.connections(), 1);
    }

    #[test]
    fn more_connections_than_workers_queue_not_refuse() {
        let mut pool = echo_pool(2);
        let addr = pool.addr();
        // 6 concurrent connections against 2 workers: every one must be
        // served (the surplus queues until a worker frees up).
        let handles: Vec<_> = (0..6)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = TcpStream::connect(addr).unwrap();
                    let msg = [b'a' + i as u8; 16];
                    c.write_all(&msg).unwrap();
                    let mut buf = [0u8; 16];
                    c.read_exact(&mut buf).unwrap();
                    assert_eq!(buf, msg);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        pool.stop();
        assert_eq!(pool.connections(), 6);
        assert_eq!(pool.workers(), 2);
    }

    #[test]
    fn graceful_stop_drains_queued_connections() {
        // One worker held busy; a second connection sits queued when stop
        // begins — it must still be served (drained), not dropped.
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let served = Arc::new(AtomicUsize::new(0));
        let served_h = Arc::clone(&served);
        let mut pool = serve(
            listener,
            PoolOptions {
                workers: 1,
                drain_deadline: Duration::from_secs(5),
            },
            move |mut s| {
                let mut buf = [0u8; 4];
                if s.read_exact(&mut buf).is_ok() {
                    let _ = s.write_all(b"ok");
                    served_h.fetch_add(1, Ordering::SeqCst);
                }
            },
        )
        .unwrap();
        let addr = pool.addr();
        let t1 = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            std::thread::sleep(Duration::from_millis(100));
            c.write_all(b"aaaa").unwrap();
            let mut r = [0u8; 2];
            c.read_exact(&mut r).unwrap();
        });
        let t2 = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(b"bbbb").unwrap();
            let mut r = [0u8; 2];
            c.read_exact(&mut r).unwrap();
        });
        // Wait for both connections to be accepted, then stop mid-flight.
        while pool.connections() < 2 {
            std::thread::yield_now();
        }
        pool.stop();
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(served.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn stop_with_idle_keepalive_connection_times_out_cleanly() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let mut pool = serve(
            listener,
            PoolOptions {
                workers: 1,
                drain_deadline: Duration::from_millis(50),
            },
            |mut s| {
                let mut buf = [0u8; 1024];
                while !matches!(s.read(&mut buf), Ok(0) | Err(_)) {}
            },
        )
        .unwrap();
        // Client connects and stays idle forever: drain must hit the
        // deadline and force-close rather than hang.
        let c = TcpStream::connect(pool.addr()).unwrap();
        let start = Instant::now();
        pool.stop();
        assert!(start.elapsed() < Duration::from_secs(2));
        drop(c);
    }

    #[test]
    fn stop_is_idempotent_and_drop_safe() {
        let mut pool = echo_pool(1);
        pool.stop();
        pool.stop();
        // Drop after explicit stop must not panic or hang.
    }
}
