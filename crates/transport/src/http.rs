//! HTTP framing for SOAP payloads.
//!
//! SOAP 1.1 over HTTP is a `POST` with `Content-Type: text/xml` and a
//! `SOAPAction` header. The framing choice matters to the paper (§2): with
//! HTTP/1.0 the full `Content-Length` must be known before the first byte
//! goes out, so the whole message must exist in memory; HTTP/1.1
//! `Transfer-Encoding: chunked` lets "data structures … be sent over the
//! network as soon as they are serialized" — the property chunk overlaying
//! (§3.3) relies on.
//!
//! Everything here is synchronous and allocation-frugal: request heads are
//! rendered into reusable buffers, and the chunked encoder frames a gather
//! list without copying the payload.

use std::fmt;
use std::io::{self, IoSlice, Read, Write};

/// HTTP version / framing strategy for the SOAP POST.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HttpVersion {
    /// `HTTP/1.0` with `Content-Length` (whole message framed up front).
    Http10,
    /// `HTTP/1.1` with `Transfer-Encoding: chunked` (streamable).
    Http11Chunked,
    /// `HTTP/1.1` with `Content-Length` (persistent connection, one frame).
    Http11Length,
}

impl HttpVersion {
    /// The version token on the request line.
    pub fn token(self) -> &'static str {
        match self {
            HttpVersion::Http10 => "HTTP/1.0",
            HttpVersion::Http11Chunked | HttpVersion::Http11Length => "HTTP/1.1",
        }
    }

    /// Whether this framing streams without a known total length.
    pub fn is_chunked(self) -> bool {
        matches!(self, HttpVersion::Http11Chunked)
    }
}

/// Static description of the SOAP POST target.
#[derive(Clone, Debug)]
pub struct RequestConfig {
    /// Request path, e.g. `/service`.
    pub path: String,
    /// `Host` header value.
    pub host: String,
    /// `SOAPAction` header value (quoted per SOAP 1.1).
    pub soap_action: String,
    /// Framing strategy.
    pub version: HttpVersion,
    /// Extra `(name, value)` request headers rendered after the standard
    /// ones — the client's wire-format offer (`X-BSOAP-Accept`) and body
    /// format declaration (`X-BSOAP-Format`) ride here. Empty by default.
    pub extra_headers: Vec<(String, String)>,
}

impl RequestConfig {
    /// Conventional configuration for a loopback service.
    pub fn loopback(version: HttpVersion) -> Self {
        RequestConfig {
            path: "/service".to_owned(),
            host: "localhost".to_owned(),
            soap_action: "urn:bench#send".to_owned(),
            version,
            extra_headers: Vec::new(),
        }
    }

    /// Render the request head (request line + headers + blank line) into
    /// `out` (cleared first). `content_len` must be `Some` for
    /// length-framed versions and is ignored for chunked framing.
    pub fn render_head(&self, out: &mut Vec<u8>, content_len: Option<usize>) {
        out.clear();
        out.extend_from_slice(b"POST ");
        out.extend_from_slice(self.path.as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.version.token().as_bytes());
        out.extend_from_slice(b"\r\nHost: ");
        out.extend_from_slice(self.host.as_bytes());
        out.extend_from_slice(b"\r\nContent-Type: text/xml; charset=utf-8\r\nSOAPAction: \"");
        out.extend_from_slice(self.soap_action.as_bytes());
        out.extend_from_slice(b"\"\r\n");
        for (name, value) in &self.extra_headers {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        match (self.version, content_len) {
            (HttpVersion::Http11Chunked, _) => {
                out.extend_from_slice(b"Transfer-Encoding: chunked\r\n");
            }
            (_, Some(n)) => {
                out.extend_from_slice(b"Content-Length: ");
                out.extend_from_slice(n.to_string().as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            (_, None) => panic!("length-framed request without content length"),
        }
        if self.version == HttpVersion::Http10 {
            // 1.0 defaults to close; ask for reuse like gSOAP's keep-alive.
            out.extend_from_slice(b"Connection: keep-alive\r\n");
        }
        out.extend_from_slice(b"\r\n");
    }
}

/// Framing/parsing error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request/response head.
    BadHead(&'static str),
    /// Chunked body was malformed.
    BadChunk(&'static str),
    /// Body framing headers missing or contradictory.
    BadFraming(&'static str),
    /// Head or body exceeds the reader's configured cap (a hardened
    /// server's defense against memory-exhaustion requests).
    TooLarge(&'static str),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadHead(w) => write!(f, "malformed HTTP head: {w}"),
            HttpError::BadChunk(w) => write!(f, "malformed chunked body: {w}"),
            HttpError::BadFraming(w) => write!(f, "bad body framing: {w}"),
            HttpError::TooLarge(w) => write!(f, "request exceeds size cap: {w}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<HttpError> for io::Error {
    fn from(e: HttpError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Write one SOAP POST: head, then the body gather list, framed per
/// `cfg.version`. Returns total bytes written (head + framing + payload).
///
/// `head_scratch` is reused across calls so repeated sends (the paper's
/// workload) allocate nothing.
pub fn post_gather(
    stream: &mut impl Write,
    cfg: &RequestConfig,
    body: &[IoSlice<'_>],
    head_scratch: &mut Vec<u8>,
) -> io::Result<usize> {
    let payload: usize = body.iter().map(|s| s.len()).sum();
    let mut written = 0usize;
    if cfg.version.is_chunked() {
        cfg.render_head(head_scratch, None);
        stream.write_all(head_scratch)?;
        written += head_scratch.len();
        // One HTTP chunk per message chunk: the store's natural gather
        // granularity maps 1:1 onto wire chunks, so a template chunk hits
        // the network the moment it is serialized.
        let mut size_line = [0u8; 18];
        for s in body {
            if s.is_empty() {
                continue;
            }
            let n = render_chunk_size(&mut size_line, s.len());
            stream.write_all(&size_line[..n])?;
            stream.write_all(s)?;
            stream.write_all(b"\r\n")?;
            written += n + s.len() + 2;
        }
        stream.write_all(b"0\r\n\r\n")?;
        written += 5;
    } else {
        cfg.render_head(head_scratch, Some(payload));
        stream.write_all(head_scratch)?;
        written += head_scratch.len();
        written += crate::write_gather(stream, body)?;
    }
    stream.flush()?;
    Ok(written)
}

/// Render `{len:x}\r\n` into `buf`; returns byte count.
pub(crate) fn render_chunk_size(buf: &mut [u8; 18], len: usize) -> usize {
    let s = format!("{len:x}\r\n");
    buf[..s.len()].copy_from_slice(s.as_bytes());
    s.len()
}

/// Reusable scratch for [`post_gather_vectored`]: the request head and the
/// chunked-framing bytes live here between calls so the assembled gather
/// list can reference them without allocating per send.
#[derive(Debug, Default)]
pub struct PostScratch {
    head: Vec<u8>,
    /// Chunk size lines back to back, then `\r\n` (the shared per-chunk
    /// trailer), then `0\r\n\r\n` (the last-chunk marker).
    frames: Vec<u8>,
    /// `(offset, len)` of each chunk's size line within `frames`.
    spans: Vec<(usize, usize)>,
}

/// Write one SOAP POST with **zero body copies**: the head (and, for
/// chunked framing, the size lines) are emitted as their own `IoSlice`s
/// and the caller's gather list passes straight through to the vectored
/// drain. A keep-alive POST of a non-contiguous template therefore costs
/// one `writev` per socket-buffer fill and never flattens the payload.
///
/// Byte-identical on the wire to [`post_gather`]; returns total bytes
/// written (head + framing + payload).
pub fn post_gather_vectored(
    stream: &mut impl Write,
    cfg: &RequestConfig,
    body: &[IoSlice<'_>],
    scratch: &mut PostScratch,
) -> io::Result<usize> {
    let payload: usize = body.iter().map(|s| s.len()).sum();
    let chunks = body.iter().filter(|s| !s.is_empty());
    let n = if cfg.version.is_chunked() {
        cfg.render_head(&mut scratch.head, None);
        scratch.frames.clear();
        scratch.spans.clear();
        for s in chunks.clone() {
            let start = scratch.frames.len();
            let mut line = [0u8; 18];
            let len = render_chunk_size(&mut line, s.len());
            scratch.frames.extend_from_slice(&line[..len]);
            scratch.spans.push((start, len));
        }
        let tail = scratch.frames.len();
        scratch.frames.extend_from_slice(b"\r\n0\r\n\r\n");
        let crlf = &scratch.frames[tail..tail + 2];
        let last_chunk = &scratch.frames[tail + 2..];
        let mut list: Vec<IoSlice<'_>> = Vec::with_capacity(2 + 3 * scratch.spans.len());
        list.push(IoSlice::new(&scratch.head));
        for (s, &(off, len)) in chunks.zip(scratch.spans.iter()) {
            list.push(IoSlice::new(&scratch.frames[off..off + len]));
            list.push(IoSlice::new(s));
            list.push(IoSlice::new(crlf));
        }
        list.push(IoSlice::new(last_chunk));
        crate::write_gather(stream, &list)?
    } else {
        cfg.render_head(&mut scratch.head, Some(payload));
        let mut list: Vec<IoSlice<'_>> = Vec::with_capacity(1 + body.len());
        list.push(IoSlice::new(&scratch.head));
        list.extend(body.iter().map(|s| IoSlice::new(s)));
        crate::write_gather(stream, &list)?
    };
    stream.flush()?;
    Ok(n)
}

/// A parsed request head.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestHead {
    /// Request method (`POST` for SOAP).
    pub method: String,
    /// Request path.
    pub path: String,
    /// Version token (`HTTP/1.0` / `HTTP/1.1`).
    pub version: String,
    /// Lower-cased header name/value pairs in arrival order.
    pub headers: Vec<(String, String)>,
}

impl RequestHead {
    /// First value of a header (name compared case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Body framing declared by the head.
    pub fn framing(&self) -> Result<BodyFraming, HttpError> {
        if let Some(te) = self.header("transfer-encoding") {
            if te.eq_ignore_ascii_case("chunked") {
                return Ok(BodyFraming::Chunked);
            }
            return Err(HttpError::BadFraming("unsupported transfer-encoding"));
        }
        if let Some(cl) = self.header("content-length") {
            let n: usize = cl
                .trim()
                .parse()
                .map_err(|_| HttpError::BadFraming("non-numeric content-length"))?;
            return Ok(BodyFraming::Length(n));
        }
        Err(HttpError::BadFraming("neither content-length nor chunked"))
    }

    /// Body framing taking the request method into account: methods that
    /// conventionally carry no body (`GET`, `HEAD`, `DELETE`) may omit the
    /// framing headers entirely and are then read as a zero-length body —
    /// what a `GET /metrics` scrape sends.
    pub fn body_framing(&self) -> Result<BodyFraming, HttpError> {
        match self.framing() {
            Ok(f) => Ok(f),
            Err(e) => {
                if matches!(self.method.as_str(), "GET" | "HEAD" | "DELETE") {
                    Ok(BodyFraming::Length(0))
                } else {
                    Err(e)
                }
            }
        }
    }
}

/// How the body after a head is delimited.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BodyFraming {
    /// Exactly `n` body bytes follow.
    Length(usize),
    /// Chunked transfer coding follows.
    Chunked,
}

/// Incremental reader of HTTP requests off a stream.
///
/// Owns a buffer; reads repeatedly until a full head + body is available.
/// Suited to the loopback servers (one connection per thread).
pub struct RequestReader<R> {
    stream: R,
    buf: Vec<u8>,
    /// Bytes of `buf` that are valid.
    filled: usize,
    /// Consumed prefix (start of the next request).
    consumed: usize,
    /// Cap on a single request head (and any chunk-size line).
    max_head: usize,
    /// Cap on a single request body.
    max_body: usize,
}

impl<R: Read> RequestReader<R> {
    /// Wrap a stream with no size caps (trusted peers, tests).
    pub fn new(stream: R) -> Self {
        Self::with_limits(stream, usize::MAX, usize::MAX)
    }

    /// Wrap a stream enforcing head/body size caps: a head that does not
    /// terminate within `max_head` bytes, a `Content-Length` above
    /// `max_body`, or a chunked body accumulating past `max_body` all fail
    /// with [`HttpError::TooLarge`] instead of growing buffers without
    /// bound — the hardened server's answer to memory-exhaustion requests.
    pub fn with_limits(stream: R, max_head: usize, max_body: usize) -> Self {
        RequestReader {
            stream,
            buf: vec![0; 64 * 1024],
            filled: 0,
            consumed: 0,
            max_head: max_head.max(1),
            max_body,
        }
    }

    /// The wrapped stream. Server loops use this to re-arm per-request
    /// read budgets at request boundaries.
    pub fn stream_mut(&mut self) -> &mut R {
        &mut self.stream
    }

    /// Read one full request. Returns `Ok(None)` on clean EOF before any
    /// bytes of a next request.
    pub fn next_request(&mut self) -> io::Result<Option<(RequestHead, Vec<u8>)>> {
        // Find the head terminator, reading as needed.
        let head_end = loop {
            if let Some(e) = head_end(&self.buf[self.consumed..self.filled]) {
                break self.consumed + e;
            }
            if self.filled - self.consumed > self.max_head {
                return Err(HttpError::TooLarge("request head").into());
            }
            if !self.fill()? {
                if self.consumed == self.filled {
                    return Ok(None);
                }
                return Err(HttpError::BadHead("EOF inside request head").into());
            }
        };
        if head_end - self.consumed > self.max_head {
            return Err(HttpError::TooLarge("request head").into());
        }
        let head = parse_request_head(&self.buf[self.consumed..head_end])?;
        self.consumed = head_end;
        let body = match head.body_framing()? {
            BodyFraming::Length(n) => {
                if n > self.max_body {
                    return Err(HttpError::TooLarge("declared content-length").into());
                }
                self.read_exact_body(n)?
            }
            BodyFraming::Chunked => self.read_chunked_body()?,
        };
        Ok(Some((head, body)))
    }

    fn fill(&mut self) -> io::Result<bool> {
        if self.filled == self.buf.len() {
            if self.consumed > 0 {
                self.buf.copy_within(self.consumed..self.filled, 0);
                self.filled -= self.consumed;
                self.consumed = 0;
            } else {
                self.buf.resize(self.buf.len() * 2, 0);
            }
        }
        // Retry EINTR here rather than propagating it: a signal landing
        // mid-`read` would otherwise surface as a framing error to every
        // caller above (`read_line` would see a chunk-size line "split" by
        // the interruption and the body readers would misreport EOF).
        let n = loop {
            match self.stream.read(&mut self.buf[self.filled..]) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        self.filled += n;
        Ok(n > 0)
    }

    fn read_exact_body(&mut self, n: usize) -> io::Result<Vec<u8>> {
        // Capacity is clamped so a forged Content-Length cannot force a
        // huge up-front allocation; the Vec grows only as bytes arrive.
        let mut body = Vec::with_capacity(n.min(64 * 1024));
        while body.len() < n {
            if self.consumed == self.filled && !self.fill()? {
                return Err(HttpError::BadFraming("EOF inside length-framed body").into());
            }
            let take = (n - body.len()).min(self.filled - self.consumed);
            body.extend_from_slice(&self.buf[self.consumed..self.consumed + take]);
            self.consumed += take;
        }
        Ok(body)
    }

    fn read_chunked_body(&mut self) -> io::Result<Vec<u8>> {
        let mut body = Vec::new();
        loop {
            let line = self.read_line()?;
            let size_text = line.split(|&b| b == b';').next().unwrap_or(&line);
            let size = parse_hex(size_text).ok_or(HttpError::BadChunk("bad chunk size line"))?;
            if size == 0 {
                // Trailer section: skip lines until the blank one.
                loop {
                    let l = self.read_line()?;
                    if l.is_empty() {
                        break;
                    }
                }
                return Ok(body);
            }
            if size > self.max_body.saturating_sub(body.len()) {
                return Err(HttpError::TooLarge("chunked body").into());
            }
            let chunk = self.read_exact_body(size)?;
            body.extend_from_slice(&chunk);
            let crlf = self.read_line()?;
            if !crlf.is_empty() {
                return Err(HttpError::BadChunk("missing CRLF after chunk data").into());
            }
        }
    }

    /// Read one CRLF-terminated line (excluding the CRLF).
    fn read_line(&mut self) -> io::Result<Vec<u8>> {
        loop {
            if let Some(p) = find(&self.buf[self.consumed..self.filled], b"\r\n") {
                let line = self.buf[self.consumed..self.consumed + p].to_vec();
                self.consumed += p + 2;
                return Ok(line);
            }
            // A chunk-size line or trailer that never terminates would
            // otherwise grow the buffer without bound.
            if self.filled - self.consumed > self.max_head {
                return Err(HttpError::TooLarge("chunk size line").into());
            }
            if !self.fill()? {
                return Err(HttpError::BadChunk("EOF inside chunked body").into());
            }
        }
    }
}

/// Parse the bytes of a request head (through the blank line).
pub fn parse_request_head(head: &[u8]) -> Result<RequestHead, HttpError> {
    let text = std::str::from_utf8(head).map_err(|_| HttpError::BadHead("non-UTF-8 head"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::BadHead("empty head"))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().ok_or(HttpError::BadHead("missing method"))?;
    let path = parts.next().ok_or(HttpError::BadHead("missing path"))?;
    let version = parts.next().ok_or(HttpError::BadHead("missing version"))?;
    if parts.next().is_some() {
        return Err(HttpError::BadHead("extra tokens on request line"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::BadHead("header missing colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    Ok(RequestHead {
        method: method.to_owned(),
        path: path.to_owned(),
        version: version.to_owned(),
        headers,
    })
}

/// Render a minimal response head (through the blank line) for a body of
/// `content_len` bytes into `out` (cleared first).
pub fn render_response_head(out: &mut Vec<u8>, status: u16, reason: &str, content_len: usize) {
    render_response_head_typed(out, status, reason, "text/xml; charset=utf-8", content_len);
}

/// [`render_response_head`] with an explicit `Content-Type` (the
/// `/metrics` endpoint answers in `text/plain`, not SOAP's `text/xml`).
pub fn render_response_head_typed(
    out: &mut Vec<u8>,
    status: u16,
    reason: &str,
    content_type: &str,
    content_len: usize,
) {
    render_response_head_extra(out, status, reason, content_type, content_len, &[]);
}

/// [`render_response_head_typed`] plus extra `(name, value)` headers —
/// the negotiation echo (`X-BSOAP-Accept` / `X-BSOAP-Format`) rides
/// here on both server cores.
pub fn render_response_head_extra(
    out: &mut Vec<u8>,
    status: u16,
    reason: &str,
    content_type: &str,
    content_len: usize,
    extra: &[(&str, String)],
) {
    out.clear();
    out.extend_from_slice(b"HTTP/1.1 ");
    out.extend_from_slice(status.to_string().as_bytes());
    out.push(b' ');
    out.extend_from_slice(reason.as_bytes());
    out.extend_from_slice(b"\r\nContent-Type: ");
    out.extend_from_slice(content_type.as_bytes());
    out.extend_from_slice(b"\r\nContent-Length: ");
    out.extend_from_slice(content_len.to_string().as_bytes());
    out.extend_from_slice(b"\r\n");
    for (name, value) in extra {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
}

/// Render a bodiless `GET` request (keep-alive, HTTP/1.1) into `out`
/// (cleared first) — how a Prometheus scraper asks for `/metrics`.
pub fn render_get_request(out: &mut Vec<u8>, path: &str, host: &str) {
    out.clear();
    out.extend_from_slice(b"GET ");
    out.extend_from_slice(path.as_bytes());
    out.extend_from_slice(b" HTTP/1.1\r\nHost: ");
    out.extend_from_slice(host.as_bytes());
    out.extend_from_slice(b"\r\nAccept: text/plain\r\n\r\n");
}

/// Render a minimal response with a body (used by the collecting server to
/// acknowledge requests).
pub fn render_response(out: &mut Vec<u8>, status: u16, reason: &str, body: &[u8]) {
    render_response_head(out, status, reason, body.len());
    out.extend_from_slice(body);
}

/// Write a response without copying the body: the head goes out as its
/// own `IoSlice` and the caller's gather list rides the vectored drain.
/// Returns total bytes written.
pub fn write_response_vectored(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    body: &[IoSlice<'_>],
    head_scratch: &mut Vec<u8>,
) -> io::Result<usize> {
    let payload: usize = body.iter().map(|s| s.len()).sum();
    render_response_head(head_scratch, status, reason, payload);
    let mut list: Vec<IoSlice<'_>> = Vec::with_capacity(1 + body.len());
    list.push(IoSlice::new(head_scratch));
    list.extend(body.iter().map(|s| IoSlice::new(s)));
    let n = crate::write_gather(stream, &list)?;
    stream.flush()?;
    Ok(n)
}

/// Read one length-framed HTTP response off a stream; returns the body.
///
/// EOF before *any* response byte maps to [`io::ErrorKind::UnexpectedEof`]
/// rather than `InvalidData`: it is the signature of a stale keep-alive
/// socket (the peer closed between requests), which pooled clients treat
/// as retryable, unlike a genuinely malformed response.
pub fn read_response(stream: &mut impl Read) -> io::Result<(u16, Vec<u8>)> {
    read_response_limited(stream, usize::MAX, usize::MAX)
}

/// [`read_response`] with head/body caps and chunked-response support.
///
/// Historically the client reader accepted only `Content-Length` framing
/// and buffered without bound; a hardened client wants the same defenses
/// the server's [`RequestReader::with_limits`] has (a hostile or buggy
/// server must not be able to balloon client RSS), and the streaming
/// overlay path answers with chunked replies. The chunked branch rides the
/// same `read_chunked_body` as the server, so the `max_body` cap applies
/// to chunk-framed responses too and a size line split across short
/// `read()`s is reassembled rather than misread.
pub fn read_response_limited(
    stream: &mut impl Read,
    max_head: usize,
    max_body: usize,
) -> io::Result<(u16, Vec<u8>)> {
    read_response_headers_limited(stream, max_head, max_body).map(|(s, _, b)| (s, b))
}

/// Status code, response headers (names lowercased), and body.
pub type ResponseParts = (u16, Vec<(String, String)>, Vec<u8>);

/// [`read_response_limited`] that also returns the response headers
/// (names lowercased) — how a negotiating client observes the server's
/// `X-BSOAP-Accept` advert and `X-BSOAP-Format` echo.
pub fn read_response_headers_limited(
    stream: &mut impl Read,
    max_head: usize,
    max_body: usize,
) -> io::Result<ResponseParts> {
    let mut reader = RequestReader::with_limits(stream, max_head, max_body);
    let head_end = loop {
        if let Some(e) = crate::http::head_end(&reader.buf[..reader.filled]) {
            break e;
        }
        if reader.filled > reader.max_head {
            return Err(HttpError::TooLarge("response head").into());
        }
        if !reader.fill()? {
            if reader.filled == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before any response byte",
                ));
            }
            return Err(HttpError::BadHead("EOF inside response head").into());
        }
    };
    if head_end > reader.max_head {
        return Err(HttpError::TooLarge("response head").into());
    }
    let text = std::str::from_utf8(&reader.buf[..head_end])
        .map_err(|_| HttpError::BadHead("non-UTF-8 head"))?;
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or(HttpError::BadHead("bad status line"))?;
    let mut chunked = false;
    let mut cl: Option<usize> = None;
    let mut headers = Vec::new();
    for l in text.lines().skip(1) {
        let Some((n, v)) = l.split_once(':') else {
            continue;
        };
        let (n, v) = (n.trim(), v.trim());
        if n.eq_ignore_ascii_case("transfer-encoding") {
            if !v.eq_ignore_ascii_case("chunked") {
                return Err(HttpError::BadFraming("unsupported transfer-encoding").into());
            }
            chunked = true;
        } else if n.eq_ignore_ascii_case("content-length") {
            cl = Some(
                v.parse()
                    .map_err(|_| HttpError::BadFraming("non-numeric content-length"))?,
            );
        }
        headers.push((n.to_ascii_lowercase(), v.to_owned()));
    }
    reader.consumed = head_end;
    let body = if chunked {
        reader.read_chunked_body()?
    } else {
        let n = cl.ok_or(HttpError::BadFraming("response missing content-length"))?;
        if n > reader.max_body {
            return Err(HttpError::TooLarge("declared content-length").into());
        }
        reader.read_exact_body(n)?
    };
    Ok((status, headers, body))
}

pub(crate) fn parse_hex(s: &[u8]) -> Option<usize> {
    if s.is_empty() {
        return None;
    }
    let mut n: usize = 0;
    for &b in s {
        let d = match b {
            b'0'..=b'9' => b - b'0',
            b'a'..=b'f' => b - b'a' + 10,
            b'A'..=b'F' => b - b'A' + 10,
            _ => return None,
        };
        n = n.checked_mul(16)?.checked_add(d as usize)?;
    }
    Some(n)
}

pub(crate) fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.len() > haystack.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// The one head splitter: index one past a complete head's terminating
/// blank line (`\r\n\r\n`), or `None` while the head is still partial.
///
/// Every head-hunting path — [`RequestReader::next_request`],
/// [`read_response_limited`], `stream::read_head`, and the event-loop
/// connection state machine — delegates here, so random fragmentation
/// cannot make two paths disagree about where a head ends (proven by the
/// fragmentation proptest in `tests/prop_http.rs`).
pub fn head_end(buf: &[u8]) -> Option<usize> {
    find(buf, b"\r\n\r\n").map(|p| p + 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(version: HttpVersion, body_parts: &[&[u8]]) -> (RequestHead, Vec<u8>) {
        let cfg = RequestConfig::loopback(version);
        let mut wire = Vec::new();
        let slices: Vec<IoSlice<'_>> = body_parts.iter().map(|p| IoSlice::new(p)).collect();
        let mut scratch = Vec::new();
        let n = post_gather(&mut wire, &cfg, &slices, &mut scratch).unwrap();
        assert_eq!(n, wire.len());
        let mut reader = RequestReader::new(&wire[..]);
        let got = reader.next_request().unwrap().expect("one request");
        assert!(
            reader.next_request().unwrap().is_none(),
            "exactly one request"
        );
        got
    }

    #[test]
    fn length_framed_round_trip_10() {
        let (head, body) = round_trip(HttpVersion::Http10, &[b"<a>", b"1", b"</a>"]);
        assert_eq!(head.method, "POST");
        assert_eq!(head.version, "HTTP/1.0");
        assert_eq!(head.header("content-length"), Some("8"));
        assert_eq!(body, b"<a>1</a>");
    }

    #[test]
    fn length_framed_round_trip_11() {
        let (head, body) = round_trip(HttpVersion::Http11Length, &[b"payload"]);
        assert_eq!(head.version, "HTTP/1.1");
        assert_eq!(body, b"payload");
    }

    #[test]
    fn chunked_round_trip() {
        let parts: Vec<Vec<u8>> = (0..5)
            .map(|i| vec![b'a' + i as u8; 100 * (i + 1)])
            .collect();
        let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
        let (head, body) = round_trip(HttpVersion::Http11Chunked, &refs);
        assert_eq!(head.header("transfer-encoding"), Some("chunked"));
        let expect: Vec<u8> = parts.concat();
        assert_eq!(body, expect);
    }

    #[test]
    fn chunked_skips_empty_slices() {
        let (_, body) = round_trip(HttpVersion::Http11Chunked, &[b"", b"x", b""]);
        assert_eq!(body, b"x");
    }

    #[test]
    fn empty_body_length_framed() {
        let (head, body) = round_trip(HttpVersion::Http10, &[]);
        assert_eq!(head.header("content-length"), Some("0"));
        assert!(body.is_empty());
    }

    #[test]
    fn soap_action_header_present_and_quoted() {
        let (head, _) = round_trip(HttpVersion::Http10, &[b"x"]);
        assert_eq!(head.header("soapaction"), Some("\"urn:bench#send\""));
        assert_eq!(head.header("content-type"), Some("text/xml; charset=utf-8"));
    }

    #[test]
    fn pipelined_requests_on_one_connection() {
        let cfg = RequestConfig::loopback(HttpVersion::Http11Length);
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        for i in 0..3 {
            let body = format!("<n>{i}</n>").into_bytes();
            let slices = [IoSlice::new(&body)];
            post_gather(&mut wire, &cfg, &slices, &mut scratch).unwrap();
        }
        let mut reader = RequestReader::new(&wire[..]);
        for i in 0..3 {
            let (_, body) = reader.next_request().unwrap().expect("request present");
            assert_eq!(body, format!("<n>{i}</n>").into_bytes());
        }
        assert!(reader.next_request().unwrap().is_none());
    }

    #[test]
    fn parse_head_rejects_garbage() {
        assert!(parse_request_head(b"garbage").is_err());
        assert!(parse_request_head(b"POST /x HTTP/1.1 extra\r\n\r\n").is_err());
        assert!(parse_request_head(b"POST /x HTTP/1.1\r\nNoColonHere\r\n\r\n").is_err());
        assert!(parse_request_head(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn framing_detection() {
        let head = parse_request_head(b"POST / HTTP/1.1\r\nContent-Length: 12\r\n\r\n").unwrap();
        assert_eq!(head.framing().unwrap(), BodyFraming::Length(12));
        let head =
            parse_request_head(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap();
        assert_eq!(head.framing().unwrap(), BodyFraming::Chunked);
        let head = parse_request_head(b"POST / HTTP/1.1\r\n\r\n").unwrap();
        assert!(head.framing().is_err());
        let head = parse_request_head(b"POST / HTTP/1.1\r\nContent-Length: pony\r\n\r\n").unwrap();
        assert!(head.framing().is_err());
    }

    #[test]
    fn bodiless_get_parses_with_empty_body() {
        let mut wire = Vec::new();
        render_get_request(&mut wire, "/metrics", "localhost");
        let mut reader = RequestReader::new(&wire[..]);
        let (head, body) = reader.next_request().unwrap().expect("one request");
        assert_eq!(head.method, "GET");
        assert_eq!(head.path, "/metrics");
        assert!(body.is_empty());
        assert!(reader.next_request().unwrap().is_none());
        // POSTs without framing headers still error.
        let head = parse_request_head(b"POST / HTTP/1.1\r\n\r\n").unwrap();
        assert!(head.body_framing().is_err());
    }

    #[test]
    fn typed_response_head_carries_content_type() {
        let mut head = Vec::new();
        render_response_head_typed(&mut head, 200, "OK", "text/plain; version=0.0.4", 12);
        let text = std::str::from_utf8(&head).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"));
        assert!(text.contains("Content-Length: 12\r\n"));
    }

    #[test]
    fn truncated_bodies_error() {
        let wire = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        let mut reader = RequestReader::new(&wire[..]);
        assert!(reader.next_request().is_err());

        let wire = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nab";
        let mut reader = RequestReader::new(&wire[..]);
        assert!(reader.next_request().is_err());
    }

    #[test]
    fn bad_chunk_sizes_error() {
        let wire = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\nabc\r\n0\r\n\r\n";
        let mut reader = RequestReader::new(&wire[..]);
        assert!(reader.next_request().is_err());
    }

    #[test]
    fn chunk_extension_tolerated() {
        let wire =
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3;ext=1\r\nabc\r\n0\r\n\r\n";
        let mut reader = RequestReader::new(&wire[..]);
        let (_, body) = reader.next_request().unwrap().unwrap();
        assert_eq!(body, b"abc");
    }

    /// Acceptance: a keep-alive POST of a non-contiguous template performs
    /// **zero body copies** — every payload byte reaching the sink still
    /// points into the caller's buffers — while the wire bytes stay
    /// identical to the flattened/sequential `post_gather` path.
    #[test]
    fn vectored_post_is_zero_copy_and_byte_identical() {
        let parts: Vec<Vec<u8>> = (0..4).map(|i| vec![b'p' + i as u8; 64 * (i + 1)]).collect();
        let slices: Vec<IoSlice<'_>> = parts.iter().map(|p| IoSlice::new(p)).collect();
        let payload: u64 = parts.iter().map(|p| p.len() as u64).sum();
        for version in [
            HttpVersion::Http10,
            HttpVersion::Http11Length,
            HttpVersion::Http11Chunked,
        ] {
            let cfg = RequestConfig::loopback(version);
            let mut flat = Vec::new();
            let mut head_scratch = Vec::new();
            post_gather(&mut flat, &cfg, &slices, &mut head_scratch).unwrap();

            let mut sink = crate::sink::ProvenanceSink::new();
            for p in &parts {
                sink.register(p);
            }
            let mut scratch = PostScratch::default();
            // Two keep-alive sends through the same scratch: reuse must not
            // corrupt framing or introduce copies.
            for _ in 0..2 {
                let n = post_gather_vectored(&mut sink, &cfg, &slices, &mut scratch).unwrap();
                assert_eq!(n, flat.len(), "{version:?}");
            }
            assert_eq!(
                sink.aliased_bytes(),
                2 * payload,
                "{version:?}: every body byte arrived uncopied"
            );
            let framing = 2 * (flat.len() as u64 - payload);
            assert_eq!(
                sink.copied_bytes(),
                framing,
                "{version:?}: only head/framing bytes came from scratch"
            );
            assert_eq!(sink.bytes(), [flat.as_slice(), &flat].concat());
        }
    }

    #[test]
    fn vectored_response_matches_render_response() {
        let a = b"<res>".to_vec();
        let b = b"42</res>".to_vec();
        let mut flat = Vec::new();
        render_response(&mut flat, 200, "OK", b"<res>42</res>");
        let mut sink = crate::sink::ProvenanceSink::new();
        sink.register(&a);
        sink.register(&b);
        let mut head_scratch = Vec::new();
        let n = write_response_vectored(
            &mut sink,
            200,
            "OK",
            &[IoSlice::new(&a), IoSlice::new(&b)],
            &mut head_scratch,
        )
        .unwrap();
        assert_eq!(n, flat.len());
        assert_eq!(sink.bytes(), flat);
        assert_eq!(sink.aliased_bytes(), (a.len() + b.len()) as u64);
    }

    #[test]
    fn response_round_trip() {
        let mut wire = Vec::new();
        render_response(&mut wire, 200, "OK", b"<ok/>");
        let (status, body) = read_response(&mut &wire[..]).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"<ok/>");
    }

    #[test]
    fn hex_parsing() {
        assert_eq!(parse_hex(b"0"), Some(0));
        assert_eq!(parse_hex(b"ff"), Some(255));
        assert_eq!(parse_hex(b"1A"), Some(26));
        assert_eq!(parse_hex(b""), None);
        assert_eq!(parse_hex(b"xyz"), None);
    }

    fn is_too_large(e: &io::Error) -> bool {
        e.kind() == io::ErrorKind::InvalidData
            && e.get_ref()
                .and_then(|inner| inner.downcast_ref::<HttpError>())
                .is_some_and(|h| matches!(h, HttpError::TooLarge(_)))
    }

    #[test]
    fn oversized_head_is_rejected_not_buffered() {
        let mut wire = Vec::new();
        wire.extend_from_slice(b"POST / HTTP/1.1\r\n");
        let big = "x".repeat(10_000);
        wire.extend_from_slice(format!("X-Pad: {big}\r\n").as_bytes());
        wire.extend_from_slice(b"Content-Length: 2\r\n\r\nhi");
        let mut reader = RequestReader::with_limits(&wire[..], 4096, 1 << 20);
        let err = reader.next_request().unwrap_err();
        assert!(is_too_large(&err), "{err}");
    }

    #[test]
    fn oversized_content_length_rejected_before_reading_body() {
        // The declared length alone trips the cap; no body bytes needed.
        let wire = b"POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        let mut reader = RequestReader::with_limits(&wire[..], 4096, 1024);
        let err = reader.next_request().unwrap_err();
        assert!(is_too_large(&err), "{err}");
    }

    #[test]
    fn oversized_chunked_body_rejected_at_the_cap() {
        let mut wire = Vec::new();
        wire.extend_from_slice(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        for _ in 0..4 {
            wire.extend_from_slice(b"200\r\n");
            wire.extend_from_slice(&vec![b'a'; 0x200]);
            wire.extend_from_slice(b"\r\n");
        }
        wire.extend_from_slice(b"0\r\n\r\n");
        let mut reader = RequestReader::with_limits(&wire[..], 4096, 1024);
        let err = reader.next_request().unwrap_err();
        assert!(is_too_large(&err), "{err}");
        // The same wire parses fine under a roomier cap.
        let mut reader = RequestReader::with_limits(&wire[..], 4096, 1 << 20);
        let (_, body) = reader.next_request().unwrap().unwrap();
        assert_eq!(body.len(), 4 * 0x200);
    }

    #[test]
    fn endless_chunk_size_line_rejected() {
        // No CRLF ever arrives: the reader must not buffer forever.
        let mut wire = Vec::new();
        wire.extend_from_slice(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
        wire.extend_from_slice(&vec![b'1'; 10_000]);
        let mut reader = RequestReader::with_limits(&wire[..], 4096, 1 << 20);
        let err = reader.next_request().unwrap_err();
        assert!(is_too_large(&err), "{err}");
    }

    #[test]
    fn heads_grow_buffer_when_needed() {
        // A head larger than the initial buffer still parses.
        let mut wire = Vec::new();
        wire.extend_from_slice(b"POST / HTTP/1.1\r\n");
        let big = "x".repeat(100_000);
        wire.extend_from_slice(format!("X-Pad: {big}\r\n").as_bytes());
        wire.extend_from_slice(b"Content-Length: 2\r\n\r\nhi");
        let mut reader = RequestReader::new(&wire[..]);
        let (head, body) = reader.next_request().unwrap().unwrap();
        assert_eq!(head.header("x-pad").map(str::len), Some(100_000));
        assert_eq!(body, b"hi");
    }
}
