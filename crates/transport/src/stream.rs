//! Streaming chunk-overlay transport: bounded-memory send and receive.
//!
//! The paper's chunk overlaying (§3.3) serializes a huge array one
//! window-portion at a time through a single reused template fragment —
//! but that only bounds *sender* memory if each portion reaches the wire
//! the moment it is serialized, and only bounds *receiver* memory if the
//! peer never reassembles the body. This module supplies both halves:
//!
//! * [`ChunkedBodyWriter`] frames each overlaid portion as its own
//!   HTTP/1.1 chunk and drains it with one gather-vectored write, under
//!   an optional [`Deadline`] from the PR-5 fault layer. Sender residency
//!   is the window fragment plus a fixed 20-byte frame scratch.
//! * [`ChunkedBodyReader`] decodes a chunked body incrementally out of a
//!   fixed-capacity buffer that never grows, yielding borrowed slices of
//!   decoded payload. Receiver residency is that buffer, regardless of
//!   whether the body is 4 KiB or 4 GiB; a cumulative `max_body` cap
//!   still bounds how much a peer may send in total.
//! * [`read_head`] splits one request/response head off a raw stream and
//!   hands back the over-read remainder, so a streaming server can parse
//!   the head eagerly and feed everything after it to the body reader.
//!
//! Both directions reuse the framing grammar of `http.rs`
//! (`render_chunk_size`, `parse_hex`) so the wire bytes are identical to
//! the buffered [`post_gather_vectored`](crate::http::post_gather_vectored)
//! path — the overlay pipeline changes *when* bytes move, never *what*
//! bytes move.

use crate::http::{parse_hex, render_chunk_size, HttpError, RequestConfig};
use bsoap_obs::Deadline;
use std::io::{self, IoSlice, Read, Write};

/// Default decode-buffer capacity for [`ChunkedBodyReader`] — the
/// receiver's memory bound. 64 KiB matches the socket-buffer-sized reads
/// the blocking server already performs.
pub const DEFAULT_STREAM_BUF: usize = 64 * 1024;

/// Cap on one chunk-size line (hex digits + extensions). Anything longer
/// is an attack or corruption, never a legitimate size.
const MAX_SIZE_LINE: usize = 256;

/// Incremental HTTP/1.1 chunked-body writer for overlay streaming.
///
/// `start` emits the request head (chunked framing), then each
/// [`write_portion`](Self::write_portion) call frames one serialized
/// overlay portion as a single HTTP chunk — size line, payload gather
/// list, and trailing CRLF drained through **one** vectored write — and
/// [`finish`](Self::finish) terminates the body with `0\r\n\r\n`.
///
/// If a [`Deadline`] is attached, it is checked before every portion and
/// on finish, so a stalled multi-GB send fails fast with the fault
/// layer's `TimedOut` classification instead of dribbling forever.
pub struct ChunkedBodyWriter<'a, W: Write> {
    stream: &'a mut W,
    deadline: Option<&'a Deadline>,
    /// Total wire bytes (head + chunk framing + payload).
    wire_bytes: usize,
    /// Payload bytes only (what the peer's decoder yields).
    body_bytes: usize,
    portions: usize,
    finished: bool,
}

impl<'a, W: Write> ChunkedBodyWriter<'a, W> {
    /// Write the chunked request head for `cfg` and return a body writer.
    ///
    /// `cfg.version` must be [`HttpVersion::Http11Chunked`]
    /// (streaming cannot promise a Content-Length up front).
    ///
    /// [`HttpVersion::Http11Chunked`]: crate::http::HttpVersion::Http11Chunked
    pub fn start(
        stream: &'a mut W,
        cfg: &RequestConfig,
        head_scratch: &mut Vec<u8>,
        deadline: Option<&'a Deadline>,
    ) -> io::Result<Self> {
        if !cfg.version.is_chunked() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "streamed body requires chunked framing",
            ));
        }
        if let Some(d) = deadline {
            d.check()?;
        }
        cfg.render_head(head_scratch, None);
        stream.write_all(head_scratch)?;
        Ok(ChunkedBodyWriter {
            stream,
            deadline,
            wire_bytes: head_scratch.len(),
            body_bytes: 0,
            portions: 0,
            finished: false,
        })
    }

    /// Frame `slices` as one HTTP chunk and drain it in a single
    /// gather-vectored write. Empty portions are skipped (a zero-length
    /// chunk would terminate the body early). Returns payload bytes.
    pub fn write_portion(&mut self, slices: &[IoSlice<'_>]) -> io::Result<usize> {
        debug_assert!(!self.finished, "write_portion after finish");
        let payload = crate::gather_len(slices);
        if payload == 0 {
            return Ok(0);
        }
        if let Some(d) = self.deadline {
            d.check()?;
        }
        let mut size_line = [0u8; 18];
        let n = render_chunk_size(&mut size_line, payload);
        let mut list: Vec<IoSlice<'_>> = Vec::with_capacity(slices.len() + 2);
        list.push(IoSlice::new(&size_line[..n]));
        list.extend(
            slices
                .iter()
                .filter(|s| !s.is_empty())
                .map(|s| IoSlice::new(s)),
        );
        list.push(IoSlice::new(b"\r\n"));
        let wrote = crate::write_gather(self.stream, &list)?;
        self.wire_bytes += wrote;
        self.body_bytes += payload;
        self.portions += 1;
        Ok(payload)
    }

    /// Terminate the chunked body (`0\r\n\r\n`) and flush. Returns
    /// `(wire_bytes, body_bytes, portions)`.
    pub fn finish(mut self) -> io::Result<(usize, usize, usize)> {
        if let Some(d) = self.deadline {
            d.check()?;
        }
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()?;
        self.wire_bytes += 5;
        self.finished = true;
        Ok((self.wire_bytes, self.body_bytes, self.portions))
    }

    /// Payload bytes streamed so far (excludes head and chunk framing).
    pub fn body_bytes(&self) -> usize {
        self.body_bytes
    }
}

/// Decoder state between [`ChunkedBodyReader::next_slice`] calls.
#[derive(Debug)]
enum DecodeState {
    /// Expecting a `{len:x}[;ext]\r\n` size line.
    SizeLine,
    /// Inside a chunk's data with this many payload bytes left.
    Data { remaining: usize },
    /// Expecting the CRLF that closes a chunk's data.
    DataCrlf,
    /// Past the `0` chunk: skipping trailer lines until the blank one.
    Trailers,
    /// Body fully decoded.
    Done,
}

/// Incremental chunked-body decoder over a fixed-capacity buffer.
///
/// The dual of [`ChunkedBodyWriter`]: call
/// [`next_slice`](Self::next_slice) repeatedly and it yields borrowed
/// slices of *decoded payload* (framing stripped) until `Ok(None)` marks
/// the clean end of the body. The internal buffer is allocated once at
/// construction and **never grows** — that buffer, not the message, is
/// the receiver's memory bound. Peak residency is observable via
/// [`capacity`](Self::capacity).
///
/// Defenses, all typed (no panics, no unbounded buffering, no hangs on
/// malformed input beyond what the underlying socket timeout allows):
/// * cumulative payload past `max_body` → [`HttpError::TooLarge`]
/// * a size line longer than 256 bytes → [`HttpError::TooLarge`]
/// * non-hex size, missing CRLFs, EOF mid-body → [`HttpError::BadChunk`]
/// * `ErrorKind::Interrupted` from the stream is retried, so a size line
///   split across short reads reassembles instead of erroring.
pub struct ChunkedBodyReader<R> {
    stream: R,
    buf: Box<[u8]>,
    /// Valid window is `buf[start..end]`.
    start: usize,
    end: usize,
    state: DecodeState,
    /// Cumulative decoded payload bytes.
    body_seen: usize,
    max_body: usize,
}

impl<R: Read> ChunkedBodyReader<R> {
    /// Decoder with the default 64 KiB buffer and a cumulative body cap.
    pub fn new(stream: R, max_body: usize) -> Self {
        Self::with_capacity(stream, Vec::new(), DEFAULT_STREAM_BUF, max_body)
    }

    /// Decoder over a caller-sized buffer, seeded with `leftover` bytes a
    /// head parser over-read past the blank line (see [`read_head`]).
    /// `capacity` is clamped up to hold `leftover` and at least one size
    /// line; it is allocated once and never grows.
    pub fn with_capacity(stream: R, leftover: Vec<u8>, capacity: usize, max_body: usize) -> Self {
        let cap = capacity.max(leftover.len()).max(MAX_SIZE_LINE + 2);
        let mut buf = vec![0u8; cap].into_boxed_slice();
        buf[..leftover.len()].copy_from_slice(&leftover);
        ChunkedBodyReader {
            stream,
            end: leftover.len(),
            buf,
            start: 0,
            state: DecodeState::SizeLine,
            body_seen: 0,
            max_body,
        }
    }

    /// The fixed buffer size — the receiver-side memory bound.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Cumulative decoded payload bytes yielded so far.
    pub fn body_bytes(&self) -> usize {
        self.body_seen
    }

    /// Give back the wrapped stream (e.g. to write a response on it).
    pub fn into_inner(self) -> R {
        self.stream
    }

    /// Yield the next decoded payload slice, or `Ok(None)` at the clean
    /// end of the body. The slice borrows the internal buffer and is
    /// invalidated by the next call.
    pub fn next_slice(&mut self) -> io::Result<Option<&[u8]>> {
        loop {
            match self.state {
                DecodeState::SizeLine => {
                    let line_end = self.require_line()?;
                    let line = &self.buf[self.start..line_end];
                    let size_text = line.split(|&b| b == b';').next().unwrap_or(line);
                    let size =
                        parse_hex(size_text).ok_or(HttpError::BadChunk("bad chunk size line"))?;
                    self.start = line_end + 2;
                    if size == 0 {
                        self.state = DecodeState::Trailers;
                    } else {
                        if size > self.max_body.saturating_sub(self.body_seen) {
                            return Err(HttpError::TooLarge("chunked body").into());
                        }
                        self.state = DecodeState::Data { remaining: size };
                    }
                }
                DecodeState::Data { remaining } => {
                    if self.start == self.end {
                        self.compact();
                        self.fill()?;
                    }
                    let take = remaining.min(self.end - self.start);
                    let at = self.start;
                    self.start += take;
                    self.body_seen += take;
                    self.state = if remaining == take {
                        DecodeState::DataCrlf
                    } else {
                        DecodeState::Data {
                            remaining: remaining - take,
                        }
                    };
                    return Ok(Some(&self.buf[at..at + take]));
                }
                DecodeState::DataCrlf => {
                    while self.end - self.start < 2 {
                        self.compact();
                        self.fill()?;
                    }
                    if &self.buf[self.start..self.start + 2] != b"\r\n" {
                        return Err(HttpError::BadChunk("missing CRLF after chunk data").into());
                    }
                    self.start += 2;
                    self.state = DecodeState::SizeLine;
                }
                DecodeState::Trailers => {
                    let line_end = self.require_line()?;
                    let blank = line_end == self.start;
                    self.start = line_end + 2;
                    if blank {
                        self.state = DecodeState::Done;
                    }
                }
                DecodeState::Done => return Ok(None),
            }
        }
    }

    /// Ensure a full CRLF-terminated line is buffered at `start`; returns
    /// the index of its `\r`. Lines are capped at [`MAX_SIZE_LINE`].
    fn require_line(&mut self) -> io::Result<usize> {
        loop {
            if let Some(p) = crate::http::find(&self.buf[self.start..self.end], b"\r\n") {
                return Ok(self.start + p);
            }
            if self.end - self.start > MAX_SIZE_LINE {
                return Err(HttpError::TooLarge("chunk size line").into());
            }
            self.compact();
            self.fill()?;
        }
    }

    /// Slide the unconsumed window to the buffer's front so `fill` has
    /// room. The buffer itself never grows: a line that cannot fit after
    /// compaction is already past [`MAX_SIZE_LINE`].
    fn compact(&mut self) {
        if self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
    }

    /// Read more bytes into the free tail, retrying EINTR. EOF inside the
    /// body is a typed `BadChunk` (the peer hung up mid-message).
    fn fill(&mut self) -> io::Result<()> {
        debug_assert!(self.end < self.buf.len(), "fill with no free space");
        let n = loop {
            match self.stream.read(&mut self.buf[self.end..]) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        if n == 0 {
            return Err(HttpError::BadChunk("EOF inside chunked body").into());
        }
        self.end += n;
        Ok(())
    }
}

/// Read one HTTP head (request or response — anything ending `\r\n\r\n`)
/// off a raw stream, returning the head bytes and whatever the reads
/// overshot past the blank line. The caller parses the head (e.g. with
/// [`parse_request_head`](crate::http::parse_request_head)) and seeds a
/// [`ChunkedBodyReader`] with the leftover, giving a server loop that
/// never buffers a body. Heads past `max_head` fail with
/// [`HttpError::TooLarge`]; EOF before any byte yields `Ok(None)` (clean
/// keep-alive close).
pub fn read_head(
    stream: &mut impl Read,
    max_head: usize,
) -> io::Result<Option<(Vec<u8>, Vec<u8>)>> {
    let mut buf = Vec::with_capacity(2048);
    let mut scratch = [0u8; 2048];
    loop {
        if let Some(head_end) = crate::http::head_end(&buf) {
            if head_end > max_head {
                return Err(HttpError::TooLarge("request head").into());
            }
            let leftover = buf.split_off(head_end);
            return Ok(Some((buf, leftover)));
        }
        if buf.len() > max_head {
            return Err(HttpError::TooLarge("request head").into());
        }
        let n = loop {
            match stream.read(&mut scratch) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::BadHead("EOF inside request head").into());
        }
        buf.extend_from_slice(&scratch[..n]);
    }
}
