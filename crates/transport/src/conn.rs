//! Sans-io per-connection state machine for the event-loop server core.
//!
//! A [`Conn`] owns everything one connection needs except the socket and
//! the clock: the parse buffer, the HTTP head/body decode position, the
//! response being written, and the lifecycle state
//! (`ReadingHead → ReadingBody/ReadingChunked → Dispatching → Writing →
//! Idle → Closing`). The event loop feeds it readiness events, timer
//! firings, and dispatch completions; the machine answers with
//! [`ConnAction`]s — dispatch this request, change epoll interest, arm or
//! cancel a timer, close me. Because no syscall and no clock reading
//! happens in here, the model-checked suite in `tests/conn_model.rs` can
//! drive the machine through randomized schedules with scripted I/O and
//! assert the exact transition trace and metrics snapshot.
//!
//! Timeout semantics mirror the worker-pool core's `BudgetedRead`:
//! * `read_timeout` → [`TimerKind::ReadStall`], slid forward on every
//!   read that makes progress; it also covers the gap between keep-alive
//!   requests (the worker pool's socket timeout does too).
//! * `request_timeout` → [`TimerKind::RequestBudget`], armed when the
//!   first byte of a request head arrives and canceled when the request
//!   completes — an idle keep-alive gap is *never* on the budget.
//! * `idle_timeout` → [`TimerKind::IdleReap`], armed only while Idle;
//!   this knob is new with the event-loop core (the worker pool can only
//!   conflate idle reaping with `read_timeout`).

use crate::http::{head_end, parse_hex, parse_request_head, BodyFraming, HttpError, RequestHead};
use crate::timer::TimerKind;
use bsoap_obs::{Counter, Recorder, TraceKind};
use std::io::{self, Read, Write};
use std::sync::Arc;
use std::time::Duration;

/// Longest permitted chunk-size line (mirrors `stream.rs`).
const MAX_SIZE_LINE: usize = 256;

/// Lifecycle states of one connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnState {
    /// Keep-alive gap: no request in progress, buffer empty.
    Idle,
    /// Accumulating bytes of a request head.
    ReadingHead,
    /// Consuming a `Content-Length` body.
    ReadingBody,
    /// Decoding a chunked body incrementally.
    ReadingChunked,
    /// A complete request is with the dispatch pool; reads are disarmed.
    Dispatching,
    /// Draining the rendered response to the socket.
    Writing,
    /// Terminal: the loop is tearing the connection down.
    Closing,
}

/// Why a connection closed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CloseReason {
    /// Peer closed cleanly between requests.
    CleanEof,
    /// A `ReadStall` or `RequestBudget` timer fired (slow-loris or
    /// budget eviction).
    Evicted,
    /// The idle reaper fired on a keep-alive gap.
    IdleReaped,
    /// The request was malformed; a 400 was written first.
    BadRequest,
    /// The socket write side failed or reported `Ok(0)`.
    WriteFailed,
    /// Graceful drain finished this connection's in-flight request.
    Drained,
    /// Unexpected I/O error on the read side.
    Error,
}

/// What the event loop should do on the machine's behalf.
#[derive(Debug)]
pub enum ConnAction {
    /// Hand a complete request to the dispatch pool.
    Dispatch(RequestHead, ReqBody),
    /// Change epoll interest for this connection's socket.
    Interest {
        /// Want readability.
        read: bool,
        /// Want writability.
        write: bool,
    },
    /// Arm (or slide) this timer kind `after` from now.
    Arm(TimerKind, Duration),
    /// Cancel this timer kind if armed.
    Cancel(TimerKind),
    /// A response finished writing; `bytes` went on the wire.
    /// `measure` is false for `/metrics` scrapes (the worker-pool core
    /// excludes those from throughput accounting too).
    Responded {
        /// Head + body bytes written.
        bytes: u64,
        /// Whether to tick throughput counters/histograms.
        measure: bool,
    },
    /// Tear the connection down.
    Close(CloseReason),
}

/// A request body as delivered to the handler.
#[derive(Debug, PartialEq, Eq)]
pub enum ReqBody {
    /// Fully buffered body bytes.
    Full(Vec<u8>),
    /// The body was streamed into a [`BodySink`] as it decoded; only the
    /// byte count reaches the handler.
    Streamed {
        /// Decoded body length.
        bytes: usize,
    },
}

impl ReqBody {
    /// Body length in bytes.
    pub fn len(&self) -> usize {
        match self {
            ReqBody::Full(b) => b.len(),
            ReqBody::Streamed { bytes } => *bytes,
        }
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A rendered-to-be response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Whether this response counts toward throughput metrics
    /// (false for `/metrics` scrapes).
    pub measure: bool,
    /// Extra response headers (name, value) appended verbatim after the
    /// standard head — how wire-format negotiation echoes
    /// `X-BSOAP-Accept` / `X-BSOAP-Format` back to the client. Empty for
    /// plain responses.
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A measured `text/xml` response — the common case.
    pub fn xml(status: u16, reason: &'static str, body: Vec<u8>) -> Response {
        Response {
            status,
            reason,
            content_type: "text/xml; charset=utf-8",
            body,
            measure: true,
            extra_headers: Vec::new(),
        }
    }

    /// Attach an extra response header (builder-style).
    pub fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.extra_headers.push((name, value));
        self
    }
}

/// Incremental consumer for request bodies the server should never
/// buffer whole (e.g. overlaid chunked uploads feeding a
/// `StreamingDeserializer`).
pub trait BodySink: Send {
    /// Consume the next decoded body slice.
    fn on_slice(&mut self, slice: &[u8]) -> io::Result<()>;
    /// The body is complete.
    fn finish(&mut self) -> io::Result<()>;
}

/// Per-request sink chooser: `None` means buffer the body normally.
pub type SinkFactory = Arc<dyn Fn(&RequestHead) -> Option<Box<dyn BodySink>> + Send + Sync>;

/// Limits and timeouts, usually derived from `ServerOptions`.
#[derive(Clone)]
pub struct ConnConfig {
    /// Head size cap.
    pub max_head: usize,
    /// Body size cap.
    pub max_body: usize,
    /// Stall eviction: no read progress for this long.
    pub read_timeout: Option<Duration>,
    /// Whole-request budget from the first head byte.
    pub request_timeout: Option<Duration>,
    /// Idle keep-alive reaper.
    pub idle_timeout: Option<Duration>,
    /// Optional streaming sink chooser.
    pub sink_factory: Option<SinkFactory>,
}

impl Default for ConnConfig {
    fn default() -> Self {
        ConnConfig {
            max_head: 1 << 20,
            max_body: 64 << 20,
            read_timeout: None,
            request_timeout: None,
            idle_timeout: None,
            sink_factory: None,
        }
    }
}

/// Chunked-body decode position (the `stream.rs` grammar, incremental).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ChunkPhase {
    SizeLine,
    Data { remaining: usize },
    DataCrlf,
    Trailers,
}

/// One connection's state machine. See the module docs.
pub struct Conn {
    id: u64,
    state: ConnState,
    cfg: ConnConfig,
    /// Unparsed input; `consumed..` is live.
    buf: Vec<u8>,
    consumed: usize,
    head: Option<RequestHead>,
    body: Vec<u8>,
    sink: Option<Box<dyn BodySink>>,
    body_remaining: usize,
    body_seen: usize,
    chunk: ChunkPhase,
    /// Rendered HTTP head. The body is NOT copied in here: it stays in
    /// `write_body` and the two are gathered into one `writev`, so a
    /// response payload (often a resident template's bytes) crosses no
    /// per-response scratch buffer.
    write_buf: Vec<u8>,
    /// Response payload, moved (not copied) from the dispatch result.
    write_body: Vec<u8>,
    /// Drain position across the logical `head ++ body` byte stream.
    write_pos: usize,
    pending_response: Option<(u64, bool)>,
    close_after_write: Option<CloseReason>,
    draining: bool,
    transitions: Vec<(ConnState, ConnState)>,
}

impl Conn {
    /// Fresh connection in `Idle`, identified by `id` in traces.
    pub fn new(id: u64, cfg: ConnConfig) -> Conn {
        Conn {
            id,
            state: ConnState::Idle,
            cfg,
            buf: Vec::with_capacity(4096),
            consumed: 0,
            head: None,
            body: Vec::new(),
            sink: None,
            body_remaining: 0,
            body_seen: 0,
            chunk: ChunkPhase::SizeLine,
            write_buf: Vec::new(),
            write_body: Vec::new(),
            write_pos: 0,
            pending_response: None,
            close_after_write: None,
            draining: false,
            transitions: Vec::new(),
        }
    }

    /// Connection id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current state.
    pub fn state(&self) -> ConnState {
        self.state
    }

    /// Whether the machine reached `Closing`.
    pub fn is_closing(&self) -> bool {
        self.state == ConnState::Closing
    }

    /// Every `(from, to)` edge taken so far, in order.
    pub fn transitions(&self) -> &[(ConnState, ConnState)] {
        &self.transitions
    }

    /// Unparsed buffered bytes (pipelined leftovers).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Timer actions a fresh connection needs (idle reaper + stall
    /// timer); the loop applies these right after registration.
    pub fn on_accept(&mut self, out: &mut Vec<ConnAction>) {
        if let Some(t) = self.cfg.idle_timeout {
            out.push(ConnAction::Arm(TimerKind::IdleReap, t));
        }
        if let Some(t) = self.cfg.read_timeout {
            out.push(ConnAction::Arm(TimerKind::ReadStall, t));
        }
    }

    fn set_state(&mut self, to: ConnState, rec: &dyn Recorder) {
        debug_assert_ne!(self.state, to);
        self.transitions.push((self.state, to));
        rec.add(Counter::ConnStateTransitions, 1);
        self.state = to;
    }

    fn reading(&self) -> bool {
        matches!(
            self.state,
            ConnState::Idle
                | ConnState::ReadingHead
                | ConnState::ReadingBody
                | ConnState::ReadingChunked
        )
    }

    fn close(&mut self, reason: CloseReason, rec: &dyn Recorder, out: &mut Vec<ConnAction>) {
        if self.state == ConnState::Closing {
            return;
        }
        self.set_state(ConnState::Closing, rec);
        out.push(ConnAction::Close(reason));
    }

    /// Readiness: the socket reported readable. Reads until exhaustion
    /// (`WouldBlock`), EOF, or the machine leaves a reading state.
    pub fn on_readable(
        &mut self,
        io: &mut impl Read,
        rec: &dyn Recorder,
        out: &mut Vec<ConnAction>,
    ) {
        let mut scratch = [0u8; 16 * 1024];
        let mut progress = false;
        while self.reading() {
            match io.read(&mut scratch) {
                Ok(0) => {
                    self.on_eof(rec, out);
                    break;
                }
                Ok(n) => {
                    progress = true;
                    self.buf.extend_from_slice(&scratch[..n]);
                    self.advance(rec, out);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    self.close(CloseReason::Error, rec, out);
                    break;
                }
            }
        }
        // Progress slides the stall timer; the budget timer deliberately
        // does not move.
        if progress && self.reading() {
            if let Some(t) = self.cfg.read_timeout {
                out.push(ConnAction::Arm(TimerKind::ReadStall, t));
            }
        }
    }

    fn on_eof(&mut self, rec: &dyn Recorder, out: &mut Vec<ConnAction>) {
        match self.state {
            ConnState::Idle => self.close(CloseReason::CleanEof, rec, out),
            ConnState::ReadingHead => {
                self.bad_request(HttpError::BadHead("EOF inside request head"), rec, out)
            }
            ConnState::ReadingBody | ConnState::ReadingChunked => {
                self.bad_request(HttpError::BadFraming("EOF inside request body"), rec, out)
            }
            _ => {}
        }
    }

    /// Malformed input: tick the counter, queue a 400, close after it
    /// drains — byte-for-byte what the worker-pool core does.
    fn bad_request(&mut self, err: HttpError, rec: &dyn Recorder, out: &mut Vec<ConnAction>) {
        rec.add(Counter::ServerBadRequests, 1);
        let ioe: io::Error = err.into();
        let resp = Response {
            status: 400,
            reason: "Bad Request",
            content_type: "text/xml; charset=utf-8",
            body: ioe.to_string().into_bytes(),
            measure: false,
            extra_headers: Vec::new(),
        };
        out.push(ConnAction::Cancel(TimerKind::ReadStall));
        out.push(ConnAction::Cancel(TimerKind::RequestBudget));
        out.push(ConnAction::Cancel(TimerKind::IdleReap));
        self.render(resp);
        self.close_after_write = Some(CloseReason::BadRequest);
        self.set_state(ConnState::Writing, rec);
        out.push(ConnAction::Interest {
            read: false,
            write: true,
        });
    }

    fn window(&self) -> &[u8] {
        &self.buf[self.consumed..]
    }

    fn compact(&mut self) {
        if self.consumed > 0 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
    }

    /// Parse as far as the buffered bytes allow.
    fn advance(&mut self, rec: &dyn Recorder, out: &mut Vec<ConnAction>) {
        loop {
            match self.state {
                ConnState::Idle => {
                    if self.window().is_empty() {
                        break;
                    }
                    // First byte of a new request: off the idle timers,
                    // onto the request budget.
                    self.set_state(ConnState::ReadingHead, rec);
                    out.push(ConnAction::Cancel(TimerKind::IdleReap));
                    if let Some(t) = self.cfg.request_timeout {
                        out.push(ConnAction::Arm(TimerKind::RequestBudget, t));
                    }
                }
                ConnState::ReadingHead => {
                    let window = self.window();
                    let Some(e) = head_end(window) else {
                        if window.len() > self.cfg.max_head {
                            self.bad_request(HttpError::TooLarge("request head"), rec, out);
                        }
                        break;
                    };
                    if e > self.cfg.max_head {
                        self.bad_request(HttpError::TooLarge("request head"), rec, out);
                        break;
                    }
                    let head = match parse_request_head(&window[..e]) {
                        Ok(h) => h,
                        Err(err) => {
                            self.bad_request(err, rec, out);
                            break;
                        }
                    };
                    self.consumed += e;
                    let framing = match head.body_framing() {
                        Ok(f) => f,
                        Err(err) => {
                            self.bad_request(err, rec, out);
                            break;
                        }
                    };
                    self.sink = self.cfg.sink_factory.as_ref().and_then(|f| f(&head));
                    self.head = Some(head);
                    self.body.clear();
                    self.body_seen = 0;
                    match framing {
                        BodyFraming::Length(n) if n > self.cfg.max_body => {
                            self.bad_request(
                                HttpError::TooLarge("declared content-length"),
                                rec,
                                out,
                            );
                            break;
                        }
                        BodyFraming::Length(0) => self.complete_request(rec, out),
                        BodyFraming::Length(n) => {
                            self.body_remaining = n;
                            self.set_state(ConnState::ReadingBody, rec);
                        }
                        BodyFraming::Chunked => {
                            self.chunk = ChunkPhase::SizeLine;
                            self.set_state(ConnState::ReadingChunked, rec);
                        }
                    }
                }
                ConnState::ReadingBody => {
                    let take = self.body_remaining.min(self.window().len());
                    if take > 0 {
                        let start = self.consumed;
                        if let Err(err) = self.push_body(start, take) {
                            self.bad_request(err, rec, out);
                            break;
                        }
                        self.consumed += take;
                        self.body_remaining -= take;
                    }
                    if self.body_remaining == 0 {
                        self.complete_request(rec, out);
                    } else {
                        break;
                    }
                }
                ConnState::ReadingChunked => {
                    if !self.step_chunked(rec, out) {
                        break;
                    }
                }
                _ => break,
            }
        }
        self.compact();
    }

    /// Route `take` bytes at `buf[start..]` into the sink or the body
    /// buffer. A sink error is a bad request (mirrors a deserialization
    /// failure on the buffered path).
    fn push_body(&mut self, start: usize, take: usize) -> Result<(), HttpError> {
        self.body_seen += take;
        if let Some(sink) = self.sink.as_mut() {
            let slice = &self.buf[start..start + take];
            sink.on_slice(slice)
                .map_err(|_| HttpError::BadFraming("body sink rejected input"))?;
        } else {
            self.body.extend_from_slice(&self.buf[start..start + take]);
        }
        Ok(())
    }

    /// One chunked-decode step. Returns false when more bytes are needed
    /// or the machine left the chunked state.
    fn step_chunked(&mut self, rec: &dyn Recorder, out: &mut Vec<ConnAction>) -> bool {
        match self.chunk {
            ChunkPhase::SizeLine => {
                let window = self.window();
                let Some(p) = crate::http::find(window, b"\r\n") else {
                    if window.len() > MAX_SIZE_LINE + 2 {
                        self.bad_request(
                            HttpError::BadChunk("oversized chunk size line"),
                            rec,
                            out,
                        );
                    }
                    return false;
                };
                if p > MAX_SIZE_LINE {
                    self.bad_request(HttpError::BadChunk("oversized chunk size line"), rec, out);
                    return false;
                }
                let line = &window[..p];
                let size_part = line.split(|&b| b == b';').next().unwrap_or(line);
                let Some(size) = parse_hex(size_part.trim_ascii()) else {
                    self.bad_request(HttpError::BadChunk("bad chunk size"), rec, out);
                    return false;
                };
                self.consumed += p + 2;
                if size == 0 {
                    self.chunk = ChunkPhase::Trailers;
                } else if self.body_seen + size > self.cfg.max_body {
                    self.bad_request(HttpError::TooLarge("chunked body"), rec, out);
                    return false;
                } else {
                    self.chunk = ChunkPhase::Data { remaining: size };
                }
                true
            }
            ChunkPhase::Data { remaining } => {
                let take = remaining.min(self.window().len());
                if take > 0 {
                    let start = self.consumed;
                    if let Err(err) = self.push_body(start, take) {
                        self.bad_request(err, rec, out);
                        return false;
                    }
                    self.consumed += take;
                }
                if take == remaining {
                    self.chunk = ChunkPhase::DataCrlf;
                    true
                } else {
                    self.chunk = ChunkPhase::Data {
                        remaining: remaining - take,
                    };
                    false
                }
            }
            ChunkPhase::DataCrlf => {
                let window = self.window();
                if window.len() < 2 {
                    return false;
                }
                if &window[..2] != b"\r\n" {
                    self.bad_request(HttpError::BadChunk("missing CRLF after chunk"), rec, out);
                    return false;
                }
                self.consumed += 2;
                self.chunk = ChunkPhase::SizeLine;
                true
            }
            ChunkPhase::Trailers => {
                let window = self.window();
                let Some(p) = crate::http::find(window, b"\r\n") else {
                    if window.len() > self.cfg.max_head {
                        self.bad_request(HttpError::BadChunk("oversized trailers"), rec, out);
                    }
                    return false;
                };
                self.consumed += p + 2;
                if p == 0 {
                    self.complete_request(rec, out);
                    return false;
                }
                true
            }
        }
    }

    /// A full request is buffered/streamed: hand it off and stop reading
    /// until the response comes back (backpressure by disarmed interest).
    fn complete_request(&mut self, rec: &dyn Recorder, out: &mut Vec<ConnAction>) {
        let head = self.head.take().expect("request head set");
        let body = if let Some(mut sink) = self.sink.take() {
            if sink.finish().is_err() {
                self.bad_request(HttpError::BadFraming("body sink rejected finish"), rec, out);
                return;
            }
            ReqBody::Streamed {
                bytes: self.body_seen,
            }
        } else {
            ReqBody::Full(std::mem::take(&mut self.body))
        };
        out.push(ConnAction::Cancel(TimerKind::ReadStall));
        out.push(ConnAction::Cancel(TimerKind::RequestBudget));
        self.set_state(ConnState::Dispatching, rec);
        out.push(ConnAction::Interest {
            read: false,
            write: false,
        });
        out.push(ConnAction::Dispatch(head, body));
    }

    /// The dispatch pool finished the request: render and start writing.
    /// The loop should attempt `on_writable` immediately after.
    pub fn on_dispatch_done(&mut self, resp: Response, rec: &dyn Recorder) {
        if self.state != ConnState::Dispatching {
            return;
        }
        let measure = resp.measure;
        self.render(resp);
        self.pending_response = Some((
            (self.write_buf.len() + self.write_body.len()) as u64,
            measure,
        ));
        self.set_state(ConnState::Writing, rec);
    }

    fn render(&mut self, resp: Response) {
        crate::http::render_response_head_extra(
            &mut self.write_buf,
            resp.status,
            resp.reason,
            resp.content_type,
            resp.body.len(),
            &resp.extra_headers,
        );
        // Move, don't copy: the payload drains from its own buffer,
        // gathered with the head in one vectored write.
        self.write_body = resp.body;
        self.write_pos = 0;
    }

    /// Readiness (or optimistic attempt): drain the response.
    pub fn on_writable(
        &mut self,
        io: &mut impl Write,
        rec: &dyn Recorder,
        out: &mut Vec<ConnAction>,
    ) {
        if self.state != ConnState::Writing {
            return;
        }
        // `write_pos` walks the logical `head ++ body` stream. While still
        // inside the head, gather head-remainder and body in one `writev`;
        // once past it, drain the body tail with plain writes.
        let total = self.write_buf.len() + self.write_body.len();
        while self.write_pos < total {
            let res = if self.write_pos < self.write_buf.len() {
                if self.write_body.is_empty() {
                    io.write(&self.write_buf[self.write_pos..])
                } else {
                    io.write_vectored(&[
                        io::IoSlice::new(&self.write_buf[self.write_pos..]),
                        io::IoSlice::new(&self.write_body),
                    ])
                }
            } else {
                io.write(&self.write_body[self.write_pos - self.write_buf.len()..])
            };
            match res {
                Ok(0) => {
                    self.close(CloseReason::WriteFailed, rec, out);
                    return;
                }
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    out.push(ConnAction::Interest {
                        read: false,
                        write: true,
                    });
                    return;
                }
                Err(_) => {
                    self.close(CloseReason::WriteFailed, rec, out);
                    return;
                }
            }
        }
        // Response fully on the wire.
        self.write_buf.clear();
        self.write_body.clear();
        self.write_pos = 0;
        if let Some((bytes, measure)) = self.pending_response.take() {
            out.push(ConnAction::Responded { bytes, measure });
        }
        if let Some(reason) = self.close_after_write.take() {
            self.close(reason, rec, out);
            return;
        }
        if self.draining {
            self.close(CloseReason::Drained, rec, out);
            return;
        }
        if self.buffered() > 0 {
            // Pipelined: the next request's first bytes are already here.
            self.set_state(ConnState::ReadingHead, rec);
            if let Some(t) = self.cfg.request_timeout {
                out.push(ConnAction::Arm(TimerKind::RequestBudget, t));
            }
            if let Some(t) = self.cfg.read_timeout {
                out.push(ConnAction::Arm(TimerKind::ReadStall, t));
            }
            self.advance(rec, out);
            if self.reading() {
                out.push(ConnAction::Interest {
                    read: true,
                    write: false,
                });
            }
        } else {
            self.enter_idle(rec, out);
        }
    }

    fn enter_idle(&mut self, rec: &dyn Recorder, out: &mut Vec<ConnAction>) {
        self.set_state(ConnState::Idle, rec);
        if let Some(t) = self.cfg.idle_timeout {
            out.push(ConnAction::Arm(TimerKind::IdleReap, t));
        }
        if let Some(t) = self.cfg.read_timeout {
            out.push(ConnAction::Arm(TimerKind::ReadStall, t));
        }
        out.push(ConnAction::Interest {
            read: true,
            write: false,
        });
    }

    /// A timer this connection armed fired.
    pub fn on_timer(&mut self, kind: TimerKind, rec: &dyn Recorder, out: &mut Vec<ConnAction>) {
        match (kind, self.state) {
            (TimerKind::ReadStall, s) if self.reading() => {
                rec.add(Counter::ServerTimeouts, 1);
                rec.trace(TraceKind::Evict {
                    conn_id: self.id,
                    idle: s == ConnState::Idle,
                });
                self.close(CloseReason::Evicted, rec, out);
            }
            (
                TimerKind::RequestBudget,
                ConnState::ReadingHead | ConnState::ReadingBody | ConnState::ReadingChunked,
            ) => {
                rec.add(Counter::ServerTimeouts, 1);
                rec.trace(TraceKind::Evict {
                    conn_id: self.id,
                    idle: false,
                });
                self.close(CloseReason::Evicted, rec, out);
            }
            (TimerKind::IdleReap, ConnState::Idle) => {
                rec.add(Counter::ServerIdleReaped, 1);
                rec.trace(TraceKind::Evict {
                    conn_id: self.id,
                    idle: true,
                });
                self.close(CloseReason::IdleReaped, rec, out);
            }
            // A firing that raced a state change in the same batch is
            // stale: ignore it.
            _ => {}
        }
    }

    /// Graceful drain: idle connections close now; anything mid-request
    /// finishes the current response, then closes.
    pub fn set_draining(&mut self, rec: &dyn Recorder, out: &mut Vec<ConnAction>) {
        self.draining = true;
        if self.state == ConnState::Idle {
            self.close(CloseReason::Drained, rec, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsoap_obs::NullRecorder;
    use std::collections::VecDeque;

    /// Scripted reader: a queue of byte runs and errors.
    struct Script(VecDeque<io::Result<Vec<u8>>>);

    impl Script {
        fn new(items: Vec<io::Result<Vec<u8>>>) -> Script {
            Script(items.into())
        }
    }

    impl Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.0.pop_front() {
                None => Err(io::ErrorKind::WouldBlock.into()),
                Some(Ok(bytes)) => {
                    assert!(bytes.len() <= buf.len());
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Some(Err(e)) => Err(e),
            }
        }
    }

    fn states(conn: &Conn) -> Vec<ConnState> {
        conn.transitions().iter().map(|&(_, to)| to).collect()
    }

    #[test]
    fn whole_request_in_one_read_dispatches() {
        let rec = NullRecorder;
        let mut conn = Conn::new(1, ConnConfig::default());
        let mut out = Vec::new();
        let wire = b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello".to_vec();
        let mut io = Script::new(vec![Ok(wire)]);
        conn.on_readable(&mut io, &rec, &mut out);
        assert_eq!(
            states(&conn),
            vec![
                ConnState::ReadingHead,
                ConnState::ReadingBody,
                ConnState::Dispatching
            ]
        );
        let dispatched = out
            .iter()
            .find_map(|a| match a {
                ConnAction::Dispatch(h, b) => Some((h.path.clone(), b.len())),
                _ => None,
            })
            .expect("dispatched");
        assert_eq!(dispatched, ("/".to_owned(), 5));
    }

    #[test]
    fn split_head_and_body_across_reads() {
        let rec = NullRecorder;
        let mut conn = Conn::new(1, ConnConfig::default());
        let mut out = Vec::new();
        let mut io = Script::new(vec![
            Ok(b"POST / HT".to_vec()),
            Err(io::ErrorKind::Interrupted.into()),
            Ok(b"TP/1.1\r\nContent-Length: 4\r\n\r\nab".to_vec()),
            Ok(b"cd".to_vec()),
        ]);
        conn.on_readable(&mut io, &rec, &mut out);
        assert_eq!(conn.state(), ConnState::Dispatching);
        conn.on_dispatch_done(Response::xml(200, "OK", b"<ack/>".to_vec()), &rec);
        let mut wire = Vec::new();
        conn.on_writable(&mut wire, &rec, &mut out);
        assert_eq!(conn.state(), ConnState::Idle);
        assert!(wire.starts_with(b"HTTP/1.1 200 OK\r\n"));
        assert!(wire.ends_with(b"<ack/>"));
    }

    #[test]
    fn chunked_body_straddling_reads_decodes() {
        let rec = NullRecorder;
        let mut conn = Conn::new(1, ConnConfig::default());
        let mut out = Vec::new();
        let mut io = Script::new(vec![
            Ok(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r".to_vec()),
            Ok(b"\nwxyz\r\n3\r\nabc\r\n0\r\n".to_vec()),
            Ok(b"\r\n".to_vec()),
        ]);
        conn.on_readable(&mut io, &rec, &mut out);
        assert_eq!(conn.state(), ConnState::Dispatching);
        let body = out
            .iter()
            .find_map(|a| match a {
                ConnAction::Dispatch(_, ReqBody::Full(b)) => Some(b.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(body, b"wxyzabc");
    }

    #[test]
    fn eof_mid_head_is_bad_request_then_close() {
        let rec = NullRecorder;
        let mut conn = Conn::new(1, ConnConfig::default());
        let mut out = Vec::new();
        let mut io = Script::new(vec![Ok(b"POST / HTTP".to_vec()), Ok(vec![])]);
        conn.on_readable(&mut io, &rec, &mut out);
        assert_eq!(conn.state(), ConnState::Writing);
        let mut wire = Vec::new();
        conn.on_writable(&mut wire, &rec, &mut out);
        assert!(wire.starts_with(b"HTTP/1.1 400 Bad Request\r\n"));
        assert_eq!(conn.state(), ConnState::Closing);
        assert!(out
            .iter()
            .any(|a| matches!(a, ConnAction::Close(CloseReason::BadRequest))));
    }

    #[test]
    fn pipelined_requests_dispatch_back_to_back_without_readiness() {
        let rec = NullRecorder;
        let mut conn = Conn::new(1, ConnConfig::default());
        let mut out = Vec::new();
        let one = b"POST / HTTP/1.1\r\nContent-Length: 1\r\n\r\nA";
        let mut wire_in = one.to_vec();
        wire_in.extend_from_slice(one);
        let mut io = Script::new(vec![Ok(wire_in)]);
        conn.on_readable(&mut io, &rec, &mut out);
        assert_eq!(conn.state(), ConnState::Dispatching);
        assert_eq!(conn.buffered(), one.len(), "second request held back");
        conn.on_dispatch_done(Response::xml(200, "OK", b"<ack/>".to_vec()), &rec);
        out.clear();
        let mut wire = Vec::new();
        conn.on_writable(&mut wire, &rec, &mut out);
        // The leftover request dispatches straight from the buffer.
        assert_eq!(conn.state(), ConnState::Dispatching);
        assert!(out
            .iter()
            .any(|a| matches!(a, ConnAction::Dispatch(_, ReqBody::Full(b)) if b == b"A")));
    }

    #[test]
    fn stall_timer_evicts_only_while_reading() {
        let rec = NullRecorder;
        let cfg = ConnConfig {
            read_timeout: Some(Duration::from_millis(40)),
            ..ConnConfig::default()
        };
        let mut conn = Conn::new(1, cfg);
        let mut out = Vec::new();
        let mut io = Script::new(vec![Ok(b"POST / HTTP/1.1\r\nHost: lo".to_vec())]);
        conn.on_readable(&mut io, &rec, &mut out);
        assert_eq!(conn.state(), ConnState::ReadingHead);
        conn.on_timer(TimerKind::ReadStall, &rec, &mut out);
        assert_eq!(conn.state(), ConnState::Closing);
        assert!(out
            .iter()
            .any(|a| matches!(a, ConnAction::Close(CloseReason::Evicted))));
    }

    #[test]
    fn stale_timer_after_state_change_is_ignored() {
        let rec = NullRecorder;
        let mut conn = Conn::new(1, ConnConfig::default());
        let mut out = Vec::new();
        let mut io = Script::new(vec![Ok(
            b"POST / HTTP/1.1\r\nContent-Length: 0\r\n\r\n".to_vec()
        )]);
        conn.on_readable(&mut io, &rec, &mut out);
        assert_eq!(conn.state(), ConnState::Dispatching);
        conn.on_timer(TimerKind::RequestBudget, &rec, &mut out);
        assert_eq!(conn.state(), ConnState::Dispatching, "stale firing ignored");
    }

    #[test]
    fn drain_mid_request_finishes_then_closes() {
        let rec = NullRecorder;
        let mut conn = Conn::new(1, ConnConfig::default());
        let mut out = Vec::new();
        let mut io = Script::new(vec![Ok(
            b"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\nok".to_vec()
        )]);
        conn.on_readable(&mut io, &rec, &mut out);
        conn.set_draining(&rec, &mut out);
        assert_eq!(conn.state(), ConnState::Dispatching, "in-flight survives");
        conn.on_dispatch_done(Response::xml(200, "OK", b"<ack/>".to_vec()), &rec);
        let mut wire = Vec::new();
        conn.on_writable(&mut wire, &rec, &mut out);
        assert_eq!(conn.state(), ConnState::Closing);
        assert!(out
            .iter()
            .any(|a| matches!(a, ConnAction::Close(CloseReason::Drained))));
        assert!(wire.starts_with(b"HTTP/1.1 200 OK\r\n"), "response written");
    }

    #[test]
    fn idle_drain_closes_immediately() {
        let rec = NullRecorder;
        let mut conn = Conn::new(1, ConnConfig::default());
        let mut out = Vec::new();
        conn.set_draining(&rec, &mut out);
        assert_eq!(conn.state(), ConnState::Closing);
    }

    /// Writer that records each call: (was_vectored, slice_count, bytes
    /// accepted). `cap` limits how many bytes any one call may take.
    struct GatherProbe {
        wire: Vec<u8>,
        calls: Vec<(bool, usize, usize)>,
        cap: usize,
    }

    impl GatherProbe {
        fn new(cap: usize) -> GatherProbe {
            GatherProbe {
                wire: Vec::new(),
                calls: Vec::new(),
                cap,
            }
        }
    }

    impl Write for GatherProbe {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(self.cap);
            self.wire.extend_from_slice(&buf[..n]);
            self.calls.push((false, 1, n));
            Ok(n)
        }
        fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
            let mut left = self.cap;
            let mut took = 0;
            for b in bufs {
                let n = b.len().min(left);
                self.wire.extend_from_slice(&b[..n]);
                took += n;
                left -= n;
                if left == 0 {
                    break;
                }
            }
            self.calls.push((true, bufs.len(), took));
            Ok(took)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn dispatch_one(conn: &mut Conn, rec: &dyn Recorder, out: &mut Vec<ConnAction>) {
        let mut io = Script::new(vec![Ok(
            b"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\nok".to_vec()
        )]);
        conn.on_readable(&mut io, rec, out);
        assert_eq!(conn.state(), ConnState::Dispatching);
    }

    #[test]
    fn response_goes_out_in_one_gather_write() {
        let rec = NullRecorder;
        let mut conn = Conn::new(1, ConnConfig::default());
        let mut out = Vec::new();
        dispatch_one(&mut conn, &rec, &mut out);
        conn.on_dispatch_done(Response::xml(200, "OK", b"<sum>42</sum>".to_vec()), &rec);
        let mut io = GatherProbe::new(usize::MAX);
        conn.on_writable(&mut io, &rec, &mut out);
        assert_eq!(conn.state(), ConnState::Idle);
        // Head and body leave in a single vectored call: no scratch-buffer
        // copy, no second syscall.
        assert_eq!(io.calls.len(), 1);
        assert_eq!(io.calls[0], (true, 2, io.wire.len()));
        assert!(io.wire.starts_with(b"HTTP/1.1 200 OK\r\n"));
        assert!(io.wire.ends_with(b"<sum>42</sum>"));
        assert!(out
            .iter()
            .any(|a| matches!(a, ConnAction::Responded { bytes, .. }
                if *bytes == io.wire.len() as u64)));
    }

    #[test]
    fn short_gather_writes_resume_mid_head_and_mid_body() {
        let rec = NullRecorder;
        let mut conn = Conn::new(1, ConnConfig::default());
        let mut out = Vec::new();
        dispatch_one(&mut conn, &rec, &mut out);
        let body = b"<r>differential</r>".to_vec();
        conn.on_dispatch_done(Response::xml(200, "OK", body.clone()), &rec);
        // 7 bytes per call: many calls land mid-head, then mid-body.
        let mut io = GatherProbe::new(7);
        conn.on_writable(&mut io, &rec, &mut out);
        assert_eq!(conn.state(), ConnState::Idle);
        assert!(io.wire.starts_with(b"HTTP/1.1 200 OK\r\n"));
        assert!(io.wire.ends_with(&body[..]));
        // Calls while inside the head gather both slices; calls past the
        // head fall back to plain writes of the body tail.
        let head_len = io.wire.len() - body.len();
        let mut seen = 0;
        for &(vectored, slices, n) in &io.calls {
            if seen < head_len {
                assert!(vectored && slices == 2, "in-head call must gather");
            } else {
                assert!(!vectored, "body tail drains with plain writes");
            }
            seen += n;
        }
        assert_eq!(seen, io.wire.len());
    }

    #[test]
    fn empty_body_response_skips_vectored_path() {
        let rec = NullRecorder;
        let mut conn = Conn::new(1, ConnConfig::default());
        let mut out = Vec::new();
        dispatch_one(&mut conn, &rec, &mut out);
        conn.on_dispatch_done(Response::xml(204, "No Content", Vec::new()), &rec);
        let mut io = GatherProbe::new(usize::MAX);
        conn.on_writable(&mut io, &rec, &mut out);
        assert_eq!(io.calls.len(), 1);
        assert!(!io.calls[0].0, "no body: plain write, no empty IoSlice");
    }

    #[test]
    fn streamed_body_bypasses_buffering() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct CountSink(Arc<AtomicUsize>);
        impl BodySink for CountSink {
            fn on_slice(&mut self, s: &[u8]) -> io::Result<()> {
                self.0.fetch_add(s.len(), Ordering::Relaxed);
                Ok(())
            }
            fn finish(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = seen.clone();
        let cfg = ConnConfig {
            sink_factory: Some(Arc::new(move |_h: &RequestHead| {
                Some(Box::new(CountSink(seen2.clone())) as Box<dyn BodySink>)
            })),
            ..ConnConfig::default()
        };
        let rec = NullRecorder;
        let mut conn = Conn::new(1, cfg);
        let mut out = Vec::new();
        let mut io = Script::new(vec![Ok(
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n"
                .to_vec(),
        )]);
        conn.on_readable(&mut io, &rec, &mut out);
        assert_eq!(seen.load(Ordering::Relaxed), 5);
        assert!(out
            .iter()
            .any(|a| matches!(a, ConnAction::Dispatch(_, ReqBody::Streamed { bytes: 5 }))));
    }
}
