//! Thin readiness-polling shim over raw `epoll` + `eventfd`.
//!
//! The event-loop server core (see `event_loop.rs`) needs exactly four
//! kernel facilities: create an epoll instance, register/modify/remove
//! interest, block for readiness, and wake a blocked loop from another
//! thread. Rather than pull in a heavyweight async runtime, this module
//! declares the handful of glibc symbols directly (`epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `eventfd`) — the binary already links
//! glibc, so no new dependency is introduced.
//!
//! Everything is level-triggered: a socket with unread bytes stays ready,
//! so the loop disarms read interest while a request is in flight (see
//! `conn.rs`) instead of relying on edge semantics.
//!
//! On non-Linux targets every constructor returns
//! [`io::ErrorKind::Unsupported`] and [`supported`] reports `false`; the
//! server falls back to the worker-pool core.

/// Whether the readiness poller works on this target.
pub fn supported() -> bool {
    cfg!(target_os = "linux")
}

/// One readiness report for a registered token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PollEvent {
    /// Caller-chosen token passed to [`Poller::add`].
    pub token: u64,
    /// Readable (or a pending accept on a listener).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup — the fd should be serviced then closed.
    pub hangup: bool,
}

/// Interest set for a registration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Report readability.
    pub read: bool,
    /// Report writability.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Neither direction — registration kept, no readiness reported
    /// (except errors/hangup, which epoll always delivers).
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::{c_int, c_void};

    // Values from the Linux UAPI headers; stable ABI.
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    /// `struct epoll_event`; packed on x86-64 (glibc's `__EPOLL_PACKED`).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        pub fn eventfd(initval: u32, flags: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{sys, Interest, PollEvent};
    use std::io;
    use std::os::fd::{AsRawFd, RawFd};
    use std::time::Duration;

    fn last_error() -> io::Error {
        io::Error::last_os_error()
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = sys::EPOLLRDHUP;
        if interest.read {
            bits |= sys::EPOLLIN;
        }
        if interest.write {
            bits |= sys::EPOLLOUT;
        }
        bits
    }

    /// Level-triggered epoll instance.
    pub struct Poller {
        epfd: RawFd,
        scratch: Vec<sys::EpollEvent>,
    }

    impl Poller {
        /// New epoll instance (close-on-exec).
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall wrapper; no pointers involved.
            let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(last_error());
            }
            Ok(Poller {
                epfd,
                scratch: vec![sys::EpollEvent { events: 0, data: 0 }; super::MAX_EVENTS_PER_WAIT],
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, interest: Interest, token: u64) -> io::Result<()> {
            let mut ev = sys::EpollEvent {
                events: interest_bits(interest),
                data: token,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(last_error());
            }
            Ok(())
        }

        /// Register `fd` under `token` with the given interest.
        pub fn add(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_ADD, fd.as_raw_fd(), interest, token)
        }

        /// Change the interest set of a registered fd.
        pub fn modify(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_MOD, fd.as_raw_fd(), interest, token)
        }

        /// Remove a registration. Errors from already-closed fds are
        /// ignored — deregistration is best-effort on the close path.
        pub fn delete(&self, fd: &impl AsRawFd) {
            let mut ev = sys::EpollEvent { events: 0, data: 0 };
            // SAFETY: pre-2.6.9 kernels demand a non-null event pointer
            // for DEL; passing one is harmless everywhere else.
            unsafe {
                sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd.as_raw_fd(), &mut ev);
            }
        }

        /// Block until readiness or timeout; `None` blocks indefinitely.
        /// Fills `out` with the ready set (cleared first). EINTR returns
        /// an empty set rather than an error.
        pub fn wait(
            &mut self,
            out: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            out.clear();
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
            };
            // SAFETY: scratch is a live, properly-sized buffer.
            let rc = unsafe {
                sys::epoll_wait(
                    self.epfd,
                    self.scratch.as_mut_ptr(),
                    self.scratch.len() as i32,
                    timeout_ms,
                )
            };
            let n = if rc >= 0 {
                rc as usize
            } else {
                let err = last_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
                // EINTR: surface an empty wake; the loop re-waits.
                0
            };
            for ev in &self.scratch[..n] {
                // Copy out of the (possibly packed) struct before use.
                let events = ev.events;
                let data = ev.data;
                out.push(PollEvent {
                    token: data,
                    readable: events & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
                    writable: events & sys::EPOLLOUT != 0,
                    hangup: events & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: epfd is owned by this instance.
            unsafe {
                sys::close(self.epfd);
            }
        }
    }

    /// Cross-thread wakeup via `eventfd`: any thread may [`WakeFd::wake`]
    /// a loop blocked in [`Poller::wait`] once the read side is
    /// registered for read interest.
    #[derive(Debug)]
    pub struct WakeFd {
        fd: RawFd,
    }

    impl WakeFd {
        /// New nonblocking eventfd.
        pub fn new() -> io::Result<WakeFd> {
            // SAFETY: plain syscall wrapper.
            let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
            if fd < 0 {
                return Err(last_error());
            }
            Ok(WakeFd { fd })
        }

        /// Make the fd readable (idempotent until drained).
        pub fn wake(&self) {
            let one: u64 = 1;
            // SAFETY: writes 8 bytes from a live stack value; a full
            // counter (EAGAIN) already means "wake pending", so the
            // result is ignored.
            unsafe {
                sys::write(self.fd, (&one as *const u64).cast(), 8);
            }
        }

        /// Consume any pending wakes so the fd stops reading ready.
        pub fn drain(&self) {
            let mut buf: u64 = 0;
            // SAFETY: reads 8 bytes into a live stack value; EAGAIN when
            // already drained is the expected steady state.
            unsafe {
                sys::read(self.fd, (&mut buf as *mut u64).cast(), 8);
            }
        }
    }

    impl AsRawFd for WakeFd {
        fn as_raw_fd(&self) -> RawFd {
            self.fd
        }
    }

    impl Drop for WakeFd {
        fn drop(&mut self) {
            // SAFETY: fd is owned by this instance.
            unsafe {
                sys::close(self.fd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{Interest, PollEvent};
    use std::io;
    use std::time::Duration;

    fn unsupported() -> io::Error {
        io::Error::new(
            io::ErrorKind::Unsupported,
            "readiness poller requires Linux epoll",
        )
    }

    /// Stub poller for non-Linux targets: construction fails.
    #[derive(Debug)]
    pub struct Poller {}

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Err(unsupported())
        }

        pub fn add<T>(&self, _fd: &T, _token: u64, _interest: Interest) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn modify<T>(&self, _fd: &T, _token: u64, _interest: Interest) -> io::Result<()> {
            Err(unsupported())
        }

        pub fn delete<T>(&self, _fd: &T) {}

        pub fn wait(
            &mut self,
            _out: &mut Vec<PollEvent>,
            _timeout: Option<Duration>,
        ) -> io::Result<()> {
            Err(unsupported())
        }
    }

    /// Stub wake handle for non-Linux targets: construction fails.
    #[derive(Debug)]
    pub struct WakeFd {}

    impl WakeFd {
        pub fn new() -> io::Result<WakeFd> {
            Err(unsupported())
        }

        pub fn wake(&self) {}

        pub fn drain(&self) {}
    }
}

/// Most events one `epoll_wait` call can report.
const MAX_EVENTS_PER_WAIT: usize = 256;

pub use imp::{Poller, WakeFd};

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(&listener, 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "no connection yet");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn stream_readability_tracks_data_and_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.add(&server, 42, Interest::READ).unwrap();
        let mut events = Vec::new();

        client.write_all(b"ping").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));

        // Level-triggered: still readable until drained; disarming read
        // interest silences it without deregistering.
        poller.modify(&server, 42, Interest::NONE).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "interest disarmed");

        poller.modify(&server, 42, Interest::READ).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));

        let mut buf = [0u8; 8];
        let mut s = &server;
        assert_eq!(s.read(&mut buf).unwrap(), 4);
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "drained socket is quiet");
    }

    #[test]
    fn wake_fd_crosses_threads_and_drains() {
        let wake = std::sync::Arc::new(WakeFd::new().unwrap());
        let mut poller = Poller::new().unwrap();
        poller.add(&*wake, 1, Interest::READ).unwrap();
        let mut events = Vec::new();

        let w = wake.clone();
        let t = std::thread::spawn(move || w.wake());
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        t.join().unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));

        wake.drain();
        let start = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "drained wake fd is quiet");
        assert!(start.elapsed() >= Duration::from_millis(15), "waited out");
    }

    #[test]
    fn peer_close_reports_readable_for_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(&server, 9, Interest::READ).unwrap();
        drop(client);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        // RDHUP folds into `readable`: the loop reads, sees EOF, closes.
        assert!(events.iter().any(|e| e.token == 9 && e.readable));
    }
}
