//! # bsoap-transport — measurement rig and wire transports for bSOAP
//!
//! The paper measures **Send Time**: "starting a timer before preparing
//! the message for sending, and stopping the timer right after the final
//! `send()` system call on the socket" (§4), against "a dummy SOAP server
//! … \[that\] does not deserialize or parse the incoming SOAP packet".
//! This crate is that rig, plus the HTTP framing a real deployment needs:
//!
//! * [`sink`] — [`sink::SinkTransport`], an in-process
//!   counting discard sink. Deterministic (no kernel, no scheduler), it is
//!   the default target for the benchmark figures: Send Time becomes pure
//!   serialization + buffer-walk cost, which is what the paper's
//!   client-side measurements isolate.
//! * [`http`] — HTTP/1.0 (`Content-Length`) and HTTP/1.1
//!   (`Transfer-Encoding: chunked`) request framing, header parsing, and
//!   chunked encode/decode. HTTP 1.1 chunking is what makes chunk
//!   overlaying stream-as-you-serialize (§3.3).
//! * [`tcp`] — a real TCP client with the paper's socket options
//!   (`TCP_NODELAY`, keep-alive) and a [`Transport`] implementation.
//! * [`pool`] — a per-endpoint pool of persistent keep-alive connections
//!   ([`pool::ConnectionPool`]) and a pooled HTTP client
//!   ([`pool::HttpPoolClient`]) with health-checked checkout, idle
//!   reaping, and transparent reconnect-and-retry on stale sockets.
//! * [`accept`] — a bounded worker pool fed by blocking accepts
//!   ([`accept::serve`]): the server-side counterpart of the pool, with
//!   graceful drain on shutdown.
//! * [`server`] — loopback servers: the paper's discard server plus a
//!   collecting server that hands complete request bodies to tests,
//!   running on either core selected by [`server::ServerCore`].
//! * [`event_loop`] / [`conn`] / [`timer`] / [`poller`] — the
//!   readiness-driven server core: an epoll loop
//!   ([`event_loop::EventLoopServer`]) multiplexing many connections over
//!   a few threads, each connection an explicit sans-io state machine
//!   ([`conn::Conn`]) with timer-wheel deadlines ([`timer::TimerWheel`])
//!   replacing per-thread socket timeouts.
//!
//! The [`Transport`] trait is the seam between the serialization engine
//! and the wire: one SOAP message (as a gather list of chunk slices) in,
//! bytes-on-the-wire count out.

pub mod accept;
pub mod conn;
pub mod event_loop;
pub mod fault;
pub mod http;
pub mod negotiate;
pub mod poller;
pub mod pool;
pub mod server;
pub mod sink;
pub mod stream;
pub mod tcp;
pub mod timer;

pub use accept::{serve, serve_with_metrics, PoolOptions, WorkerPool};
pub use conn::{BodySink, Conn, ConnAction, ConnConfig, ConnState, ReqBody, Response, SinkFactory};
pub use event_loop::{EventLoopOptions, EventLoopServer, Handler, ServeMode};
pub use fault::{AttemptFailure, CircuitBreaker, FaultPolicy, Resilience};
pub use http::{render_get_request, HttpError, HttpVersion, PostScratch, RequestConfig};
pub use negotiate::{NegotiationState, Negotiator};
pub use pool::{ConnectionPool, HttpPoolClient, HttpReply, PoolConfig, PoolStats, PooledConn};
pub use server::{
    CollectedRequest, ServerCore, ServerMode, ServerOptions, ServerStats, TestServer,
};
pub use sink::{ProvenanceSink, SinkTransport};
pub use stream::{read_head, ChunkedBodyReader, ChunkedBodyWriter};
pub use tcp::TcpTransport;
pub use timer::{TimerKind, TimerWheel};

use std::io::{self, IoSlice};

/// A place a serialized SOAP message can be sent.
///
/// Implementations receive the message as the chunk store's gather list so
/// non-contiguous templates are sent without flattening (§3.2's
/// "scatter-gather sends" consideration).
pub trait Transport {
    /// Send one complete SOAP message; returns total bytes written to the
    /// underlying medium (including any framing overhead).
    fn send_message(&mut self, message: &[IoSlice<'_>]) -> io::Result<usize>;

    /// Total bytes accepted over this transport's lifetime.
    fn bytes_sent(&self) -> u64;
}

/// Sum of a gather list's lengths.
pub fn gather_len(slices: &[IoSlice<'_>]) -> usize {
    slices.iter().map(|s| s.len()).sum()
}

/// Drain a gather list into a plain `Write`, handling partial vectored
/// writes and `Interrupted` (EINTR) retries. (Kept local so this crate
/// sits below the engine in the crate graph.)
///
/// One up-front copy of the gather list; after a partial write only the
/// first unconsumed entry is re-sliced, so draining is O(n) overall
/// instead of O(n²) view rebuilds on dribbling writers.
pub fn write_gather(w: &mut impl io::Write, slices: &[IoSlice<'_>]) -> io::Result<usize> {
    let total = gather_len(slices);
    let mut view: Vec<IoSlice<'_>> = slices.iter().map(|s| IoSlice::new(s)).collect();
    // Position: first unconsumed slice and byte offset within it.
    let mut idx = 0usize;
    let mut off = 0usize;
    while idx < slices.len() && slices[idx].is_empty() {
        idx += 1;
    }
    while idx < slices.len() {
        let n = match w.write_vectored(&view[idx..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "vectored write returned zero",
                ))
            }
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        let mut remaining = n + off;
        off = 0;
        while idx < slices.len() && remaining >= slices[idx].len() {
            remaining -= slices[idx].len();
            idx += 1;
        }
        if idx < slices.len() {
            off = remaining;
            view[idx] = IoSlice::new(&slices[idx][off..]);
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn gather_len_sums() {
        let a = b"ab".to_vec();
        let b = b"cde".to_vec();
        let slices = [IoSlice::new(&a), IoSlice::new(&b)];
        assert_eq!(gather_len(&slices), 5);
        assert_eq!(gather_len(&[]), 0);
    }

    #[test]
    fn write_gather_whole() {
        let a = b"hello ".to_vec();
        let b = b"world".to_vec();
        let mut out = Vec::new();
        let n = write_gather(&mut out, &[IoSlice::new(&a), IoSlice::new(&b)]).unwrap();
        assert_eq!(n, 11);
        assert_eq!(out, b"hello world");
    }

    /// Writer accepting at most `cap` bytes per call.
    struct Dribble {
        out: Vec<u8>,
        cap: usize,
    }

    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            let mut room = self.cap;
            let mut n = 0;
            for b in bufs {
                if room == 0 {
                    break;
                }
                let take = b.len().min(room);
                self.out.extend_from_slice(&b[..take]);
                room -= take;
                n += take;
            }
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_gather_partial_writes() {
        let a = b"abcdefg".to_vec();
        let b = b"hij".to_vec();
        let c = b"klmnop".to_vec();
        for cap in [1, 2, 4, 5, 16] {
            let mut w = Dribble {
                out: Vec::new(),
                cap,
            };
            let slices = [IoSlice::new(&a), IoSlice::new(&b), IoSlice::new(&c)];
            let n = write_gather(&mut w, &slices).unwrap();
            assert_eq!(n, 16);
            assert_eq!(w.out, b"abcdefghijklmnop", "cap {cap}");
        }
    }
}
