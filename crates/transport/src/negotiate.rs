//! Wire-format negotiation: the client/server handshake that moves a
//! keep-alive endpoint from SOAP XML onto the compact binary lane — and
//! back off it — without ever losing a request.
//!
//! The protocol is two headers, piggybacked on ordinary SOAP POSTs:
//!
//! * `X-BSOAP-Accept` — the sender's *capability advert*: "I can also
//!   speak `bin1`". A client offers it on every request while it wants
//!   the binary lane; a server echoes it on every response while the
//!   lane is enabled.
//! * `X-BSOAP-Format` — what format *this* message body actually is
//!   (`xml` or `bin1`). Absent means `xml`; receivers may additionally
//!   sniff the 4-byte binary magic as a belt-and-braces fallback.
//!
//! The client state machine is deliberately conservative:
//!
//! 1. **Undecided** — every request goes out as XML (a server that has
//!    never heard of the headers just ignores them and answers
//!    normally). The offer rides along.
//! 2. First response carrying the server's `bin1` advert → **Binary**:
//!    subsequent requests use the binary body format. A response with
//!    no advert (or an unknown token) → **Xml**, settled.
//! 3. An HTTP 415 to a binary body (the server disabled the lane
//!    mid-keep-alive) → **Xml**, settled, and the caller re-sends the
//!    same payload as XML exactly once. No request is lost.
//!
//! This module is deliberately independent of `bsoap-core`: formats are
//! their wire tokens (strings) here; `bsoap::rpc` maps tokens to
//! `WireFormat` at the boundary.

/// Request/response header carrying the sender's capability advert.
pub const HDR_ACCEPT: &str = "X-BSOAP-Accept";
/// Request/response header declaring the body's actual wire format.
pub const HDR_FORMAT: &str = "X-BSOAP-Format";
/// Lowercased [`HDR_ACCEPT`], as parsed heads normalize names.
pub const HDR_ACCEPT_LOWER: &str = "x-bsoap-accept";
/// Lowercased [`HDR_FORMAT`].
pub const HDR_FORMAT_LOWER: &str = "x-bsoap-format";
/// Wire token for the compact binary format (version 1).
pub const TOKEN_BINARY: &str = "bin1";
/// Wire token for the SOAP XML format.
pub const TOKEN_XML: &str = "xml";

/// Does an `X-BSOAP-Accept` header value advertise the binary lane?
/// Values are comma-separated tokens; unknown tokens are ignored.
pub fn advertises_binary(value: &str) -> bool {
    value
        .split(',')
        .any(|t| t.trim().eq_ignore_ascii_case(TOKEN_BINARY))
}

/// Where negotiation for one endpoint currently stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NegotiationState {
    /// No response observed yet: send XML, keep offering.
    Undecided,
    /// The server advertised `bin1`: send binary bodies.
    Binary,
    /// Settled on XML — either the server never advertised the lane, or
    /// a 415 forced a downgrade. Settled states stop offering.
    Xml,
}

/// Per-endpoint negotiation state machine (client side).
///
/// Drive it with [`Negotiator::request_headers`] before each send,
/// [`Negotiator::observe_response`] on each reply, and
/// [`Negotiator::on_unsupported`] when a send draws HTTP 415.
#[derive(Clone, Debug)]
pub struct Negotiator {
    state: NegotiationState,
    /// Whether this client wants the binary lane at all. When false the
    /// machine is inert: no offer, XML forever.
    offer: bool,
}

impl Negotiator {
    /// A negotiator that offers the binary lane iff `offer_binary`.
    pub fn new(offer_binary: bool) -> Self {
        Negotiator {
            state: if offer_binary {
                NegotiationState::Undecided
            } else {
                NegotiationState::Xml
            },
            offer: offer_binary,
        }
    }

    /// Current state.
    pub fn state(&self) -> NegotiationState {
        self.state
    }

    /// The wire token for the body format the next request should use.
    pub fn body_token(&self) -> &'static str {
        match self.state {
            NegotiationState::Binary => TOKEN_BINARY,
            NegotiationState::Undecided | NegotiationState::Xml => TOKEN_XML,
        }
    }

    /// Headers to attach to the next request: the format declaration,
    /// plus the capability offer while the lane is wanted and not ruled
    /// out.
    pub fn request_headers(&self) -> Vec<(String, String)> {
        let mut h = vec![(HDR_FORMAT.to_owned(), self.body_token().to_owned())];
        if self.offer && self.state != NegotiationState::Xml {
            h.push((HDR_ACCEPT.to_owned(), TOKEN_BINARY.to_owned()));
        }
        h
    }

    /// Feed the response headers (lowercased names, as
    /// [`crate::http::read_response_headers_limited`] returns them) of a
    /// completed exchange. Only an *undecided* endpoint moves: a server
    /// advert upgrades to binary, its absence settles XML. Once settled
    /// (either way), later responses don't flip the lane — only
    /// [`Negotiator::on_unsupported`] forces a downgrade.
    pub fn observe_response(&mut self, headers: &[(String, String)]) {
        if self.state != NegotiationState::Undecided {
            return;
        }
        let advert = headers
            .iter()
            .filter(|(n, _)| n == HDR_ACCEPT_LOWER)
            .any(|(_, v)| advertises_binary(v));
        self.state = if advert {
            NegotiationState::Binary
        } else {
            NegotiationState::Xml
        };
    }

    /// The server answered 415 Unsupported Media Type: downgrade to XML,
    /// permanently for this endpoint. Returns `true` when the failed
    /// request was a *binary* body and should be retried once as XML
    /// (the downgrade path must not lose a request); `false` when the
    /// request was already XML (a 415 then is not a negotiation signal).
    pub fn on_unsupported(&mut self) -> bool {
        let was_binary = self.state == NegotiationState::Binary;
        self.state = NegotiationState::Xml;
        was_binary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdrs(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(n, v)| (n.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn first_request_is_xml_with_offer() {
        let n = Negotiator::new(true);
        assert_eq!(n.body_token(), TOKEN_XML);
        let h = n.request_headers();
        assert!(h.contains(&(HDR_FORMAT.to_owned(), TOKEN_XML.to_owned())));
        assert!(h.contains(&(HDR_ACCEPT.to_owned(), TOKEN_BINARY.to_owned())));
    }

    #[test]
    fn advert_upgrades_to_binary() {
        let mut n = Negotiator::new(true);
        n.observe_response(&hdrs(&[(HDR_ACCEPT_LOWER, "bin1")]));
        assert_eq!(n.state(), NegotiationState::Binary);
        assert_eq!(n.body_token(), TOKEN_BINARY);
    }

    #[test]
    fn missing_or_unknown_advert_settles_xml() {
        let mut n = Negotiator::new(true);
        n.observe_response(&hdrs(&[("content-type", "text/xml")]));
        assert_eq!(n.state(), NegotiationState::Xml);
        // Settled: a later advert does not flip the lane mid-stream.
        n.observe_response(&hdrs(&[(HDR_ACCEPT_LOWER, "bin1")]));
        assert_eq!(n.state(), NegotiationState::Xml);

        let mut n = Negotiator::new(true);
        n.observe_response(&hdrs(&[(HDR_ACCEPT_LOWER, "bin9,zstd")]));
        assert_eq!(n.state(), NegotiationState::Xml, "unknown tokens ignored");
    }

    #[test]
    fn comma_separated_advert_matches() {
        assert!(advertises_binary("bin1"));
        assert!(advertises_binary("zstd, bin1"));
        assert!(advertises_binary(" BIN1 "));
        assert!(!advertises_binary("bin2"));
    }

    #[test]
    fn unsupported_downgrades_and_requests_one_retry() {
        let mut n = Negotiator::new(true);
        n.observe_response(&hdrs(&[(HDR_ACCEPT_LOWER, "bin1")]));
        assert_eq!(n.state(), NegotiationState::Binary);
        assert!(n.on_unsupported(), "binary body bounced: retry as XML");
        assert_eq!(n.state(), NegotiationState::Xml);
        assert_eq!(n.body_token(), TOKEN_XML);
        // No more offers after the downgrade, and a 415 to an XML body
        // is not a retry signal.
        assert!(n
            .request_headers()
            .iter()
            .all(|(name, _)| name != HDR_ACCEPT));
        assert!(!n.on_unsupported());
    }

    #[test]
    fn disabled_offer_is_inert() {
        let mut n = Negotiator::new(false);
        assert_eq!(n.state(), NegotiationState::Xml);
        assert!(n
            .request_headers()
            .iter()
            .all(|(name, _)| name != HDR_ACCEPT));
        n.observe_response(&hdrs(&[(HDR_ACCEPT_LOWER, "bin1")]));
        assert_eq!(n.state(), NegotiationState::Xml);
    }
}
