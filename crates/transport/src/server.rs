//! Loopback servers for tests, examples and measurements.
//!
//! [`TestServer`] reproduces the paper's measurement endpoint — "a dummy
//! SOAP server … \[that\] does not deserialize or parse the incoming SOAP
//! packet" — and adds parsing modes: `Collect` hands complete request
//! bodies back to the test so integration tests can assert exact
//! bytes-on-the-wire, and `Ack` parses and responds without storing, so
//! throughput benchmarks can sustain millions of requests without
//! accumulating memory.
//!
//! Two interchangeable cores serve the same modes ([`ServerCore`]):
//!
//! * [`ServerCore::WorkerPool`] — the seed's thread-per-connection core
//!   on the bounded pool from [`crate::accept`]: blocking accepts, a
//!   fixed worker count ([`ServerOptions::workers`]), queueing (not
//!   refusal) beyond it, and graceful drain on stop.
//! * [`ServerCore::EventLoop`] — the readiness-driven core from
//!   [`crate::event_loop`]: a few epoll loop threads multiplex every
//!   connection as a sans-io state machine ([`crate::conn::Conn`]), so
//!   thousands of idle keep-alive clients cost map entries instead of
//!   pinned threads. Timeout semantics, overload queueing, `/metrics`,
//!   and drain behavior match the worker pool; responses are
//!   byte-identical.
//!
//! Both cores answer requests through one shared handler
//! ([`handle_one`]), which is what keeps their observable behavior in
//! lock-step.

use crate::accept::{serve_with_metrics, PoolOptions, WorkerPool};
use crate::conn::{ConnConfig, ReqBody, Response, SinkFactory};
use crate::event_loop::{EventLoopOptions, EventLoopServer, ServeMode};
use crate::http::{
    render_response_head_typed, write_response_vectored, RequestHead, RequestReader,
};
use bsoap_obs::{Counter, HistId, Metrics, Recorder, TraceKind};
use parking_lot::Mutex;
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What the server does with connections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerMode {
    /// Drain and discard all bytes (the paper's dummy server; no HTTP).
    Discard,
    /// Parse HTTP requests, record them, respond `200 OK` to each.
    Collect,
    /// Parse HTTP requests and respond `200 OK`, storing nothing — the
    /// throughput-benchmark endpoint.
    Ack,
}

/// Which connection-handling core runs the server.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServerCore {
    /// Thread-per-connection on the bounded worker pool
    /// ([`crate::accept`]); the seed behavior.
    WorkerPool,
    /// Readiness-driven epoll loops + per-connection state machines
    /// ([`crate::event_loop`]). Falls back to [`ServerCore::WorkerPool`]
    /// on platforms without epoll (see [`crate::poller::supported`]).
    EventLoop,
}

impl ServerCore {
    /// Parse a core name (`BSOAP_SERVER_CORE` values).
    pub fn from_name(name: &str) -> Option<ServerCore> {
        if name.eq_ignore_ascii_case("event_loop")
            || name.eq_ignore_ascii_case("eventloop")
            || name.eq_ignore_ascii_case("event-loop")
        {
            Some(ServerCore::EventLoop)
        } else if name.eq_ignore_ascii_case("worker_pool")
            || name.eq_ignore_ascii_case("workerpool")
            || name.eq_ignore_ascii_case("worker-pool")
        {
            Some(ServerCore::WorkerPool)
        } else {
            None
        }
    }

    /// The default core, overridable via the `BSOAP_SERVER_CORE`
    /// environment variable (CI runs whole suites on the event loop this
    /// way). Only [`ServerOptions::default`] consults this — an explicit
    /// `core:` setting always wins.
    pub fn default_from_env() -> ServerCore {
        std::env::var("BSOAP_SERVER_CORE")
            .ok()
            .and_then(|v| ServerCore::from_name(&v))
            .unwrap_or(ServerCore::WorkerPool)
    }
}

/// Server tuning.
#[derive(Clone, Copy, Debug)]
pub struct ServerOptions {
    /// Which core serves connections. Defaults per
    /// [`ServerCore::default_from_env`].
    pub core: ServerCore,
    /// Worker threads handling connections (see [`PoolOptions::workers`]).
    /// On the event-loop core this sizes the dispatch pool instead.
    pub workers: usize,
    /// Event-loop threads (event-loop core only).
    pub event_loop_threads: usize,
    /// Accept cap (event-loop core only): beyond this many open
    /// connections, new ones wait in the listen backlog — queued, not
    /// refused. The worker pool bounds concurrency by `workers` instead.
    pub max_connections: usize,
    /// Graceful-drain deadline on stop.
    pub drain_deadline: Duration,
    /// Per-*read* socket timeout (Collect/Ack modes): bounds how long any
    /// single read may stall before the connection is evicted and counted
    /// under [`Counter::ServerTimeouts`]. On its own this does not bound
    /// a whole request — a peer dribbling one byte per interval just
    /// under this timeout keeps every read succeeding; pair it with
    /// [`ServerOptions::request_timeout`] for that. `None` (the seed
    /// default) lets each read wait forever.
    pub read_timeout: Option<Duration>,
    /// Per-*request* time budget (Collect/Ack modes): opened at the first
    /// byte of a request head, it caps head + body read time in total —
    /// each read's socket timeout is shrunk to the remaining budget, so
    /// the slow-loris dribbler that defeats `read_timeout` alone is still
    /// evicted (counted under [`Counter::ServerTimeouts`]). Idle
    /// keep-alive gaps *between* requests are not on this budget. `None`
    /// leaves request duration unbounded.
    pub request_timeout: Option<Duration>,
    /// Idle keep-alive reaper (event-loop core only): a connection
    /// sitting in `Idle` with no request in flight for this long is
    /// closed and counted under [`Counter::ServerIdleReaped`]. The
    /// worker pool can only approximate this with `read_timeout`.
    pub idle_timeout: Option<Duration>,
    /// Cap on one request head; larger heads get a `400` and the
    /// connection closed (see [`crate::http::RequestReader::with_limits`]).
    pub max_head_bytes: usize,
    /// Cap on one request body (declared or chunk-accumulated).
    pub max_body_bytes: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        let d = PoolOptions::default();
        ServerOptions {
            core: ServerCore::default_from_env(),
            workers: d.workers,
            event_loop_threads: 2,
            max_connections: 8192,
            drain_deadline: d.drain_deadline,
            read_timeout: None,
            request_timeout: None,
            idle_timeout: None,
            max_head_bytes: 1 << 20,
            max_body_bytes: 64 << 20,
        }
    }
}

/// Counters published by a stopped server.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Total bytes drained off all connections (Discard mode) or body
    /// bytes received (Collect/Ack modes).
    pub bytes_received: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Complete requests parsed (Collect/Ack modes only).
    pub requests: u64,
    /// High-water mark of connections (worker pool) or requests (event
    /// loop) queued awaiting a worker.
    pub peak_queue_depth: usize,
}

/// One collected request (Collect mode).
#[derive(Clone, Debug)]
pub struct CollectedRequest {
    /// Parsed request head.
    pub head: crate::http::RequestHead,
    /// Complete (de-chunked) body bytes.
    pub body: Vec<u8>,
}

struct Shared {
    bytes: AtomicU64,
    requests: AtomicU64,
    collected: Mutex<Vec<CollectedRequest>>,
}

/// The running core behind a [`TestServer`].
enum CoreHandle {
    Pool(WorkerPool),
    Loop(EventLoopServer),
}

/// A loopback server running on either core (see [`ServerCore`]).
pub struct TestServer {
    shared: Arc<Shared>,
    core: CoreHandle,
}

impl TestServer {
    /// Bind an ephemeral loopback port and start serving with default
    /// options.
    pub fn spawn(mode: ServerMode) -> io::Result<Self> {
        Self::spawn_with(mode, ServerOptions::default())
    }

    /// Bind an ephemeral loopback port and start serving.
    pub fn spawn_with(mode: ServerMode, opts: ServerOptions) -> io::Result<Self> {
        Self::spawn_inner(mode, opts, None, None)
    }

    /// [`TestServer::spawn_with`] with an observability registry: requests
    /// tick [`Counter::ServerRequests`] and the request-latency histogram,
    /// and (Collect/Ack modes) the server answers `GET /metrics` with the
    /// registry's Prometheus text rendering.
    pub fn spawn_with_metrics(
        mode: ServerMode,
        opts: ServerOptions,
        metrics: Arc<Metrics>,
    ) -> io::Result<Self> {
        Self::spawn_inner(mode, opts, Some(metrics), None)
    }

    /// [`TestServer::spawn_with_metrics`] plus a per-request body-sink
    /// chooser: requests the factory claims stream their decoded bodies
    /// through the returned [`crate::conn::BodySink`] as chunks arrive,
    /// instead of buffering them whole — the server-side half of chunk
    /// overlaying. Honored by the event-loop core only (the worker-pool
    /// core always buffers, so pick [`ServerCore::EventLoop`]).
    pub fn spawn_streaming(
        mode: ServerMode,
        opts: ServerOptions,
        metrics: Option<Arc<Metrics>>,
        sinks: SinkFactory,
    ) -> io::Result<Self> {
        Self::spawn_inner(mode, opts, metrics, Some(sinks))
    }

    fn spawn_inner(
        mode: ServerMode,
        opts: ServerOptions,
        metrics: Option<Arc<Metrics>>,
        sinks: Option<SinkFactory>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let shared = Arc::new(Shared {
            bytes: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            collected: Mutex::new(Vec::new()),
        });
        let core = if opts.core == ServerCore::EventLoop && crate::poller::supported() {
            ServerCore::EventLoop
        } else {
            ServerCore::WorkerPool
        };
        match core {
            ServerCore::EventLoop => {
                let serve_mode = match mode {
                    ServerMode::Discard => {
                        let s = Arc::clone(&shared);
                        ServeMode::Discard {
                            on_bytes: Arc::new(move |n| {
                                s.bytes.fetch_add(n, Ordering::Relaxed);
                            }),
                        }
                    }
                    ServerMode::Collect | ServerMode::Ack => {
                        let store = mode == ServerMode::Collect;
                        let s = Arc::clone(&shared);
                        let m = metrics.clone();
                        ServeMode::Http {
                            handler: Arc::new(move |head, body| {
                                handle_one(head, body, &s, store, &m)
                            }),
                        }
                    }
                };
                let server = EventLoopServer::serve(
                    listener,
                    EventLoopOptions {
                        loops: opts.event_loop_threads.max(1),
                        dispatchers: opts.workers.max(1),
                        max_connections: opts.max_connections,
                        drain_deadline: opts.drain_deadline,
                        conn: ConnConfig {
                            max_head: opts.max_head_bytes,
                            max_body: opts.max_body_bytes,
                            read_timeout: opts.read_timeout,
                            request_timeout: opts.request_timeout,
                            idle_timeout: opts.idle_timeout,
                            sink_factory: sinks,
                        },
                    },
                    metrics,
                    serve_mode,
                )?;
                Ok(TestServer {
                    shared,
                    core: CoreHandle::Loop(server),
                })
            }
            ServerCore::WorkerPool => {
                let handler_shared = Arc::clone(&shared);
                let handler_metrics = metrics.clone();
                let pool = serve_with_metrics(
                    listener,
                    PoolOptions {
                        workers: opts.workers,
                        drain_deadline: opts.drain_deadline,
                    },
                    metrics,
                    move |stream| match mode {
                        ServerMode::Discard => drain(stream, &handler_shared),
                        ServerMode::Collect => {
                            respond(stream, &handler_shared, true, &handler_metrics, &opts)
                        }
                        ServerMode::Ack => {
                            respond(stream, &handler_shared, false, &handler_metrics, &opts)
                        }
                    },
                )?;
                Ok(TestServer {
                    shared,
                    core: CoreHandle::Pool(pool),
                })
            }
        }
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        match &self.core {
            CoreHandle::Pool(p) => p.addr(),
            CoreHandle::Loop(l) => l.addr(),
        }
    }

    /// Bytes drained so far (live view).
    pub fn bytes_received(&self) -> u64 {
        self.shared.bytes.load(Ordering::Relaxed)
    }

    /// Requests parsed so far (live view; Collect/Ack modes).
    pub fn requests(&self) -> u64 {
        self.shared.requests.load(Ordering::Relaxed)
    }

    /// Stop the server and return its counters.
    pub fn stop(mut self) -> ServerStats {
        let (connections, peak_queue_depth) = match &mut self.core {
            CoreHandle::Pool(p) => {
                p.stop();
                (p.connections(), p.peak_queue_depth())
            }
            CoreHandle::Loop(l) => {
                l.stop();
                (l.connections(), l.peak_queue_depth())
            }
        };
        ServerStats {
            bytes_received: self.shared.bytes.load(Ordering::Relaxed),
            connections,
            requests: self.shared.requests.load(Ordering::Relaxed),
            peak_queue_depth,
        }
    }

    /// Stop the server and return everything it collected (Collect mode).
    pub fn stop_collecting(mut self) -> Vec<CollectedRequest> {
        match &mut self.core {
            CoreHandle::Pool(p) => p.stop(),
            CoreHandle::Loop(l) => l.stop(),
        }
        std::mem::take(&mut *self.shared.collected.lock())
    }
}

/// The one request handler both cores share: route `GET /metrics` to the
/// registry's Prometheus rendering (a scrape, `measure: false`), count
/// and optionally store everything else, answer `200 OK <ack/>`.
/// Counters tick *before* the response goes out, so a scrape racing the
/// final response on another connection still sees the request.
fn handle_one(
    head: &RequestHead,
    body: ReqBody,
    shared: &Shared,
    store: bool,
    metrics: &Option<Arc<Metrics>>,
) -> Response {
    if head.method == "GET" && head.path == "/metrics" {
        return match metrics {
            Some(m) => {
                m.add(Counter::MetricsScrapes, 1);
                Response {
                    status: 200,
                    reason: "OK",
                    content_type: "text/plain; version=0.0.4; charset=utf-8",
                    body: m.render_prometheus().into_bytes(),
                    measure: false,
                    extra_headers: Vec::new(),
                }
            }
            None => Response {
                status: 404,
                reason: "Not Found",
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                body: b"no metrics registry\n".to_vec(),
                measure: false,
                extra_headers: Vec::new(),
            },
        };
    }
    shared.bytes.fetch_add(body.len() as u64, Ordering::Relaxed);
    shared.requests.fetch_add(1, Ordering::Relaxed);
    if store {
        if let ReqBody::Full(bytes) = body {
            shared.collected.lock().push(CollectedRequest {
                head: head.clone(),
                body: bytes,
            });
        }
    }
    if let Some(m) = metrics {
        m.add(Counter::ServerRequests, 1);
    }
    Response::xml(200, "OK", b"<ack/>".to_vec())
}

/// Drain one rendered [`Response`] onto a blocking stream (worker-pool
/// write path). Byte-identical to the event-loop core's rendering in
/// [`crate::conn::Conn`]: same head builder, same body.
fn write_response(
    stream: &mut TcpStream,
    resp: &Response,
    head_scratch: &mut Vec<u8>,
) -> io::Result<usize> {
    render_response_head_typed(
        head_scratch,
        resp.status,
        resp.reason,
        resp.content_type,
        resp.body.len(),
    );
    let list = [IoSlice::new(head_scratch), IoSlice::new(&resp.body)];
    let n = crate::write_gather(stream, &list)?;
    stream.flush()?;
    Ok(n)
}

/// Discard mode: read until EOF, counting bytes — never parsing, exactly
/// like the paper's measurement server.
fn drain(mut stream: TcpStream, shared: &Shared) {
    let mut buf = [0u8; 64 * 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                shared.bytes.fetch_add(n as u64, Ordering::Relaxed);
            }
        }
    }
}

/// Collect/Ack modes on the worker pool: parse framed requests off a
/// keep-alive connection and answer each through [`handle_one`].
///
/// Hardened per [`ServerOptions`]: a malformed or over-cap request draws a
/// `400` before the connection closes (so a well-behaved-but-buggy client
/// learns why), and a read that outlasts `read_timeout` — or a whole
/// request that outlasts `request_timeout` — evicts the connection: one
/// stalled (or dribbling) peer cannot pin a worker forever.
fn respond(
    mut stream: TcpStream,
    shared: &Shared,
    store: bool,
    metrics: &Option<Arc<Metrics>>,
    opts: &ServerOptions,
) {
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = RequestReader::with_limits(
        BudgetedRead::new(read_half, opts.read_timeout, opts.request_timeout),
        opts.max_head_bytes,
        opts.max_body_bytes,
    );
    let mut head_scratch = Vec::new();
    loop {
        let (head, body) = match reader.next_request() {
            Ok(Some(req)) => {
                // Request boundary: the next request opens a fresh budget.
                reader.stream_mut().rearm();
                req
            }
            Ok(None) => break, // clean EOF between requests
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Malformed or over-cap request: explain, then hang up
                // (framing is unrecoverable once desynced).
                if let Some(m) = metrics {
                    m.add(Counter::ServerBadRequests, 1);
                }
                let reason = e.to_string();
                let _ = write_response_vectored(
                    &mut stream,
                    400,
                    "Bad Request",
                    &[IoSlice::new(reason.as_bytes())],
                    &mut head_scratch,
                );
                break;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                ) =>
            {
                // Slow-loris eviction: the peer held the socket open
                // without completing a request within the read timeout.
                if let Some(m) = metrics {
                    m.add(Counter::ServerTimeouts, 1);
                }
                break;
            }
            Err(_) => break,
        };
        let start = metrics.as_ref().map(|m| m.now_ns());
        let resp = handle_one(&head, ReqBody::Full(body), shared, store, metrics);
        let sent = match write_response(&mut stream, &resp, &mut head_scratch) {
            Ok(n) => n,
            Err(_) => break,
        };
        if resp.measure {
            if let Some(m) = metrics {
                let elapsed_ns = m.now_ns().saturating_sub(start.unwrap_or(0));
                m.add(Counter::ServerBytesOut, sent as u64);
                m.observe_ns(HistId::ServerRequest, elapsed_ns);
                m.trace(TraceKind::Request {
                    bytes: sent as u64,
                    elapsed_ns,
                });
            }
        }
    }
}

/// Read half with a per-request time budget layered over the per-read
/// socket timeout. The budget opens at the first byte of a request and
/// every subsequent fill shrinks the socket timeout to the remaining
/// budget, so a slow-loris peer dribbling one byte per interval — each
/// individual read succeeding just under `per_read` — still cannot hold
/// a worker past `budget`. [`BudgetedRead::rearm`] marks a request
/// boundary: idle keep-alive gaps between requests are not on the budget
/// (only `per_read`, if any, applies there).
struct BudgetedRead {
    stream: TcpStream,
    per_read: Option<Duration>,
    budget: Option<Duration>,
    /// When the current request's first byte arrived; `None` between
    /// requests.
    started: Option<std::time::Instant>,
}

impl BudgetedRead {
    fn new(stream: TcpStream, per_read: Option<Duration>, budget: Option<Duration>) -> Self {
        BudgetedRead {
            stream,
            per_read,
            budget,
            started: None,
        }
    }

    /// Request boundary: the next request gets a fresh budget.
    fn rearm(&mut self) {
        self.started = None;
    }
}

impl Read for BudgetedRead {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.per_read.is_none() && self.budget.is_none() {
            return self.stream.read(buf);
        }
        let timeout = match (self.budget, self.started) {
            (Some(b), Some(t0)) => {
                let left = b.saturating_sub(t0.elapsed());
                if left.is_zero() {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "request budget exhausted",
                    ));
                }
                Some(self.per_read.map_or(left, |p| p.min(left)))
            }
            // Between requests (or with no budget configured) only the
            // per-read timeout applies.
            _ => self.per_read,
        };
        self.stream.set_read_timeout(timeout)?;
        let n = self.stream.read(buf)?;
        if n > 0 && self.budget.is_some() && self.started.is_none() {
            self.started = Some(std::time::Instant::now());
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{post_gather, HttpVersion, RequestConfig};
    use std::io::IoSlice;
    use std::net::TcpStream;

    /// Every core available on this platform: the whole legacy suite runs
    /// against each, proving the event loop is a drop-in replacement.
    fn cores() -> Vec<ServerCore> {
        if crate::poller::supported() {
            vec![ServerCore::WorkerPool, ServerCore::EventLoop]
        } else {
            vec![ServerCore::WorkerPool]
        }
    }

    fn opts_on(core: ServerCore) -> ServerOptions {
        ServerOptions {
            core,
            ..ServerOptions::default()
        }
    }

    #[test]
    fn core_names_parse() {
        assert_eq!(
            ServerCore::from_name("event_loop"),
            Some(ServerCore::EventLoop)
        );
        assert_eq!(
            ServerCore::from_name("EventLoop"),
            Some(ServerCore::EventLoop)
        );
        assert_eq!(
            ServerCore::from_name("worker-pool"),
            Some(ServerCore::WorkerPool)
        );
        assert_eq!(ServerCore::from_name("threads"), None);
    }

    #[test]
    fn discard_server_counts_bytes() {
        for core in cores() {
            let server = TestServer::spawn_with(ServerMode::Discard, opts_on(core)).unwrap();
            let mut c = TcpStream::connect(server.addr()).unwrap();
            c.write_all(b"0123456789abcdef").unwrap();
            c.shutdown(std::net::Shutdown::Write).unwrap();
            drop(c);
            // Drain happens on another thread; spin briefly for the count.
            for _ in 0..2000 {
                if server.bytes_received() == 16 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let stats = server.stop();
            assert_eq!(stats.bytes_received, 16, "core {core:?}");
            assert_eq!(stats.connections, 1, "core {core:?}");
        }
    }

    #[test]
    fn collect_server_parses_and_acks() {
        for core in cores() {
            let server = TestServer::spawn_with(ServerMode::Collect, opts_on(core)).unwrap();
            let mut c = TcpStream::connect(server.addr()).unwrap();
            let cfg = RequestConfig::loopback(HttpVersion::Http11Length);
            let body = b"<m>7</m>".to_vec();
            let mut scratch = Vec::new();
            post_gather(&mut c, &cfg, &[IoSlice::new(&body)], &mut scratch).unwrap();
            let (status, resp) = crate::http::read_response(&mut c).unwrap();
            assert_eq!(status, 200, "core {core:?}");
            assert_eq!(resp, b"<ack/>", "core {core:?}");
            drop(c);
            let reqs = server.stop_collecting();
            assert_eq!(reqs.len(), 1, "core {core:?}");
            assert_eq!(reqs[0].body, body, "core {core:?}");
        }
    }

    #[test]
    fn ack_server_counts_but_does_not_store() {
        for core in cores() {
            let server = TestServer::spawn_with(ServerMode::Ack, opts_on(core)).unwrap();
            let mut c = TcpStream::connect(server.addr()).unwrap();
            let cfg = RequestConfig::loopback(HttpVersion::Http11Length);
            let body = b"<m>9</m>".to_vec();
            let mut scratch = Vec::new();
            // Two keep-alive requests on one connection.
            for _ in 0..2 {
                post_gather(&mut c, &cfg, &[IoSlice::new(&body)], &mut scratch).unwrap();
                let (status, resp) = crate::http::read_response(&mut c).unwrap();
                assert_eq!(status, 200, "core {core:?}");
                assert_eq!(resp, b"<ack/>", "core {core:?}");
            }
            drop(c);
            let stats = server.stop();
            assert_eq!(stats.requests, 2, "core {core:?}");
            assert_eq!(
                stats.connections, 1,
                "keep-alive reused one connection (core {core:?})"
            );
            assert_eq!(stats.bytes_received, 2 * body.len() as u64, "core {core:?}");
        }
    }

    #[test]
    fn multiple_connections() {
        for core in cores() {
            let server = TestServer::spawn_with(ServerMode::Discard, opts_on(core)).unwrap();
            let mut handles = Vec::new();
            for i in 0..4 {
                let addr = server.addr();
                handles.push(std::thread::spawn(move || {
                    let mut c = TcpStream::connect(addr).unwrap();
                    c.write_all(&vec![b'a'; (i + 1) * 100]).unwrap();
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            for _ in 0..2000 {
                if server.bytes_received() == 1000 {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let stats = server.stop();
            assert_eq!(stats.bytes_received, 1000, "core {core:?}");
            assert_eq!(stats.connections, 4, "core {core:?}");
        }
    }

    #[test]
    fn connections_beyond_workers_queue_and_complete() {
        // 1 worker (1 dispatcher on the event loop), 3 concurrent HTTP
        // clients: all requests must be answered (queued, not refused).
        for core in cores() {
            let server = TestServer::spawn_with(
                ServerMode::Ack,
                ServerOptions {
                    workers: 1,
                    ..opts_on(core)
                },
            )
            .unwrap();
            let addr = server.addr();
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    std::thread::spawn(move || {
                        let mut c = TcpStream::connect(addr).unwrap();
                        let cfg = RequestConfig::loopback(HttpVersion::Http11Length);
                        let body = b"<q/>".to_vec();
                        let mut scratch = Vec::new();
                        post_gather(&mut c, &cfg, &[IoSlice::new(&body)], &mut scratch).unwrap();
                        let (status, _) = crate::http::read_response(&mut c).unwrap();
                        assert_eq!(status, 200);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let stats = server.stop();
            assert_eq!(stats.requests, 3, "core {core:?}");
            assert_eq!(stats.connections, 3, "core {core:?}");
        }
    }

    #[test]
    fn metrics_endpoint_reports_server_counters() {
        for core in cores() {
            let metrics = Metrics::shared();
            let server = TestServer::spawn_with_metrics(
                ServerMode::Ack,
                opts_on(core),
                Arc::clone(&metrics),
            )
            .unwrap();
            let mut c = TcpStream::connect(server.addr()).unwrap();
            let cfg = RequestConfig::loopback(HttpVersion::Http11Length);
            let body = b"<m>1</m>".to_vec();
            let mut scratch = Vec::new();
            for _ in 0..3 {
                post_gather(&mut c, &cfg, &[IoSlice::new(&body)], &mut scratch).unwrap();
                let (status, _) = crate::http::read_response(&mut c).unwrap();
                assert_eq!(status, 200, "core {core:?}");
            }
            // Scrape over the same keep-alive connection.
            let mut get = Vec::new();
            crate::http::render_get_request(&mut get, "/metrics", "localhost");
            c.write_all(&get).unwrap();
            let (status, text) = crate::http::read_response(&mut c).unwrap();
            assert_eq!(status, 200, "core {core:?}");
            let text = String::from_utf8(text).unwrap();
            assert_eq!(
                bsoap_obs::parse_value(&text, "bsoap_server_requests_total"),
                Some(3.0),
                "core {core:?}"
            );
            assert_eq!(
                bsoap_obs::parse_value(&text, "bsoap_metrics_scrapes_total"),
                Some(1.0),
                "core {core:?}"
            );
            drop(c);
            let stats = server.stop();
            assert_eq!(
                stats.requests, 3,
                "the scrape is not counted as a request (core {core:?})"
            );
            let snap = metrics.snapshot();
            assert_eq!(snap.get(Counter::ServerRequests), 3, "core {core:?}");
            assert_eq!(snap.get(Counter::ServerConnections), 1, "core {core:?}");
            assert_eq!(snap.hist(HistId::ServerRequest).count(), 3, "core {core:?}");
        }
    }

    #[test]
    fn metrics_scrape_without_registry_is_404() {
        for core in cores() {
            let server = TestServer::spawn_with(ServerMode::Ack, opts_on(core)).unwrap();
            let mut c = TcpStream::connect(server.addr()).unwrap();
            let mut get = Vec::new();
            crate::http::render_get_request(&mut get, "/metrics", "localhost");
            c.write_all(&get).unwrap();
            let (status, _) = crate::http::read_response(&mut c).unwrap();
            assert_eq!(status, 404, "core {core:?}");
            drop(c);
            server.stop();
        }
    }

    #[test]
    fn malformed_request_draws_400_then_close() {
        for core in cores() {
            let metrics = Metrics::shared();
            let server = TestServer::spawn_with_metrics(
                ServerMode::Ack,
                opts_on(core),
                Arc::clone(&metrics),
            )
            .unwrap();
            let mut c = TcpStream::connect(server.addr()).unwrap();
            c.write_all(b"THIS IS NOT HTTP AT ALL\r\n\r\n").unwrap();
            let (status, body) = crate::http::read_response(&mut c).unwrap();
            assert_eq!(status, 400, "core {core:?}");
            assert!(
                !body.is_empty(),
                "400 body explains the rejection (core {core:?})"
            );
            // Connection is closed after the 400.
            let mut probe = [0u8; 1];
            assert_eq!(c.read(&mut probe).unwrap(), 0, "core {core:?}");
            drop(c);
            let stats = server.stop();
            assert_eq!(stats.requests, 0, "core {core:?}");
            assert_eq!(
                metrics.snapshot().get(Counter::ServerBadRequests),
                1,
                "core {core:?}"
            );
        }
    }

    #[test]
    fn oversized_head_draws_400() {
        for core in cores() {
            let metrics = Metrics::shared();
            let server = TestServer::spawn_with_metrics(
                ServerMode::Ack,
                ServerOptions {
                    max_head_bytes: 1024,
                    ..opts_on(core)
                },
                Arc::clone(&metrics),
            )
            .unwrap();
            let mut c = TcpStream::connect(server.addr()).unwrap();
            let mut req = Vec::new();
            req.extend_from_slice(b"POST / HTTP/1.1\r\nX-Pad: ");
            req.extend_from_slice(&vec![b'x'; 4096]);
            req.extend_from_slice(b"\r\nContent-Length: 0\r\n\r\n");
            c.write_all(&req).unwrap();
            let (status, _) = crate::http::read_response(&mut c).unwrap();
            assert_eq!(status, 400, "core {core:?}");
            drop(c);
            server.stop();
            assert_eq!(
                metrics.snapshot().get(Counter::ServerBadRequests),
                1,
                "core {core:?}"
            );
        }
    }

    #[test]
    fn slow_loris_connection_is_evicted() {
        for core in cores() {
            let metrics = Metrics::shared();
            let server = TestServer::spawn_with_metrics(
                ServerMode::Ack,
                ServerOptions {
                    read_timeout: Some(Duration::from_millis(40)),
                    ..opts_on(core)
                },
                Arc::clone(&metrics),
            )
            .unwrap();
            let mut c = TcpStream::connect(server.addr()).unwrap();
            // Half a request head, then silence: the server must evict
            // rather than pin a worker (or a map entry) forever.
            c.write_all(b"POST / HTTP/1.1\r\nHost: lo").unwrap();
            let mut probe = [0u8; 64];
            // FIN reads zero bytes; RST errors. Either means evicted.
            if let Ok(n) = c.read(&mut probe) {
                assert_eq!(n, 0, "server closed on us (core {core:?})");
            }
            drop(c);
            server.stop();
            assert_eq!(
                metrics.snapshot().get(Counter::ServerTimeouts),
                1,
                "core {core:?}"
            );
        }
    }

    #[test]
    fn dribbling_slow_loris_is_evicted_by_the_request_budget() {
        // A peer sending one byte per interval just under `read_timeout`
        // keeps every individual read succeeding — the per-read timeout
        // alone never fires (on the event loop, every byte slides the
        // stall timer). The per-request budget must evict it anyway.
        for core in cores() {
            let metrics = Metrics::shared();
            let server = TestServer::spawn_with_metrics(
                ServerMode::Ack,
                ServerOptions {
                    read_timeout: Some(Duration::from_millis(200)),
                    request_timeout: Some(Duration::from_millis(120)),
                    ..opts_on(core)
                },
                Arc::clone(&metrics),
            )
            .unwrap();
            let mut c = TcpStream::connect(server.addr()).unwrap();
            let head: &[u8] = b"POST / HTTP/1.1\r\nHost: l";
            for chunk in head.chunks(1).take(12) {
                // Ignore write errors: once evicted the dribble may hit RST.
                let _ = c.write_all(chunk);
                std::thread::sleep(Duration::from_millis(25));
            }
            // ~300ms of dribbling against a 120ms request budget: the
            // server must have evicted the connection and counted it.
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while metrics.snapshot().get(Counter::ServerTimeouts) == 0 {
                assert!(
                    std::time::Instant::now() < deadline,
                    "server never evicted the dribbler (core {core:?})"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
            // The read half confirms the close: a clean FIN reads zero
            // bytes, and an error (RST) also means closed.
            let mut probe = [0u8; 8];
            if let Ok(n) = c.read(&mut probe) {
                assert_eq!(n, 0, "server must not answer a dribbler (core {core:?})");
            }
            drop(c);
            let stats = server.stop();
            assert_eq!(stats.requests, 0, "core {core:?}");
            assert_eq!(
                metrics.snapshot().get(Counter::ServerTimeouts),
                1,
                "core {core:?}"
            );
        }
    }

    #[test]
    fn keep_alive_idle_gap_is_not_on_the_request_budget() {
        // The budget opens at the first byte of a request: a client that
        // idles between two requests longer than `request_timeout` must
        // still be served (only reads *within* a request are budgeted).
        for core in cores() {
            let server = TestServer::spawn_with(
                ServerMode::Ack,
                ServerOptions {
                    request_timeout: Some(Duration::from_millis(80)),
                    ..opts_on(core)
                },
            )
            .unwrap();
            let mut c = TcpStream::connect(server.addr()).unwrap();
            let cfg = RequestConfig::loopback(HttpVersion::Http11Length);
            let body = b"<m>1</m>".to_vec();
            let mut scratch = Vec::new();
            post_gather(&mut c, &cfg, &[IoSlice::new(&body)], &mut scratch).unwrap();
            let (status, _) = crate::http::read_response(&mut c).unwrap();
            assert_eq!(status, 200, "core {core:?}");
            // Idle past the per-request budget, then send a second request.
            std::thread::sleep(Duration::from_millis(160));
            post_gather(&mut c, &cfg, &[IoSlice::new(&body)], &mut scratch).unwrap();
            let (status, _) = crate::http::read_response(&mut c).unwrap();
            assert_eq!(status, 200, "core {core:?}");
            drop(c);
            let stats = server.stop();
            assert_eq!(stats.requests, 2, "core {core:?}");
            assert_eq!(
                stats.connections, 1,
                "keep-alive survived the idle gap (core {core:?})"
            );
        }
    }

    #[test]
    fn stop_without_traffic() {
        for core in cores() {
            let server = TestServer::spawn_with(ServerMode::Discard, opts_on(core)).unwrap();
            let stats = server.stop();
            assert_eq!(stats.bytes_received, 0, "core {core:?}");
        }
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        for core in cores() {
            let server = TestServer::spawn_with(ServerMode::Collect, opts_on(core)).unwrap();
            let addr = server.addr();
            drop(server);
            // Port should be released promptly; a new bind may or may not
            // get the same port, but connecting must not hang.
            let _ = TcpStream::connect(addr);
        }
    }

    /// Idle reaping is an event-loop-only knob: a keep-alive connection
    /// with no request in flight is closed by the idle timer after
    /// `idle_timeout`, ticking [`Counter::ServerIdleReaped`] — and the
    /// gap is *not* billed to the request budget.
    #[cfg(target_os = "linux")]
    #[test]
    fn idle_keep_alive_connection_is_reaped() {
        use bsoap_obs::Gauge;
        let metrics = Metrics::shared();
        let server = TestServer::spawn_with_metrics(
            ServerMode::Ack,
            ServerOptions {
                idle_timeout: Some(Duration::from_millis(60)),
                request_timeout: Some(Duration::from_secs(30)),
                ..opts_on(ServerCore::EventLoop)
            },
            Arc::clone(&metrics),
        )
        .unwrap();
        let mut c = TcpStream::connect(server.addr()).unwrap();
        // Serve one request so the connection re-enters Idle (proving the
        // reaper re-arms after a request, not just at accept).
        let cfg = RequestConfig::loopback(HttpVersion::Http11Length);
        let body = b"<m>1</m>".to_vec();
        let mut scratch = Vec::new();
        post_gather(&mut c, &cfg, &[IoSlice::new(&body)], &mut scratch).unwrap();
        let (status, _) = crate::http::read_response(&mut c).unwrap();
        assert_eq!(status, 200);
        // Now idle: the reaper must close us within the timeout (plus
        // loop latency), counted as a reap — not a timeout/eviction.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while metrics.snapshot().get(Counter::ServerIdleReaped) == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "idle connection never reaped"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut probe = [0u8; 8];
        if let Ok(n) = c.read(&mut probe) {
            assert_eq!(n, 0, "reaped connection is closed");
        }
        drop(c);
        let stats = server.stop();
        assert_eq!(stats.requests, 1);
        let snap = metrics.snapshot();
        assert_eq!(snap.get(Counter::ServerIdleReaped), 1);
        assert_eq!(
            snap.get(Counter::ServerTimeouts),
            0,
            "a reap is not an eviction"
        );
        assert!(snap.gauge(Gauge::ConnectionsOpenPeak) >= 1);
    }

    /// Timer deadlines read the metrics clock: with a frozen
    /// `VirtualClock` an idle connection outlives its `idle_timeout` in
    /// real time, and is reaped only once the virtual clock advances past
    /// the deadline.
    #[cfg(target_os = "linux")]
    #[test]
    fn frozen_virtual_clock_defers_the_idle_reaper() {
        use bsoap_obs::VirtualClock;
        let clock = Arc::new(VirtualClock::new());
        let metrics = Arc::new(Metrics::with_clock(clock.clone()));
        let server = TestServer::spawn_with_metrics(
            ServerMode::Ack,
            ServerOptions {
                idle_timeout: Some(Duration::from_millis(50)),
                ..opts_on(ServerCore::EventLoop)
            },
            Arc::clone(&metrics),
        )
        .unwrap();
        let c = TcpStream::connect(server.addr()).unwrap();
        // Wait until the loop has registered the connection, then give
        // the (frozen) reaper far longer than idle_timeout in real time.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while metrics.snapshot().get(Counter::ServerConnections) == 0 {
            assert!(std::time::Instant::now() < deadline, "never accepted");
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(
            metrics.snapshot().get(Counter::ServerIdleReaped),
            0,
            "time is frozen: nothing may be reaped"
        );
        // Advance virtual time past the deadline: the next loop tick
        // (≤ 50ms real) fires the reaper.
        clock.advance(Duration::from_millis(60).as_nanos() as u64);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while metrics.snapshot().get(Counter::ServerIdleReaped) == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "reaper never fired after the clock advanced"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(c);
        server.stop();
    }
}
