//! Loopback servers for tests, examples and measurements.
//!
//! [`TestServer`] reproduces the paper's measurement endpoint — "a dummy
//! SOAP server … \[that\] does not deserialize or parse the incoming SOAP
//! packet" — and adds a collecting mode that parses HTTP framing and hands
//! complete request bodies back to the test, so integration tests can
//! assert exact bytes-on-the-wire.

use crate::http::{render_response, RequestReader};
use parking_lot::Mutex;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// What the server does with connections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerMode {
    /// Drain and discard all bytes (the paper's dummy server; no HTTP).
    Discard,
    /// Parse HTTP requests, record them, respond `200 OK` to each.
    Collect,
}

/// Counters published by a stopped server.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Total bytes drained off all connections (Discard mode) or body
    /// bytes collected (Collect mode).
    pub bytes_received: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Complete requests parsed (Collect mode only).
    pub requests: u64,
}

/// One collected request (Collect mode).
#[derive(Clone, Debug)]
pub struct CollectedRequest {
    /// Parsed request head.
    pub head: crate::http::RequestHead,
    /// Complete (de-chunked) body bytes.
    pub body: Vec<u8>,
}

struct Shared {
    stop: AtomicBool,
    bytes: AtomicU64,
    connections: AtomicU64,
    requests: AtomicU64,
    collected: Mutex<Vec<CollectedRequest>>,
    /// Clones of accepted streams so shutdown can unblock handler threads
    /// parked in `read()` on connections clients left open.
    conns: Mutex<Vec<TcpStream>>,
}

/// A loopback server running on its own accept thread (one extra thread
/// per connection).
pub struct TestServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TestServer {
    /// Bind an ephemeral loopback port and start serving.
    pub fn spawn(mode: ServerMode) -> io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            bytes: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            collected: Mutex::new(Vec::new()),
            conns: Mutex::new(Vec::new()),
        });
        listener.set_nonblocking(true)?;
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || {
            let mut conn_threads = Vec::new();
            // Nonblocking accept + stop-flag poll: every connection made
            // before stop() is accepted and fully drained, so counters are
            // exact (no sentinel "poke" connection to mis-count).
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        if let Ok(clone) = stream.try_clone() {
                            accept_shared.conns.lock().push(clone);
                        }
                        accept_shared.connections.fetch_add(1, Ordering::Relaxed);
                        let conn_shared = Arc::clone(&accept_shared);
                        conn_threads.push(std::thread::spawn(move || match mode {
                            ServerMode::Discard => drain(stream, &conn_shared),
                            ServerMode::Collect => collect(stream, &conn_shared),
                        }));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if accept_shared.stop.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
            // Past this point no further connections are accepted. Shut
            // down every handler's stream so reads on connections the
            // client left open unblock — then joining cannot deadlock.
            for conn in accept_shared.conns.lock().drain(..) {
                let _ = conn.shutdown(Shutdown::Both);
            }
            for t in conn_threads {
                let _ = t.join();
            }
        });
        Ok(TestServer {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Bytes drained so far (live view).
    pub fn bytes_received(&self) -> u64 {
        self.shared.bytes.load(Ordering::Relaxed)
    }

    /// Stop the server and return its counters.
    pub fn stop(mut self) -> ServerStats {
        self.shutdown();
        ServerStats {
            bytes_received: self.shared.bytes.load(Ordering::Relaxed),
            connections: self.shared.connections.load(Ordering::Relaxed),
            requests: self.shared.requests.load(Ordering::Relaxed),
        }
    }

    /// Stop the server and return everything it collected (Collect mode).
    pub fn stop_collecting(mut self) -> Vec<CollectedRequest> {
        self.shutdown();
        std::mem::take(&mut *self.shared.collected.lock())
    }

    fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown();
        }
    }
}

/// Discard mode: read until EOF, counting bytes — never parsing, exactly
/// like the paper's measurement server.
fn drain(mut stream: TcpStream, shared: &Shared) {
    let mut buf = [0u8; 64 * 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                shared.bytes.fetch_add(n as u64, Ordering::Relaxed);
            }
        }
    }
}

/// Collect mode: parse framed requests, stash them, 200 each.
fn collect(mut stream: TcpStream, shared: &Shared) {
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = RequestReader::new(read_half);
    let mut response = Vec::new();
    while let Ok(Some((head, body))) = reader.next_request() {
        shared.bytes.fetch_add(body.len() as u64, Ordering::Relaxed);
        shared.requests.fetch_add(1, Ordering::Relaxed);
        shared
            .collected
            .lock()
            .push(CollectedRequest { head, body });
        render_response(&mut response, 200, "OK", b"<ack/>");
        if stream.write_all(&response).is_err() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{post_gather, HttpVersion, RequestConfig};
    use std::io::IoSlice;

    #[test]
    fn discard_server_counts_bytes() {
        let server = TestServer::spawn(ServerMode::Discard).unwrap();
        let mut c = TcpStream::connect(server.addr()).unwrap();
        c.write_all(b"0123456789abcdef").unwrap();
        c.shutdown(std::net::Shutdown::Write).unwrap();
        drop(c);
        // Drain happens on another thread; spin briefly for the count.
        for _ in 0..200 {
            if server.bytes_received() == 16 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let stats = server.stop();
        assert_eq!(stats.bytes_received, 16);
        assert_eq!(stats.connections, 1);
    }

    #[test]
    fn collect_server_parses_and_acks() {
        let server = TestServer::spawn(ServerMode::Collect).unwrap();
        let mut c = TcpStream::connect(server.addr()).unwrap();
        let cfg = RequestConfig::loopback(HttpVersion::Http11Length);
        let body = b"<m>7</m>".to_vec();
        let mut scratch = Vec::new();
        post_gather(&mut c, &cfg, &[IoSlice::new(&body)], &mut scratch).unwrap();
        let (status, resp) = crate::http::read_response(&mut c).unwrap();
        assert_eq!(status, 200);
        assert_eq!(resp, b"<ack/>");
        drop(c);
        let reqs = server.stop_collecting();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].body, body);
    }

    #[test]
    fn multiple_connections() {
        let server = TestServer::spawn(ServerMode::Discard).unwrap();
        let mut handles = Vec::new();
        for i in 0..4 {
            let addr = server.addr();
            handles.push(std::thread::spawn(move || {
                let mut c = TcpStream::connect(addr).unwrap();
                c.write_all(&vec![b'a'; (i + 1) * 100]).unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for _ in 0..500 {
            if server.bytes_received() == 1000 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let stats = server.stop();
        assert_eq!(stats.bytes_received, 1000);
        assert_eq!(stats.connections, 4);
    }

    #[test]
    fn stop_without_traffic() {
        let server = TestServer::spawn(ServerMode::Discard).unwrap();
        let stats = server.stop();
        assert_eq!(stats.bytes_received, 0);
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let server = TestServer::spawn(ServerMode::Collect).unwrap();
        let addr = server.addr();
        drop(server);
        // Port should be released promptly; a new bind may or may not get
        // the same port, but connecting to the old one must not hang.
        let _ = TcpStream::connect(addr);
    }
}
