//! Loopback servers for tests, examples and measurements.
//!
//! [`TestServer`] reproduces the paper's measurement endpoint — "a dummy
//! SOAP server … \[that\] does not deserialize or parse the incoming SOAP
//! packet" — and adds parsing modes: `Collect` hands complete request
//! bodies back to the test so integration tests can assert exact
//! bytes-on-the-wire, and `Ack` parses and responds without storing, so
//! throughput benchmarks can sustain millions of requests without
//! accumulating memory.
//!
//! All modes run on the bounded worker pool from [`crate::accept`]:
//! blocking accepts, a fixed worker count ([`ServerOptions::workers`]),
//! queueing (not refusal) beyond it, and graceful drain on stop.

use crate::accept::{serve_with_metrics, PoolOptions, WorkerPool};
use crate::http::{render_response_head_typed, write_response_vectored, RequestReader};
use bsoap_obs::{Counter, HistId, Metrics, Recorder, TraceKind};
use parking_lot::Mutex;
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What the server does with connections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerMode {
    /// Drain and discard all bytes (the paper's dummy server; no HTTP).
    Discard,
    /// Parse HTTP requests, record them, respond `200 OK` to each.
    Collect,
    /// Parse HTTP requests and respond `200 OK`, storing nothing — the
    /// throughput-benchmark endpoint.
    Ack,
}

/// Server tuning.
#[derive(Clone, Copy, Debug)]
pub struct ServerOptions {
    /// Worker threads handling connections (see [`PoolOptions::workers`]).
    pub workers: usize,
    /// Graceful-drain deadline on stop.
    pub drain_deadline: Duration,
    /// Per-*read* socket timeout (Collect/Ack modes): bounds how long any
    /// single read may stall before the connection is evicted and counted
    /// under [`Counter::ServerTimeouts`]. On its own this does not bound
    /// a whole request — a peer dribbling one byte per interval just
    /// under this timeout keeps every read succeeding; pair it with
    /// [`ServerOptions::request_timeout`] for that. `None` (the seed
    /// default) lets each read wait forever.
    pub read_timeout: Option<Duration>,
    /// Per-*request* time budget (Collect/Ack modes): opened at the first
    /// byte of a request head, it caps head + body read time in total —
    /// each read's socket timeout is shrunk to the remaining budget, so
    /// the slow-loris dribbler that defeats `read_timeout` alone is still
    /// evicted (counted under [`Counter::ServerTimeouts`]). Idle
    /// keep-alive gaps *between* requests are not on this budget. `None`
    /// leaves request duration unbounded.
    pub request_timeout: Option<Duration>,
    /// Cap on one request head; larger heads get a `400` and the
    /// connection closed (see [`crate::http::RequestReader::with_limits`]).
    pub max_head_bytes: usize,
    /// Cap on one request body (declared or chunk-accumulated).
    pub max_body_bytes: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        let d = PoolOptions::default();
        ServerOptions {
            workers: d.workers,
            drain_deadline: d.drain_deadline,
            read_timeout: None,
            request_timeout: None,
            max_head_bytes: 1 << 20,
            max_body_bytes: 64 << 20,
        }
    }
}

/// Counters published by a stopped server.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Total bytes drained off all connections (Discard mode) or body
    /// bytes received (Collect/Ack modes).
    pub bytes_received: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Complete requests parsed (Collect/Ack modes only).
    pub requests: u64,
    /// High-water mark of connections queued awaiting a worker.
    pub peak_queue_depth: usize,
}

/// One collected request (Collect mode).
#[derive(Clone, Debug)]
pub struct CollectedRequest {
    /// Parsed request head.
    pub head: crate::http::RequestHead,
    /// Complete (de-chunked) body bytes.
    pub body: Vec<u8>,
}

struct Shared {
    bytes: AtomicU64,
    requests: AtomicU64,
    collected: Mutex<Vec<CollectedRequest>>,
}

/// A loopback server running on the bounded worker pool.
pub struct TestServer {
    shared: Arc<Shared>,
    pool: WorkerPool,
}

impl TestServer {
    /// Bind an ephemeral loopback port and start serving with default
    /// options.
    pub fn spawn(mode: ServerMode) -> io::Result<Self> {
        Self::spawn_with(mode, ServerOptions::default())
    }

    /// Bind an ephemeral loopback port and start serving.
    pub fn spawn_with(mode: ServerMode, opts: ServerOptions) -> io::Result<Self> {
        Self::spawn_inner(mode, opts, None)
    }

    /// [`TestServer::spawn_with`] with an observability registry: requests
    /// tick [`Counter::ServerRequests`] and the request-latency histogram,
    /// and (Collect/Ack modes) the server answers `GET /metrics` with the
    /// registry's Prometheus text rendering.
    pub fn spawn_with_metrics(
        mode: ServerMode,
        opts: ServerOptions,
        metrics: Arc<Metrics>,
    ) -> io::Result<Self> {
        Self::spawn_inner(mode, opts, Some(metrics))
    }

    fn spawn_inner(
        mode: ServerMode,
        opts: ServerOptions,
        metrics: Option<Arc<Metrics>>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let shared = Arc::new(Shared {
            bytes: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            collected: Mutex::new(Vec::new()),
        });
        let handler_shared = Arc::clone(&shared);
        let handler_metrics = metrics.clone();
        let pool = serve_with_metrics(
            listener,
            PoolOptions {
                workers: opts.workers,
                drain_deadline: opts.drain_deadline,
            },
            metrics,
            move |stream| match mode {
                ServerMode::Discard => drain(stream, &handler_shared),
                ServerMode::Collect => {
                    respond(stream, &handler_shared, true, &handler_metrics, &opts)
                }
                ServerMode::Ack => respond(stream, &handler_shared, false, &handler_metrics, &opts),
            },
        )?;
        Ok(TestServer { shared, pool })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.pool.addr()
    }

    /// Bytes drained so far (live view).
    pub fn bytes_received(&self) -> u64 {
        self.shared.bytes.load(Ordering::Relaxed)
    }

    /// Requests parsed so far (live view; Collect/Ack modes).
    pub fn requests(&self) -> u64 {
        self.shared.requests.load(Ordering::Relaxed)
    }

    /// Stop the server and return its counters.
    pub fn stop(mut self) -> ServerStats {
        self.pool.stop();
        ServerStats {
            bytes_received: self.shared.bytes.load(Ordering::Relaxed),
            connections: self.pool.connections(),
            requests: self.shared.requests.load(Ordering::Relaxed),
            peak_queue_depth: self.pool.peak_queue_depth(),
        }
    }

    /// Stop the server and return everything it collected (Collect mode).
    pub fn stop_collecting(mut self) -> Vec<CollectedRequest> {
        self.pool.stop();
        std::mem::take(&mut *self.shared.collected.lock())
    }
}

/// Discard mode: read until EOF, counting bytes — never parsing, exactly
/// like the paper's measurement server.
fn drain(mut stream: TcpStream, shared: &Shared) {
    let mut buf = [0u8; 64 * 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                shared.bytes.fetch_add(n as u64, Ordering::Relaxed);
            }
        }
    }
}

/// Collect/Ack modes: parse framed requests off a keep-alive connection,
/// `200 OK` each with a vectored (head + body slices) response. With a
/// registry attached, `GET /metrics` is answered with the Prometheus text
/// rendering (and counted as a scrape, not a SOAP request).
///
/// Hardened per [`ServerOptions`]: a malformed or over-cap request draws a
/// `400` before the connection closes (so a well-behaved-but-buggy client
/// learns why), and a read that outlasts `read_timeout` — or a whole
/// request that outlasts `request_timeout` — evicts the connection: one
/// stalled (or dribbling) peer cannot pin a worker forever.
fn respond(
    mut stream: TcpStream,
    shared: &Shared,
    store: bool,
    metrics: &Option<Arc<Metrics>>,
    opts: &ServerOptions,
) {
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = RequestReader::with_limits(
        BudgetedRead::new(read_half, opts.read_timeout, opts.request_timeout),
        opts.max_head_bytes,
        opts.max_body_bytes,
    );
    let mut head_scratch = Vec::new();
    let ack = b"<ack/>";
    loop {
        let (head, body) = match reader.next_request() {
            Ok(Some(req)) => {
                // Request boundary: the next request opens a fresh budget.
                reader.stream_mut().rearm();
                req
            }
            Ok(None) => break, // clean EOF between requests
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Malformed or over-cap request: explain, then hang up
                // (framing is unrecoverable once desynced).
                if let Some(m) = metrics {
                    m.add(Counter::ServerBadRequests, 1);
                }
                let reason = e.to_string();
                let _ = write_response_vectored(
                    &mut stream,
                    400,
                    "Bad Request",
                    &[IoSlice::new(reason.as_bytes())],
                    &mut head_scratch,
                );
                break;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                ) =>
            {
                // Slow-loris eviction: the peer held the socket open
                // without completing a request within the read timeout.
                if let Some(m) = metrics {
                    m.add(Counter::ServerTimeouts, 1);
                }
                break;
            }
            Err(_) => break,
        };
        let start = metrics.as_ref().map(|m| m.now_ns());
        if head.method == "GET" && head.path == "/metrics" {
            if serve_metrics_scrape(&mut stream, metrics, &mut head_scratch).is_err() {
                break;
            }
            continue;
        }
        shared.bytes.fetch_add(body.len() as u64, Ordering::Relaxed);
        shared.requests.fetch_add(1, Ordering::Relaxed);
        if store {
            shared
                .collected
                .lock()
                .push(CollectedRequest { head, body });
        }
        // Count the request before its response leaves: a scrape racing
        // the final response on another connection must still see it.
        if let Some(m) = metrics {
            m.add(Counter::ServerRequests, 1);
        }
        let sent = write_response_vectored(
            &mut stream,
            200,
            "OK",
            &[IoSlice::new(ack)],
            &mut head_scratch,
        );
        let sent = match sent {
            Ok(n) => n,
            Err(_) => break,
        };
        if stream.flush().is_err() {
            break;
        }
        if let Some(m) = metrics {
            let elapsed_ns = m.now_ns().saturating_sub(start.unwrap_or(0));
            m.add(Counter::ServerBytesOut, sent as u64);
            m.observe_ns(HistId::ServerRequest, elapsed_ns);
            m.trace(TraceKind::Request {
                bytes: sent as u64,
                elapsed_ns,
            });
        }
    }
}

/// Read half with a per-request time budget layered over the per-read
/// socket timeout. The budget opens at the first byte of a request and
/// every subsequent fill shrinks the socket timeout to the remaining
/// budget, so a slow-loris peer dribbling one byte per interval — each
/// individual read succeeding just under `per_read` — still cannot hold
/// a worker past `budget`. [`BudgetedRead::rearm`] marks a request
/// boundary: idle keep-alive gaps between requests are not on the budget
/// (only `per_read`, if any, applies there).
struct BudgetedRead {
    stream: TcpStream,
    per_read: Option<Duration>,
    budget: Option<Duration>,
    /// When the current request's first byte arrived; `None` between
    /// requests.
    started: Option<std::time::Instant>,
}

impl BudgetedRead {
    fn new(stream: TcpStream, per_read: Option<Duration>, budget: Option<Duration>) -> Self {
        BudgetedRead {
            stream,
            per_read,
            budget,
            started: None,
        }
    }

    /// Request boundary: the next request gets a fresh budget.
    fn rearm(&mut self) {
        self.started = None;
    }
}

impl Read for BudgetedRead {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.per_read.is_none() && self.budget.is_none() {
            return self.stream.read(buf);
        }
        let timeout = match (self.budget, self.started) {
            (Some(b), Some(t0)) => {
                let left = b.saturating_sub(t0.elapsed());
                if left.is_zero() {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "request budget exhausted",
                    ));
                }
                Some(self.per_read.map_or(left, |p| p.min(left)))
            }
            // Between requests (or with no budget configured) only the
            // per-read timeout applies.
            _ => self.per_read,
        };
        self.stream.set_read_timeout(timeout)?;
        let n = self.stream.read(buf)?;
        if n > 0 && self.budget.is_some() && self.started.is_none() {
            self.started = Some(std::time::Instant::now());
        }
        Ok(n)
    }
}

/// Answer one `GET /metrics`: the registry's Prometheus rendering as
/// `text/plain`, or `404` when the server runs without a registry.
fn serve_metrics_scrape(
    stream: &mut TcpStream,
    metrics: &Option<Arc<Metrics>>,
    head_scratch: &mut Vec<u8>,
) -> io::Result<()> {
    let (status, reason, text) = match metrics {
        Some(m) => {
            m.add(Counter::MetricsScrapes, 1);
            (200, "OK", m.render_prometheus())
        }
        None => (404, "Not Found", String::from("no metrics registry\n")),
    };
    render_response_head_typed(
        head_scratch,
        status,
        reason,
        "text/plain; version=0.0.4; charset=utf-8",
        text.len(),
    );
    stream.write_all(head_scratch)?;
    stream.write_all(text.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{post_gather, HttpVersion, RequestConfig};
    use std::io::IoSlice;
    use std::net::TcpStream;

    #[test]
    fn discard_server_counts_bytes() {
        let server = TestServer::spawn(ServerMode::Discard).unwrap();
        let mut c = TcpStream::connect(server.addr()).unwrap();
        c.write_all(b"0123456789abcdef").unwrap();
        c.shutdown(std::net::Shutdown::Write).unwrap();
        drop(c);
        // Drain happens on another thread; spin briefly for the count.
        for _ in 0..200 {
            if server.bytes_received() == 16 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let stats = server.stop();
        assert_eq!(stats.bytes_received, 16);
        assert_eq!(stats.connections, 1);
    }

    #[test]
    fn collect_server_parses_and_acks() {
        let server = TestServer::spawn(ServerMode::Collect).unwrap();
        let mut c = TcpStream::connect(server.addr()).unwrap();
        let cfg = RequestConfig::loopback(HttpVersion::Http11Length);
        let body = b"<m>7</m>".to_vec();
        let mut scratch = Vec::new();
        post_gather(&mut c, &cfg, &[IoSlice::new(&body)], &mut scratch).unwrap();
        let (status, resp) = crate::http::read_response(&mut c).unwrap();
        assert_eq!(status, 200);
        assert_eq!(resp, b"<ack/>");
        drop(c);
        let reqs = server.stop_collecting();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].body, body);
    }

    #[test]
    fn ack_server_counts_but_does_not_store() {
        let server = TestServer::spawn(ServerMode::Ack).unwrap();
        let mut c = TcpStream::connect(server.addr()).unwrap();
        let cfg = RequestConfig::loopback(HttpVersion::Http11Length);
        let body = b"<m>9</m>".to_vec();
        let mut scratch = Vec::new();
        // Two keep-alive requests on one connection.
        for _ in 0..2 {
            post_gather(&mut c, &cfg, &[IoSlice::new(&body)], &mut scratch).unwrap();
            let (status, resp) = crate::http::read_response(&mut c).unwrap();
            assert_eq!(status, 200);
            assert_eq!(resp, b"<ack/>");
        }
        drop(c);
        let stats = server.stop();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.connections, 1, "keep-alive reused one connection");
        assert_eq!(stats.bytes_received, 2 * body.len() as u64);
    }

    #[test]
    fn multiple_connections() {
        let server = TestServer::spawn(ServerMode::Discard).unwrap();
        let mut handles = Vec::new();
        for i in 0..4 {
            let addr = server.addr();
            handles.push(std::thread::spawn(move || {
                let mut c = TcpStream::connect(addr).unwrap();
                c.write_all(&vec![b'a'; (i + 1) * 100]).unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for _ in 0..500 {
            if server.bytes_received() == 1000 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let stats = server.stop();
        assert_eq!(stats.bytes_received, 1000);
        assert_eq!(stats.connections, 4);
    }

    #[test]
    fn connections_beyond_workers_queue_and_complete() {
        // 1 worker, 3 concurrent HTTP clients: all requests must be
        // answered (queued, not refused), and the queue high-water mark
        // must prove queueing actually happened.
        let server = TestServer::spawn_with(
            ServerMode::Ack,
            ServerOptions {
                workers: 1,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = TcpStream::connect(addr).unwrap();
                    let cfg = RequestConfig::loopback(HttpVersion::Http11Length);
                    let body = b"<q/>".to_vec();
                    let mut scratch = Vec::new();
                    post_gather(&mut c, &cfg, &[IoSlice::new(&body)], &mut scratch).unwrap();
                    let (status, _) = crate::http::read_response(&mut c).unwrap();
                    assert_eq!(status, 200);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = server.stop();
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.connections, 3);
    }

    #[test]
    fn metrics_endpoint_reports_server_counters() {
        let metrics = Metrics::shared();
        let server = TestServer::spawn_with_metrics(
            ServerMode::Ack,
            ServerOptions::default(),
            Arc::clone(&metrics),
        )
        .unwrap();
        let mut c = TcpStream::connect(server.addr()).unwrap();
        let cfg = RequestConfig::loopback(HttpVersion::Http11Length);
        let body = b"<m>1</m>".to_vec();
        let mut scratch = Vec::new();
        for _ in 0..3 {
            post_gather(&mut c, &cfg, &[IoSlice::new(&body)], &mut scratch).unwrap();
            let (status, _) = crate::http::read_response(&mut c).unwrap();
            assert_eq!(status, 200);
        }
        // Scrape over the same keep-alive connection.
        let mut get = Vec::new();
        crate::http::render_get_request(&mut get, "/metrics", "localhost");
        c.write_all(&get).unwrap();
        let (status, text) = crate::http::read_response(&mut c).unwrap();
        assert_eq!(status, 200);
        let text = String::from_utf8(text).unwrap();
        assert_eq!(
            bsoap_obs::parse_value(&text, "bsoap_server_requests_total"),
            Some(3.0)
        );
        assert_eq!(
            bsoap_obs::parse_value(&text, "bsoap_metrics_scrapes_total"),
            Some(1.0)
        );
        drop(c);
        let stats = server.stop();
        assert_eq!(stats.requests, 3, "the scrape is not counted as a request");
        let snap = metrics.snapshot();
        assert_eq!(snap.get(Counter::ServerRequests), 3);
        assert_eq!(snap.get(Counter::ServerConnections), 1);
        assert_eq!(snap.hist(HistId::ServerRequest).count(), 3);
    }

    #[test]
    fn metrics_scrape_without_registry_is_404() {
        let server = TestServer::spawn(ServerMode::Ack).unwrap();
        let mut c = TcpStream::connect(server.addr()).unwrap();
        let mut get = Vec::new();
        crate::http::render_get_request(&mut get, "/metrics", "localhost");
        c.write_all(&get).unwrap();
        let (status, _) = crate::http::read_response(&mut c).unwrap();
        assert_eq!(status, 404);
        drop(c);
        server.stop();
    }

    #[test]
    fn malformed_request_draws_400_then_close() {
        let metrics = Metrics::shared();
        let server = TestServer::spawn_with_metrics(
            ServerMode::Ack,
            ServerOptions::default(),
            Arc::clone(&metrics),
        )
        .unwrap();
        let mut c = TcpStream::connect(server.addr()).unwrap();
        c.write_all(b"THIS IS NOT HTTP AT ALL\r\n\r\n").unwrap();
        let (status, body) = crate::http::read_response(&mut c).unwrap();
        assert_eq!(status, 400);
        assert!(!body.is_empty(), "400 body explains the rejection");
        // Connection is closed after the 400.
        let mut probe = [0u8; 1];
        assert_eq!(c.read(&mut probe).unwrap(), 0);
        drop(c);
        let stats = server.stop();
        assert_eq!(stats.requests, 0);
        assert_eq!(metrics.snapshot().get(Counter::ServerBadRequests), 1);
    }

    #[test]
    fn oversized_head_draws_400() {
        let metrics = Metrics::shared();
        let server = TestServer::spawn_with_metrics(
            ServerMode::Ack,
            ServerOptions {
                max_head_bytes: 1024,
                ..ServerOptions::default()
            },
            Arc::clone(&metrics),
        )
        .unwrap();
        let mut c = TcpStream::connect(server.addr()).unwrap();
        let mut req = Vec::new();
        req.extend_from_slice(b"POST / HTTP/1.1\r\nX-Pad: ");
        req.extend_from_slice(&vec![b'x'; 4096]);
        req.extend_from_slice(b"\r\nContent-Length: 0\r\n\r\n");
        c.write_all(&req).unwrap();
        let (status, _) = crate::http::read_response(&mut c).unwrap();
        assert_eq!(status, 400);
        drop(c);
        server.stop();
        assert_eq!(metrics.snapshot().get(Counter::ServerBadRequests), 1);
    }

    #[test]
    fn slow_loris_connection_is_evicted() {
        let metrics = Metrics::shared();
        let server = TestServer::spawn_with_metrics(
            ServerMode::Ack,
            ServerOptions {
                read_timeout: Some(Duration::from_millis(40)),
                ..ServerOptions::default()
            },
            Arc::clone(&metrics),
        )
        .unwrap();
        let mut c = TcpStream::connect(server.addr()).unwrap();
        // Half a request head, then silence: the server must evict rather
        // than pin a worker forever.
        c.write_all(b"POST / HTTP/1.1\r\nHost: lo").unwrap();
        let mut probe = [0u8; 64];
        assert_eq!(c.read(&mut probe).unwrap(), 0, "server closed on us");
        drop(c);
        server.stop();
        assert_eq!(metrics.snapshot().get(Counter::ServerTimeouts), 1);
    }

    #[test]
    fn dribbling_slow_loris_is_evicted_by_the_request_budget() {
        // A peer sending one byte per interval just under `read_timeout`
        // keeps every individual read succeeding — the per-read timeout
        // alone never fires. The per-request budget must evict it anyway.
        let metrics = Metrics::shared();
        let server = TestServer::spawn_with_metrics(
            ServerMode::Ack,
            ServerOptions {
                read_timeout: Some(Duration::from_millis(200)),
                request_timeout: Some(Duration::from_millis(120)),
                ..ServerOptions::default()
            },
            Arc::clone(&metrics),
        )
        .unwrap();
        let mut c = TcpStream::connect(server.addr()).unwrap();
        let head: &[u8] = b"POST / HTTP/1.1\r\nHost: l";
        for chunk in head.chunks(1).take(12) {
            // Ignore write errors: once evicted the dribble may hit RST.
            let _ = c.write_all(chunk);
            std::thread::sleep(Duration::from_millis(25));
        }
        // ~300ms of dribbling against a 120ms request budget: the server
        // must have evicted the connection and counted the timeout.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while metrics.snapshot().get(Counter::ServerTimeouts) == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "server never evicted the dribbler"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        // The read half confirms the close: a clean FIN reads zero bytes,
        // and an error (RST) also means closed.
        let mut probe = [0u8; 8];
        if let Ok(n) = c.read(&mut probe) {
            assert_eq!(n, 0, "server must not answer a dribbler");
        }
        drop(c);
        let stats = server.stop();
        assert_eq!(stats.requests, 0);
        assert_eq!(metrics.snapshot().get(Counter::ServerTimeouts), 1);
    }

    #[test]
    fn keep_alive_idle_gap_is_not_on_the_request_budget() {
        // The budget opens at the first byte of a request: a client that
        // idles between two requests longer than `request_timeout` must
        // still be served (only reads *within* a request are budgeted).
        let server = TestServer::spawn_with(
            ServerMode::Ack,
            ServerOptions {
                request_timeout: Some(Duration::from_millis(80)),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let mut c = TcpStream::connect(server.addr()).unwrap();
        let cfg = RequestConfig::loopback(HttpVersion::Http11Length);
        let body = b"<m>1</m>".to_vec();
        let mut scratch = Vec::new();
        post_gather(&mut c, &cfg, &[IoSlice::new(&body)], &mut scratch).unwrap();
        let (status, _) = crate::http::read_response(&mut c).unwrap();
        assert_eq!(status, 200);
        // Idle past the per-request budget, then send a second request.
        std::thread::sleep(Duration::from_millis(160));
        post_gather(&mut c, &cfg, &[IoSlice::new(&body)], &mut scratch).unwrap();
        let (status, _) = crate::http::read_response(&mut c).unwrap();
        assert_eq!(status, 200);
        drop(c);
        let stats = server.stop();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.connections, 1, "keep-alive survived the idle gap");
    }

    #[test]
    fn stop_without_traffic() {
        let server = TestServer::spawn(ServerMode::Discard).unwrap();
        let stats = server.stop();
        assert_eq!(stats.bytes_received, 0);
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let server = TestServer::spawn(ServerMode::Collect).unwrap();
        let addr = server.addr();
        drop(server);
        // Port should be released promptly; a new bind may or may not get
        // the same port, but connecting to the old one must not hang.
        let _ = TcpStream::connect(addr);
    }
}
