//! TCP client transport.
//!
//! Carries SOAP messages to a real socket with the paper's relevant
//! options: `TCP_NODELAY` (no Nagle batching between template chunks) and
//! keep-alive semantics via persistent connections. The paper also sets
//! `SO_SNDBUF`/`SO_RCVBUF` to 32768; the Rust standard library does not
//! expose those options, so the kernel defaults apply — noted as a
//! substitution in DESIGN.md (it shifts absolute numbers, not series
//! shape).

use crate::http::{post_gather_vectored, PostScratch, RequestConfig};
use crate::{write_gather, Transport};
use std::io::{self, IoSlice, Write};
use std::net::{SocketAddr, TcpStream};

/// How messages are delimited on the wire.
#[derive(Clone, Debug)]
pub enum Framing {
    /// No framing: raw message bytes, back to back. Matches the paper's
    /// measurement path (the dummy server just drains the socket).
    Raw,
    /// Each message is an HTTP POST per the config.
    Http(RequestConfig),
}

/// A connected TCP transport.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    framing: FramingState,
    bytes: u64,
}

#[derive(Debug)]
enum FramingState {
    Raw,
    Http {
        cfg: RequestConfig,
        scratch: PostScratch,
    },
}

impl TcpTransport {
    /// Connect to `addr` with `TCP_NODELAY` set, using the given framing.
    pub fn connect(addr: SocketAddr, framing: Framing) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream,
            framing: match framing {
                Framing::Raw => FramingState::Raw,
                Framing::Http(cfg) => FramingState::Http {
                    cfg,
                    scratch: PostScratch::default(),
                },
            },
            bytes: 0,
        })
    }

    /// The underlying stream (e.g. to read a response).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Update the `SOAPAction` header for subsequent HTTP-framed sends
    /// (no-op for raw framing).
    pub fn set_soap_action(&mut self, action: &str) {
        if let FramingState::Http { cfg, .. } = &mut self.framing {
            cfg.soap_action = action.to_owned();
        }
    }

    /// Replace the extra request headers for subsequent HTTP-framed
    /// sends (no-op for raw framing) — how the negotiation layer attaches
    /// its `X-BSOAP-*` offer and format declaration per call.
    pub fn set_extra_headers(&mut self, headers: Vec<(String, String)>) {
        if let FramingState::Http { cfg, .. } = &mut self.framing {
            cfg.extra_headers = headers;
        }
    }

    /// Half-close the write side so the server sees EOF.
    pub fn finish(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }
}

impl Transport for TcpTransport {
    fn send_message(&mut self, message: &[IoSlice<'_>]) -> io::Result<usize> {
        let n = match &mut self.framing {
            FramingState::Raw => write_gather(&mut self.stream, message)?,
            FramingState::Http { cfg, scratch } => {
                // Head and chunk frames go out as their own IoSlices in one
                // writev with the payload: no buffering tier, no body copy.
                post_gather_vectored(&mut self.stream, cfg, message, scratch)?
            }
        };
        self.bytes += n as u64;
        Ok(n)
    }

    fn bytes_sent(&self) -> u64 {
        self.bytes
    }
}

/// Raw byte-stream access. Only raw-framed transports implement this
/// honestly; with HTTP framing configured, plain writes would silently
/// skip the framing the peer expects, so they are refused — use
/// [`Transport::send_message`] (or [`Client::call_via`]) instead.
///
/// [`Client::call_via`]: https://docs.rs/bsoap-core
impl Write for TcpTransport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if matches!(self.framing, FramingState::Http { .. }) {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "raw write on an HTTP-framed transport; use send_message",
            ));
        }
        let n = self.stream.write(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        if matches!(self.framing, FramingState::Http { .. }) {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "raw write on an HTTP-framed transport; use send_message",
            ));
        }
        let n = self.stream.write_vectored(bufs)?;
        self.bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::HttpVersion;
    use crate::server::{ServerMode, TestServer};

    #[test]
    fn raw_framing_reaches_discard_server() {
        let server = TestServer::spawn(ServerMode::Discard).unwrap();
        let mut t = TcpTransport::connect(server.addr(), Framing::Raw).unwrap();
        let msg = b"0123456789".to_vec();
        for _ in 0..3 {
            let n = t.send_message(&[IoSlice::new(&msg)]).unwrap();
            assert_eq!(n, 10);
        }
        assert_eq!(t.bytes_sent(), 30);
        t.finish().unwrap();
        drop(t);
        let stats = server.stop();
        assert_eq!(stats.bytes_received, 30);
    }

    #[test]
    fn http_framing_round_trips_bodies() {
        let server = TestServer::spawn(ServerMode::Collect).unwrap();
        let cfg = RequestConfig::loopback(HttpVersion::Http11Length);
        let mut t = TcpTransport::connect(server.addr(), Framing::Http(cfg)).unwrap();
        let msg = b"<env>hello</env>".to_vec();
        t.send_message(&[IoSlice::new(&msg)]).unwrap();
        t.finish().unwrap();
        drop(t);
        let reqs = server.stop_collecting();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].body, msg);
        assert_eq!(reqs[0].head.method, "POST");
    }

    #[test]
    fn chunked_http_framing_round_trips() {
        let server = TestServer::spawn(ServerMode::Collect).unwrap();
        let cfg = RequestConfig::loopback(HttpVersion::Http11Chunked);
        let mut t = TcpTransport::connect(server.addr(), Framing::Http(cfg)).unwrap();
        let a = vec![b'x'; 5000];
        let b = vec![b'y'; 7000];
        t.send_message(&[IoSlice::new(&a), IoSlice::new(&b)])
            .unwrap();
        t.finish().unwrap();
        drop(t);
        let reqs = server.stop_collecting();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].body.len(), 12000);
        assert_eq!(&reqs[0].body[..5000], &a[..]);
        assert_eq!(&reqs[0].body[5000..], &b[..]);
    }
}
