//! Client-side connection pooling for keep-alive HTTP SOAP calls.
//!
//! The paper's differential serialization makes the *stub* cheap; this
//! module makes the wire path keep up. A [`ConnectionPool`] holds
//! persistent keep-alive connections to one endpoint so a differential
//! resend costs one `writev`, not a TCP + HTTP handshake. Checkout
//! health-checks the socket (a zero-byte `peek` distinguishes a live idle
//! connection from one the peer closed), idle connections past their
//! timeout are reaped, and [`HttpPoolClient`] retries once on a stale
//! socket that died mid-exchange — transparent reconnect, visible only in
//! [`PoolStats`].

use crate::fault::{AttemptFailure, FaultPolicy, Resilience};
use crate::http::{
    post_gather_vectored, read_response_limited, render_get_request, HttpVersion, PostScratch,
    RequestConfig,
};
use crate::stream::ChunkedBodyWriter;
use crate::Transport;
use bsoap_obs::{Clock, Counter, Deadline, HistId, Metrics, MonotonicClock, Recorder, TraceKind};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{self, IoSlice, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::Duration;

/// Pool tuning.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Maximum idle connections retained; checkouts beyond this open
    /// fresh connections that are dropped (oldest first) on checkin.
    pub max_idle: usize,
    /// Idle connections older than this are reaped at the next checkout
    /// (or explicit [`ConnectionPool::reap`]).
    pub idle_timeout: Duration,
    /// Hard cap on connections checked out at once. Checkouts beyond the
    /// cap *queue* (they block until a connection returns) rather than
    /// being refused or dialing past the cap. `None` = uncapped (the seed
    /// behavior).
    pub max_live: Option<usize>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            max_idle: 4,
            idle_timeout: Duration::from_secs(30),
            max_live: None,
        }
    }
}

/// Cumulative pool counters (relaxed; exact in quiescence).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Fresh TCP connections opened.
    pub created: u64,
    /// Checkouts served by an idle pooled connection.
    pub reused: u64,
    /// Idle connections discarded because the health check failed.
    pub stale: u64,
    /// Idle connections discarded because they out-sat the idle timeout.
    pub expired: u64,
    /// Exchanges retried on a fresh connection after a reused one died.
    pub retries: u64,
    /// Checkouts that had to queue on the `max_live` cap before being
    /// served (queued-not-refused).
    pub waited: u64,
}

#[derive(Default)]
struct AtomicStats {
    created: AtomicU64,
    reused: AtomicU64,
    stale: AtomicU64,
    expired: AtomicU64,
    retries: AtomicU64,
    waited: AtomicU64,
}

/// An idle pooled connection. The per-connection [`PostScratch`] travels
/// with the socket so repeated sends through the pool allocate nothing.
struct Idle {
    stream: TcpStream,
    scratch: PostScratch,
    /// Pool-clock reading at checkin (drives idle-timeout reaping; on a
    /// `VirtualClock` expiry is testable without real sleeps).
    since_ns: u64,
}

/// Real-time slice for one queued-checkout condvar wait; the deadline
/// itself is re-checked on its injected clock between slices.
const QUEUE_WAIT_SLICE: Duration = Duration::from_millis(5);

/// The `max_live` admission gate: a counted semaphore on a condvar so
/// over-cap checkouts queue instead of being refused.
#[derive(Default)]
struct LiveGate {
    live: StdMutex<usize>,
    returned: Condvar,
}

/// A pool of persistent keep-alive connections to one endpoint.
pub struct ConnectionPool {
    addr: SocketAddr,
    cfg: PoolConfig,
    idle: Mutex<VecDeque<Idle>>,
    stats: AtomicStats,
    metrics: Option<Arc<Metrics>>,
    clock: Arc<dyn Clock>,
    gate: LiveGate,
}

impl ConnectionPool {
    /// Empty pool for `addr`.
    pub fn new(addr: SocketAddr, cfg: PoolConfig) -> Self {
        ConnectionPool {
            addr,
            cfg,
            idle: Mutex::new(VecDeque::new()),
            stats: AtomicStats::default(),
            metrics: None,
            clock: Arc::new(MonotonicClock::new()),
            gate: LiveGate::default(),
        }
    }

    /// Inject the clock idle ages are measured on (tests pass a
    /// [`bsoap_obs::VirtualClock`] so reaping needs no real sleeps).
    pub fn set_clock(&mut self, clock: Arc<dyn Clock>) {
        self.clock = clock;
    }

    /// Attach an observability registry: checkouts, reuse, staleness,
    /// expiry and retries are mirrored into its counters, checkout latency
    /// into its [`HistId::PoolCheckout`] histogram, and every checkout /
    /// reconnect drops a trace event.
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.metrics = Some(metrics);
    }

    /// The endpoint this pool serves.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Check a connection out: most-recently-used healthy idle connection
    /// if one exists (LIFO keeps sockets warm), else a fresh connect with
    /// `TCP_NODELAY` set. Expired and health-check-failed idles found on
    /// the way are discarded.
    pub fn checkout(&self) -> io::Result<PooledConn<'_>> {
        self.checkout_within(None)
    }

    /// [`ConnectionPool::checkout`] under a call deadline: the `max_live`
    /// queue wait, the TCP connect, and the returned socket's read/write
    /// timeouts are all bounded by the remaining budget.
    pub fn checkout_within(&self, deadline: Option<&Deadline>) -> io::Result<PooledConn<'_>> {
        self.acquire_permit(deadline)?;
        match self.checkout_inner(deadline) {
            Ok(conn) => Ok(conn),
            Err(e) => {
                self.release_permit();
                Err(e)
            }
        }
    }

    fn checkout_inner(&self, deadline: Option<&Deadline>) -> io::Result<PooledConn<'_>> {
        let start = self.metrics.as_ref().map(|m| m.now_ns());
        let idle_timeout_ns = self.cfg.idle_timeout.as_nanos() as u64;
        loop {
            let candidate = self.idle.lock().pop_back();
            let Some(idle) = candidate else { break };
            if self.clock.now_ns().saturating_sub(idle.since_ns) > idle_timeout_ns {
                self.stats.expired.fetch_add(1, Ordering::Relaxed);
                self.note(Counter::PoolExpired, 1);
                continue;
            }
            if !socket_is_live(&idle.stream) {
                self.stats.stale.fetch_add(1, Ordering::Relaxed);
                self.note(Counter::PoolStale, 1);
                continue;
            }
            apply_socket_deadline(&idle.stream, deadline)?;
            self.stats.reused.fetch_add(1, Ordering::Relaxed);
            self.note_checkout(Counter::PoolReused, start, true);
            return Ok(PooledConn {
                pool: self,
                conn: Some((idle.stream, idle.scratch)),
                reused: true,
            });
        }
        let stream = match deadline.and_then(|d| d.remaining()) {
            Some(budget) => {
                if budget.is_zero() {
                    return Err(Deadline::timed_out());
                }
                TcpStream::connect_timeout(&self.addr, budget)?
            }
            None => TcpStream::connect(self.addr)?,
        };
        stream.set_nodelay(true)?;
        apply_socket_deadline(&stream, deadline)?;
        self.stats.created.fetch_add(1, Ordering::Relaxed);
        self.note_checkout(Counter::PoolCreated, start, false);
        Ok(PooledConn {
            pool: self,
            conn: Some((stream, PostScratch::default())),
            reused: false,
        })
    }

    /// Take a `max_live` permit, queueing (not refusing) when the pool is
    /// fully checked out. A bounded deadline turns the queue wait into a
    /// timed wait that fails with `TimedOut` once the budget is spent.
    fn acquire_permit(&self, deadline: Option<&Deadline>) -> io::Result<()> {
        let Some(cap) = self.cfg.max_live else {
            return Ok(());
        };
        let cap = cap.max(1);
        let mut live = self.gate.live.lock().unwrap_or_else(|e| e.into_inner());
        let mut waited = false;
        while *live >= cap {
            if !waited {
                waited = true;
                self.stats.waited.fetch_add(1, Ordering::Relaxed);
            }
            match deadline.and_then(|d| d.remaining()) {
                Some(left) => {
                    if left.is_zero() {
                        return Err(Deadline::timed_out());
                    }
                    // The condvar can only wait in *real* time, while
                    // `left` is measured on the deadline's injected clock
                    // (a VirtualClock in tests). Wait in short real-time
                    // slices and re-derive the remaining budget from the
                    // deadline's own clock each pass: a queued checkout
                    // neither times out early while virtual time stands
                    // still, nor keeps waiting once virtual time is
                    // already past the deadline.
                    let slice = left.min(QUEUE_WAIT_SLICE);
                    let (guard, _res) = self
                        .gate
                        .returned
                        .wait_timeout(live, slice)
                        .unwrap_or_else(|e| e.into_inner());
                    live = guard;
                }
                None => {
                    live = self
                        .gate
                        .returned
                        .wait(live)
                        .unwrap_or_else(|e| e.into_inner());
                }
            }
        }
        *live += 1;
        Ok(())
    }

    fn release_permit(&self) {
        if self.cfg.max_live.is_none() {
            return;
        }
        let mut live = self.gate.live.lock().unwrap_or_else(|e| e.into_inner());
        *live = live.saturating_sub(1);
        drop(live);
        self.gate.returned.notify_one();
    }

    /// Connections currently checked out (0 when `max_live` is unset —
    /// the gate only counts under a cap).
    pub fn live_count(&self) -> usize {
        *self.gate.live.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn note(&self, c: Counter, delta: u64) {
        if let Some(m) = &self.metrics {
            m.add(c, delta);
        }
    }

    fn note_checkout(&self, c: Counter, start: Option<u64>, reused: bool) {
        if let Some(m) = &self.metrics {
            m.add(c, 1);
            m.observe_ns(
                HistId::PoolCheckout,
                m.now_ns().saturating_sub(start.unwrap_or(0)),
            );
            m.trace(TraceKind::PoolCheckout { reused });
        }
    }

    /// Drop idle connections past the idle timeout.
    pub fn reap(&self) {
        let now = self.clock.now_ns();
        let idle_timeout_ns = self.cfg.idle_timeout.as_nanos() as u64;
        let mut idle = self.idle.lock();
        let before = idle.len();
        idle.retain(|c| now.saturating_sub(c.since_ns) <= idle_timeout_ns);
        let reaped = (before - idle.len()) as u64;
        drop(idle);
        self.stats.expired.fetch_add(reaped, Ordering::Relaxed);
        self.note(Counter::PoolExpired, reaped);
    }

    /// Idle connections currently pooled.
    pub fn idle_count(&self) -> usize {
        self.idle.lock().len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            created: self.stats.created.load(Ordering::Relaxed),
            reused: self.stats.reused.load(Ordering::Relaxed),
            stale: self.stats.stale.load(Ordering::Relaxed),
            expired: self.stats.expired.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            waited: self.stats.waited.load(Ordering::Relaxed),
        }
    }

    fn checkin(&self, stream: TcpStream, scratch: PostScratch) {
        // Clear per-call socket timeouts so a later unbounded call is not
        // haunted by a previous call's deadline.
        let _ = stream.set_read_timeout(None);
        let _ = stream.set_write_timeout(None);
        let mut idle = self.idle.lock();
        idle.push_back(Idle {
            stream,
            scratch,
            since_ns: self.clock.now_ns(),
        });
        while idle.len() > self.cfg.max_idle.max(1) {
            idle.pop_front();
        }
    }
}

/// Derive `SO_RCVTIMEO`/`SO_SNDTIMEO` from the deadline's remaining
/// budget; an already-expired deadline errors instead of setting a zero
/// (i.e. infinite) timeout.
fn apply_socket_deadline(stream: &TcpStream, deadline: Option<&Deadline>) -> io::Result<()> {
    let Some(d) = deadline else {
        return Ok(());
    };
    let timeout = d.socket_timeout()?;
    stream.set_read_timeout(timeout)?;
    stream.set_write_timeout(timeout)?;
    Ok(())
}

/// Health check: a nonblocking zero-consume `peek`. `WouldBlock` means the
/// socket is open with nothing pending — healthy. `Ok(0)` is a FIN the
/// peer sent while the connection idled; `Ok(_)` is unsolicited data
/// (protocol desync). Both make the connection unusable for a fresh
/// request/response exchange.
fn socket_is_live(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return false;
    }
    let mut probe = [0u8; 1];
    let live = matches!(stream.peek(&mut probe), Err(e) if e.kind() == io::ErrorKind::WouldBlock);
    stream.set_nonblocking(false).is_ok() && live
}

/// A checked-out connection. Returned to the pool on drop; call
/// [`PooledConn::discard`] instead after an I/O error so a broken socket
/// never re-enters circulation.
pub struct PooledConn<'a> {
    pool: &'a ConnectionPool,
    conn: Option<(TcpStream, PostScratch)>,
    /// Whether this checkout was served from the pool (vs fresh connect).
    pub reused: bool,
}

impl PooledConn<'_> {
    /// The socket and its send scratch.
    pub fn parts(&mut self) -> (&mut TcpStream, &mut PostScratch) {
        let (s, scratch) = self.conn.as_mut().expect("connection present until drop");
        (s, scratch)
    }

    /// The socket alone.
    pub fn stream(&mut self) -> &mut TcpStream {
        self.parts().0
    }

    /// Consume without returning the connection to the pool.
    pub fn discard(mut self) {
        self.conn = None;
    }
}

impl Drop for PooledConn<'_> {
    fn drop(&mut self) {
        if let Some((stream, scratch)) = self.conn.take() {
            self.pool.checkin(stream, scratch);
        }
        // Checked-out (even discarded) connections hold a max_live permit;
        // release after checkin so a queued waiter sees the idle socket.
        self.pool.release_permit();
    }
}

/// A reply to a pooled HTTP call.
#[derive(Clone, Debug)]
pub struct HttpReply {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: Vec<u8>,
    /// Request bytes written to the wire (head + framing + payload).
    pub wire_bytes: usize,
}

/// A pooled keep-alive HTTP client: POST a gather list, read the reply,
/// return the connection to the pool. Shareable across threads (`&self`
/// API); each call checks a connection out for its exclusive use.
pub struct HttpPoolClient {
    pool: ConnectionPool,
    cfg: RequestConfig,
    bytes: AtomicU64,
    resilience: Resilience,
    /// `(max_head, max_body)` caps applied to every response read — the
    /// client-side mirror of the server's `RequestReader::with_limits`
    /// hardening. Defaults to uncapped (the seed behavior).
    resp_caps: (usize, usize),
}

impl HttpPoolClient {
    /// Client for `addr` posting per `cfg`, pooling per `pool_cfg`, with
    /// the seed-compatible [`FaultPolicy::default`] (no deadline, no
    /// policy retries, breaker off).
    pub fn new(addr: SocketAddr, cfg: RequestConfig, pool_cfg: PoolConfig) -> Self {
        Self::with_fault_policy(addr, cfg, pool_cfg, FaultPolicy::default())
    }

    /// Client with an explicit fault-tolerance policy.
    pub fn with_fault_policy(
        addr: SocketAddr,
        cfg: RequestConfig,
        pool_cfg: PoolConfig,
        policy: FaultPolicy,
    ) -> Self {
        HttpPoolClient {
            pool: ConnectionPool::new(addr, pool_cfg),
            cfg,
            bytes: AtomicU64::new(0),
            resilience: Resilience::new(policy),
            resp_caps: (usize::MAX, usize::MAX),
        }
    }

    /// Cap response heads/bodies: a reply whose head exceeds `max_head`
    /// or whose body (length-framed *or* chunk-accumulated) exceeds
    /// `max_body` fails with [`crate::http::HttpError::TooLarge`] instead
    /// of buffering without bound.
    pub fn set_response_caps(&mut self, max_head: usize, max_body: usize) {
        self.resp_caps = (max_head.max(1), max_body);
    }

    /// The underlying pool (stats, reaping).
    pub fn pool(&self) -> &ConnectionPool {
        &self.pool
    }

    /// The fault-tolerance executor (breaker state, policy).
    pub fn resilience(&self) -> &Resilience {
        &self.resilience
    }

    /// Replace the fault policy (breaker state resets).
    pub fn set_fault_policy(&mut self, policy: FaultPolicy) {
        let clock = Arc::clone(self.resilience.clock());
        let metrics = self.pool.metrics.clone();
        self.resilience = Resilience::with_clock(policy, clock);
        if let Some(m) = metrics {
            self.resilience.set_metrics(m);
        }
    }

    /// Inject the clock that drives idle reaping, deadlines, backoff
    /// sleeps, and breaker cooldowns.
    pub fn set_clock(&mut self, clock: Arc<dyn Clock>) {
        self.pool.set_clock(Arc::clone(&clock));
        let policy = *self.resilience.policy();
        let metrics = self.pool.metrics.clone();
        self.resilience = Resilience::with_clock(policy, clock);
        if let Some(m) = metrics {
            self.resilience.set_metrics(m);
        }
    }

    /// Attach an observability registry (see [`ConnectionPool::set_metrics`];
    /// retry/breaker/deadline counters record here too).
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.pool.set_metrics(Arc::clone(&metrics));
        self.resilience.set_metrics(metrics);
    }

    /// POST `body` and read the response. A reused connection that fails
    /// the exchange is discarded and the call retried once on a fresh
    /// connection — the template was not consumed, so the resend is free
    /// (the stale socket is the only thing replaced). Errors on a fresh
    /// connection propagate: the endpoint itself is down.
    pub fn call(&self, body: &[IoSlice<'_>]) -> io::Result<HttpReply> {
        let caps = self.resp_caps;
        self.with_retry(|conn| Self::exchange(conn, &self.cfg, body, caps))
    }

    /// POST a body produced *incrementally*: `produce` receives a
    /// [`ChunkedBodyWriter`] and streams portions straight onto the
    /// socket — the overlay pipeline's wire hookup, where sender memory
    /// stays bounded by the window fragment rather than the message.
    ///
    /// Runs under the same fault policy as [`call`](Self::call): the
    /// writer carries the attempt's [`Deadline`](bsoap_obs::Deadline), and
    /// on a retry `produce` is invoked again from the top (portions
    /// already written to a dead socket were never seen by the server, so
    /// re-streaming from scratch is the correct replay). Framing is
    /// forced to chunked regardless of the client's configured version —
    /// a streamed body cannot promise a `Content-Length` up front.
    ///
    /// Returns the reply plus `produce`'s own result (e.g. an
    /// `OverlayReport`) from the successful attempt.
    pub fn post_streamed<T>(
        &self,
        mut produce: impl FnMut(&mut ChunkedBodyWriter<'_, TcpStream>) -> io::Result<T>,
    ) -> io::Result<(HttpReply, T)> {
        let mut cfg = self.cfg.clone();
        cfg.version = HttpVersion::Http11Chunked;
        let (max_head, max_body) = self.resp_caps;
        let out = self.resilience.run_with(
            |deadline, _attempt| {
                let mut conn = self
                    .pool
                    .checkout_within(Some(deadline))
                    .map_err(AttemptFailure::hard)?;
                let reused = conn.reused;
                let attempt = (|| {
                    let mut head = Vec::new();
                    let stream = conn.stream();
                    let mut writer =
                        ChunkedBodyWriter::start(stream, &cfg, &mut head, Some(deadline))?;
                    let produced = produce(&mut writer)?;
                    let (wire_bytes, _, _) = writer.finish()?;
                    let (status, body) = read_response_limited(stream, max_head, max_body)?;
                    Ok((
                        HttpReply {
                            status,
                            body,
                            wire_bytes,
                        },
                        produced,
                    ))
                })();
                match attempt {
                    Ok(v) => Ok(v),
                    Err(e) => {
                        conn.discard();
                        Err(AttemptFailure {
                            error: e,
                            free_retry: reused,
                        })
                    }
                }
            },
            || {
                self.pool.stats.retries.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.pool.metrics {
                    m.add(Counter::PoolRetries, 1);
                    m.trace(TraceKind::PoolReconnect);
                }
            },
        )?;
        self.bytes
            .fetch_add(out.0.wire_bytes as u64, Ordering::Relaxed);
        Ok(out)
    }

    /// Issue a bodiless keep-alive `GET` for `path` over a pooled
    /// connection — how the throughput bench and integration tests scrape
    /// `GET /metrics` mid-load without opening a fresh socket.
    pub fn get(&self, path: &str) -> io::Result<HttpReply> {
        let (max_head, max_body) = self.resp_caps;
        self.with_retry(|conn| {
            let mut head = Vec::new();
            render_get_request(&mut head, path, &self.cfg.host);
            let stream = conn.stream();
            stream.write_all(&head)?;
            stream.flush()?;
            let (status, resp) = read_response_limited(stream, max_head, max_body)?;
            Ok(HttpReply {
                status,
                body: resp,
                wire_bytes: head.len(),
            })
        })
    }

    /// Checkout/exchange under the fault policy. The legacy stale-socket
    /// retry survives as the *free* retry (a reused connection that dies
    /// mid-exchange is replaced once without consuming the policy budget);
    /// deadline propagation, policy retries with backoff, and the circuit
    /// breaker all live in [`Resilience::run_with`]. A checkout failure is
    /// a hard attempt failure — the endpoint itself is unreachable, so it
    /// only retries if the *policy* says so (seed default: it does not).
    fn with_retry(
        &self,
        mut exchange: impl FnMut(&mut PooledConn<'_>) -> io::Result<HttpReply>,
    ) -> io::Result<HttpReply> {
        let reply = self.resilience.run_with(
            |deadline, _attempt| {
                let mut conn = self
                    .pool
                    .checkout_within(Some(deadline))
                    .map_err(AttemptFailure::hard)?;
                let reused = conn.reused;
                match exchange(&mut conn) {
                    Ok(reply) => Ok(reply),
                    Err(e) => {
                        conn.discard();
                        Err(AttemptFailure {
                            error: e,
                            free_retry: reused,
                        })
                    }
                }
            },
            || {
                self.pool.stats.retries.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = &self.pool.metrics {
                    m.add(Counter::PoolRetries, 1);
                    m.trace(TraceKind::PoolReconnect);
                }
            },
        )?;
        self.bytes
            .fetch_add(reply.wire_bytes as u64, Ordering::Relaxed);
        Ok(reply)
    }

    fn exchange(
        conn: &mut PooledConn<'_>,
        cfg: &RequestConfig,
        body: &[IoSlice<'_>],
        (max_head, max_body): (usize, usize),
    ) -> io::Result<HttpReply> {
        let (stream, scratch) = conn.parts();
        let wire_bytes = post_gather_vectored(stream, cfg, body, scratch)?;
        let (status, resp) = read_response_limited(stream, max_head, max_body)?;
        Ok(HttpReply {
            status,
            body: resp,
            wire_bytes,
        })
    }
}

impl Transport for HttpPoolClient {
    fn send_message(&mut self, message: &[IoSlice<'_>]) -> io::Result<usize> {
        let reply = self.call(message)?;
        if reply.status != 200 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("HTTP {}", reply.status),
            ));
        }
        Ok(reply.wire_bytes)
    }

    fn bytes_sent(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{render_response, HttpVersion, RequestReader};
    use crate::server::{ServerMode, TestServer};
    use std::io::Write;
    use std::net::TcpListener;

    fn client_for(addr: SocketAddr, pool_cfg: PoolConfig) -> HttpPoolClient {
        HttpPoolClient::new(
            addr,
            RequestConfig::loopback(HttpVersion::Http11Length),
            pool_cfg,
        )
    }

    #[test]
    fn sequential_calls_reuse_one_connection() {
        let server = TestServer::spawn(ServerMode::Collect).unwrap();
        let client = client_for(server.addr(), PoolConfig::default());
        for i in 0..5 {
            let body = format!("<n>{i}</n>").into_bytes();
            let reply = client.call(&[IoSlice::new(&body)]).unwrap();
            assert_eq!(reply.status, 200);
            assert_eq!(reply.body, b"<ack/>");
        }
        let stats = client.pool().stats();
        assert_eq!(stats.created, 1, "one connection serves all 5 calls");
        assert_eq!(stats.reused, 4);
        drop(client);
        let reqs = server.stop_collecting();
        assert_eq!(reqs.len(), 5);
    }

    #[test]
    fn expired_idle_connections_are_replaced() {
        // Idle expiry measured on an injected VirtualClock: no real sleeps.
        let server = TestServer::spawn(ServerMode::Collect).unwrap();
        let clock = Arc::new(bsoap_obs::VirtualClock::new());
        let mut client = client_for(
            server.addr(),
            PoolConfig {
                idle_timeout: Duration::from_secs(30),
                ..PoolConfig::default()
            },
        );
        client.set_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        let body = b"<x/>".to_vec();
        client.call(&[IoSlice::new(&body)]).unwrap();
        clock.advance(Duration::from_secs(31).as_nanos() as u64);
        client.call(&[IoSlice::new(&body)]).unwrap();
        let stats = client.pool().stats();
        assert_eq!(stats.created, 2);
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.reused, 0);
        drop(client);
        server.stop();
    }

    #[test]
    fn reap_drops_expired_idles() {
        let server = TestServer::spawn(ServerMode::Collect).unwrap();
        let clock = Arc::new(bsoap_obs::VirtualClock::new());
        let mut client = client_for(
            server.addr(),
            PoolConfig {
                idle_timeout: Duration::from_secs(30),
                ..PoolConfig::default()
            },
        );
        client.set_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        let body = b"<x/>".to_vec();
        client.call(&[IoSlice::new(&body)]).unwrap();
        assert_eq!(client.pool().idle_count(), 1);
        clock.advance(Duration::from_secs(31).as_nanos() as u64);
        client.pool().reap();
        assert_eq!(client.pool().idle_count(), 0);
        assert_eq!(client.pool().stats().expired, 1);
        drop(client);
        server.stop();
    }

    #[test]
    fn health_check_catches_peer_close() {
        // Manual one-shot server: accept, respond to one request, close.
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (mut s, _) = listener.accept().unwrap();
                let mut reader = RequestReader::new(s.try_clone().unwrap());
                let _ = reader.next_request().unwrap();
                let mut resp = Vec::new();
                render_response(&mut resp, 200, "OK", b"<one/>");
                s.write_all(&resp).unwrap();
                // Connection drops here: the pooled socket goes stale.
            }
        });
        let client = client_for(addr, PoolConfig::default());
        let body = b"<x/>".to_vec();
        client.call(&[IoSlice::new(&body)]).unwrap();
        // Give the FIN time to arrive so the health check (not the
        // mid-exchange retry) is what catches the stale socket.
        std::thread::sleep(Duration::from_millis(30));
        client.call(&[IoSlice::new(&body)]).unwrap();
        let stats = client.pool().stats();
        assert_eq!(stats.created, 2);
        assert_eq!(stats.stale, 1);
        server.join().unwrap();
    }

    #[test]
    fn mid_exchange_death_retries_on_fresh_connection() {
        // Server: first connection answers one request then swallows the
        // next and closes WITHOUT responding (stale keep-alive mid-call);
        // second connection answers normally.
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut resp = Vec::new();
            {
                let (mut s, _) = listener.accept().unwrap();
                let mut reader = RequestReader::new(s.try_clone().unwrap());
                let _ = reader.next_request().unwrap();
                render_response(&mut resp, 200, "OK", b"<a/>");
                s.write_all(&resp).unwrap();
                // Read the second request fully, then close (stream AND
                // reader clone, so the FIN actually goes out) with no
                // response: the client sees a clean write + EOF on read.
                let _ = reader.next_request();
            }
            let (mut s, _) = listener.accept().unwrap();
            let mut reader = RequestReader::new(s.try_clone().unwrap());
            let _ = reader.next_request().unwrap();
            render_response(&mut resp, 200, "OK", b"<b/>");
            s.write_all(&resp).unwrap();
            let _ = reader.next_request(); // wait for client close
        });
        let client = client_for(addr, PoolConfig::default());
        let body = b"<x/>".to_vec();
        let first = client.call(&[IoSlice::new(&body)]).unwrap();
        assert_eq!(first.body, b"<a/>");
        let second = client.call(&[IoSlice::new(&body)]).unwrap();
        assert_eq!(second.body, b"<b/>", "transparent retry returned data");
        let stats = client.pool().stats();
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.created, 2);
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn fresh_connection_failure_propagates() {
        // Nothing listening: checkout fails, no silent retry loop.
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let client = client_for(addr, PoolConfig::default());
        let body = b"<x/>".to_vec();
        assert!(client.call(&[IoSlice::new(&body)]).is_err());
        assert_eq!(client.pool().stats().retries, 0);
    }

    #[test]
    fn pool_metrics_mirror_pool_stats() {
        let metrics = Metrics::shared();
        let server = TestServer::spawn(ServerMode::Collect).unwrap();
        let mut client = client_for(server.addr(), PoolConfig::default());
        client.set_metrics(Arc::clone(&metrics));
        let body = b"<x/>".to_vec();
        for _ in 0..4 {
            client.call(&[IoSlice::new(&body)]).unwrap();
        }
        let stats = client.pool().stats();
        let snap = metrics.snapshot();
        assert_eq!(snap.get(Counter::PoolCreated), stats.created);
        assert_eq!(snap.get(Counter::PoolReused), stats.reused);
        assert_eq!(snap.get(Counter::PoolRetries), stats.retries);
        assert_eq!(
            snap.hist(HistId::PoolCheckout).count(),
            stats.created + stats.reused,
            "one checkout latency observation per checkout"
        );
        let (events, _) = metrics.trace_ring().snapshot();
        let checkouts = events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::PoolCheckout { .. }))
            .count() as u64;
        assert_eq!(checkouts, stats.created + stats.reused);
        drop(client);
        server.stop();
    }

    #[test]
    fn pooled_get_scrapes_metrics_endpoint() {
        let metrics = Metrics::shared();
        let server = TestServer::spawn_with_metrics(
            ServerMode::Ack,
            crate::server::ServerOptions::default(),
            Arc::clone(&metrics),
        )
        .unwrap();
        let client = client_for(server.addr(), PoolConfig::default());
        let reply = client.get("/metrics").unwrap();
        assert_eq!(reply.status, 200);
        let text = String::from_utf8(reply.body).unwrap();
        assert_eq!(
            bsoap_obs::parse_value(&text, "bsoap_metrics_scrapes_total"),
            Some(1.0)
        );
        drop(client);
        server.stop();
    }

    #[test]
    fn max_idle_caps_pool_size() {
        let server = TestServer::spawn(ServerMode::Collect).unwrap();
        let client = client_for(
            server.addr(),
            PoolConfig {
                max_idle: 2,
                ..PoolConfig::default()
            },
        );
        // Four concurrent checkouts force four connections; on checkin
        // only two stay pooled.
        let body = b"<x/>".to_vec();
        let conns: Vec<_> = (0..4).map(|_| client.pool.checkout().unwrap()).collect();
        assert_eq!(client.pool().stats().created, 4);
        drop(conns);
        assert_eq!(client.pool().idle_count(), 2);
        // Still usable afterwards.
        client.call(&[IoSlice::new(&body)]).unwrap();
        drop(client);
        server.stop();
    }
}
