//! Client-side connection pooling for keep-alive HTTP SOAP calls.
//!
//! The paper's differential serialization makes the *stub* cheap; this
//! module makes the wire path keep up. A [`ConnectionPool`] holds
//! persistent keep-alive connections to one endpoint so a differential
//! resend costs one `writev`, not a TCP + HTTP handshake. Checkout
//! health-checks the socket (a zero-byte `peek` distinguishes a live idle
//! connection from one the peer closed), idle connections past their
//! timeout are reaped, and [`HttpPoolClient`] retries once on a stale
//! socket that died mid-exchange — transparent reconnect, visible only in
//! [`PoolStats`].

use crate::http::{
    post_gather_vectored, read_response, render_get_request, PostScratch, RequestConfig,
};
use crate::Transport;
use bsoap_obs::{Counter, HistId, Metrics, Recorder, TraceKind};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{self, IoSlice, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pool tuning.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Maximum idle connections retained; checkouts beyond this open
    /// fresh connections that are dropped (oldest first) on checkin.
    pub max_idle: usize,
    /// Idle connections older than this are reaped at the next checkout
    /// (or explicit [`ConnectionPool::reap`]).
    pub idle_timeout: Duration,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            max_idle: 4,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// Cumulative pool counters (relaxed; exact in quiescence).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Fresh TCP connections opened.
    pub created: u64,
    /// Checkouts served by an idle pooled connection.
    pub reused: u64,
    /// Idle connections discarded because the health check failed.
    pub stale: u64,
    /// Idle connections discarded because they out-sat the idle timeout.
    pub expired: u64,
    /// Exchanges retried on a fresh connection after a reused one died.
    pub retries: u64,
}

#[derive(Default)]
struct AtomicStats {
    created: AtomicU64,
    reused: AtomicU64,
    stale: AtomicU64,
    expired: AtomicU64,
    retries: AtomicU64,
}

/// An idle pooled connection. The per-connection [`PostScratch`] travels
/// with the socket so repeated sends through the pool allocate nothing.
struct Idle {
    stream: TcpStream,
    scratch: PostScratch,
    since: Instant,
}

/// A pool of persistent keep-alive connections to one endpoint.
pub struct ConnectionPool {
    addr: SocketAddr,
    cfg: PoolConfig,
    idle: Mutex<VecDeque<Idle>>,
    stats: AtomicStats,
    metrics: Option<Arc<Metrics>>,
}

impl ConnectionPool {
    /// Empty pool for `addr`.
    pub fn new(addr: SocketAddr, cfg: PoolConfig) -> Self {
        ConnectionPool {
            addr,
            cfg,
            idle: Mutex::new(VecDeque::new()),
            stats: AtomicStats::default(),
            metrics: None,
        }
    }

    /// Attach an observability registry: checkouts, reuse, staleness,
    /// expiry and retries are mirrored into its counters, checkout latency
    /// into its [`HistId::PoolCheckout`] histogram, and every checkout /
    /// reconnect drops a trace event.
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.metrics = Some(metrics);
    }

    /// The endpoint this pool serves.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Check a connection out: most-recently-used healthy idle connection
    /// if one exists (LIFO keeps sockets warm), else a fresh connect with
    /// `TCP_NODELAY` set. Expired and health-check-failed idles found on
    /// the way are discarded.
    pub fn checkout(&self) -> io::Result<PooledConn<'_>> {
        let start = self.metrics.as_ref().map(|m| m.now_ns());
        loop {
            let candidate = self.idle.lock().pop_back();
            let Some(idle) = candidate else { break };
            if idle.since.elapsed() > self.cfg.idle_timeout {
                self.stats.expired.fetch_add(1, Ordering::Relaxed);
                self.note(Counter::PoolExpired, 1);
                continue;
            }
            if !socket_is_live(&idle.stream) {
                self.stats.stale.fetch_add(1, Ordering::Relaxed);
                self.note(Counter::PoolStale, 1);
                continue;
            }
            self.stats.reused.fetch_add(1, Ordering::Relaxed);
            self.note_checkout(Counter::PoolReused, start, true);
            return Ok(PooledConn {
                pool: self,
                conn: Some((idle.stream, idle.scratch)),
                reused: true,
            });
        }
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        self.stats.created.fetch_add(1, Ordering::Relaxed);
        self.note_checkout(Counter::PoolCreated, start, false);
        Ok(PooledConn {
            pool: self,
            conn: Some((stream, PostScratch::default())),
            reused: false,
        })
    }

    fn note(&self, c: Counter, delta: u64) {
        if let Some(m) = &self.metrics {
            m.add(c, delta);
        }
    }

    fn note_checkout(&self, c: Counter, start: Option<u64>, reused: bool) {
        if let Some(m) = &self.metrics {
            m.add(c, 1);
            m.observe_ns(
                HistId::PoolCheckout,
                m.now_ns().saturating_sub(start.unwrap_or(0)),
            );
            m.trace(TraceKind::PoolCheckout { reused });
        }
    }

    /// Drop idle connections past the idle timeout.
    pub fn reap(&self) {
        let mut idle = self.idle.lock();
        let before = idle.len();
        idle.retain(|c| c.since.elapsed() <= self.cfg.idle_timeout);
        let reaped = (before - idle.len()) as u64;
        drop(idle);
        self.stats.expired.fetch_add(reaped, Ordering::Relaxed);
        self.note(Counter::PoolExpired, reaped);
    }

    /// Idle connections currently pooled.
    pub fn idle_count(&self) -> usize {
        self.idle.lock().len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            created: self.stats.created.load(Ordering::Relaxed),
            reused: self.stats.reused.load(Ordering::Relaxed),
            stale: self.stats.stale.load(Ordering::Relaxed),
            expired: self.stats.expired.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
        }
    }

    fn checkin(&self, stream: TcpStream, scratch: PostScratch) {
        let mut idle = self.idle.lock();
        idle.push_back(Idle {
            stream,
            scratch,
            since: Instant::now(),
        });
        while idle.len() > self.cfg.max_idle.max(1) {
            idle.pop_front();
        }
    }
}

/// Health check: a nonblocking zero-consume `peek`. `WouldBlock` means the
/// socket is open with nothing pending — healthy. `Ok(0)` is a FIN the
/// peer sent while the connection idled; `Ok(_)` is unsolicited data
/// (protocol desync). Both make the connection unusable for a fresh
/// request/response exchange.
fn socket_is_live(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return false;
    }
    let mut probe = [0u8; 1];
    let live = matches!(stream.peek(&mut probe), Err(e) if e.kind() == io::ErrorKind::WouldBlock);
    stream.set_nonblocking(false).is_ok() && live
}

/// A checked-out connection. Returned to the pool on drop; call
/// [`PooledConn::discard`] instead after an I/O error so a broken socket
/// never re-enters circulation.
pub struct PooledConn<'a> {
    pool: &'a ConnectionPool,
    conn: Option<(TcpStream, PostScratch)>,
    /// Whether this checkout was served from the pool (vs fresh connect).
    pub reused: bool,
}

impl PooledConn<'_> {
    /// The socket and its send scratch.
    pub fn parts(&mut self) -> (&mut TcpStream, &mut PostScratch) {
        let (s, scratch) = self.conn.as_mut().expect("connection present until drop");
        (s, scratch)
    }

    /// The socket alone.
    pub fn stream(&mut self) -> &mut TcpStream {
        self.parts().0
    }

    /// Consume without returning the connection to the pool.
    pub fn discard(mut self) {
        self.conn = None;
    }
}

impl Drop for PooledConn<'_> {
    fn drop(&mut self) {
        if let Some((stream, scratch)) = self.conn.take() {
            self.pool.checkin(stream, scratch);
        }
    }
}

/// A reply to a pooled HTTP call.
#[derive(Clone, Debug)]
pub struct HttpReply {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: Vec<u8>,
    /// Request bytes written to the wire (head + framing + payload).
    pub wire_bytes: usize,
}

/// A pooled keep-alive HTTP client: POST a gather list, read the reply,
/// return the connection to the pool. Shareable across threads (`&self`
/// API); each call checks a connection out for its exclusive use.
pub struct HttpPoolClient {
    pool: ConnectionPool,
    cfg: RequestConfig,
    bytes: AtomicU64,
}

impl HttpPoolClient {
    /// Client for `addr` posting per `cfg`, pooling per `pool_cfg`.
    pub fn new(addr: SocketAddr, cfg: RequestConfig, pool_cfg: PoolConfig) -> Self {
        HttpPoolClient {
            pool: ConnectionPool::new(addr, pool_cfg),
            cfg,
            bytes: AtomicU64::new(0),
        }
    }

    /// The underlying pool (stats, reaping).
    pub fn pool(&self) -> &ConnectionPool {
        &self.pool
    }

    /// Attach an observability registry (see [`ConnectionPool::set_metrics`]).
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.pool.set_metrics(metrics);
    }

    /// POST `body` and read the response. A reused connection that fails
    /// the exchange is discarded and the call retried once on a fresh
    /// connection — the template was not consumed, so the resend is free
    /// (the stale socket is the only thing replaced). Errors on a fresh
    /// connection propagate: the endpoint itself is down.
    pub fn call(&self, body: &[IoSlice<'_>]) -> io::Result<HttpReply> {
        self.with_retry(|conn| Self::exchange(conn, &self.cfg, body))
    }

    /// Issue a bodiless keep-alive `GET` for `path` over a pooled
    /// connection — how the throughput bench and integration tests scrape
    /// `GET /metrics` mid-load without opening a fresh socket.
    pub fn get(&self, path: &str) -> io::Result<HttpReply> {
        self.with_retry(|conn| {
            let mut head = Vec::new();
            render_get_request(&mut head, path, &self.cfg.host);
            let stream = conn.stream();
            stream.write_all(&head)?;
            stream.flush()?;
            let (status, resp) = read_response(stream)?;
            Ok(HttpReply {
                status,
                body: resp,
                wire_bytes: head.len(),
            })
        })
    }

    /// Checkout/exchange with the stale-socket retry policy: a reused
    /// connection that fails the exchange is discarded and the call
    /// retried once on a fresh connection.
    fn with_retry(
        &self,
        mut exchange: impl FnMut(&mut PooledConn<'_>) -> io::Result<HttpReply>,
    ) -> io::Result<HttpReply> {
        let mut attempt = 0;
        loop {
            let mut conn = self.pool.checkout()?;
            let reused = conn.reused;
            match exchange(&mut conn) {
                Ok(reply) => {
                    self.bytes
                        .fetch_add(reply.wire_bytes as u64, Ordering::Relaxed);
                    return Ok(reply);
                }
                Err(e) => {
                    conn.discard();
                    if reused && attempt == 0 && retryable(&e) {
                        self.pool.stats.retries.fetch_add(1, Ordering::Relaxed);
                        if let Some(m) = &self.pool.metrics {
                            m.add(Counter::PoolRetries, 1);
                            m.trace(TraceKind::PoolReconnect);
                        }
                        attempt += 1;
                        continue;
                    }
                    return Err(e);
                }
            }
        }
    }

    fn exchange(
        conn: &mut PooledConn<'_>,
        cfg: &RequestConfig,
        body: &[IoSlice<'_>],
    ) -> io::Result<HttpReply> {
        let (stream, scratch) = conn.parts();
        let wire_bytes = post_gather_vectored(stream, cfg, body, scratch)?;
        let (status, resp) = read_response(stream)?;
        Ok(HttpReply {
            status,
            body: resp,
            wire_bytes,
        })
    }
}

/// Errors that signal a stale keep-alive socket rather than a down or
/// misbehaving endpoint.
fn retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::NotConnected
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::WriteZero
    )
}

impl Transport for HttpPoolClient {
    fn send_message(&mut self, message: &[IoSlice<'_>]) -> io::Result<usize> {
        let reply = self.call(message)?;
        if reply.status != 200 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("HTTP {}", reply.status),
            ));
        }
        Ok(reply.wire_bytes)
    }

    fn bytes_sent(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{render_response, HttpVersion, RequestReader};
    use crate::server::{ServerMode, TestServer};
    use std::io::Write;
    use std::net::TcpListener;

    fn client_for(addr: SocketAddr, pool_cfg: PoolConfig) -> HttpPoolClient {
        HttpPoolClient::new(
            addr,
            RequestConfig::loopback(HttpVersion::Http11Length),
            pool_cfg,
        )
    }

    #[test]
    fn sequential_calls_reuse_one_connection() {
        let server = TestServer::spawn(ServerMode::Collect).unwrap();
        let client = client_for(server.addr(), PoolConfig::default());
        for i in 0..5 {
            let body = format!("<n>{i}</n>").into_bytes();
            let reply = client.call(&[IoSlice::new(&body)]).unwrap();
            assert_eq!(reply.status, 200);
            assert_eq!(reply.body, b"<ack/>");
        }
        let stats = client.pool().stats();
        assert_eq!(stats.created, 1, "one connection serves all 5 calls");
        assert_eq!(stats.reused, 4);
        drop(client);
        let reqs = server.stop_collecting();
        assert_eq!(reqs.len(), 5);
    }

    #[test]
    fn expired_idle_connections_are_replaced() {
        let server = TestServer::spawn(ServerMode::Collect).unwrap();
        let client = client_for(
            server.addr(),
            PoolConfig {
                idle_timeout: Duration::from_millis(1),
                ..PoolConfig::default()
            },
        );
        let body = b"<x/>".to_vec();
        client.call(&[IoSlice::new(&body)]).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        client.call(&[IoSlice::new(&body)]).unwrap();
        let stats = client.pool().stats();
        assert_eq!(stats.created, 2);
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.reused, 0);
        drop(client);
        server.stop();
    }

    #[test]
    fn reap_drops_expired_idles() {
        let server = TestServer::spawn(ServerMode::Collect).unwrap();
        let client = client_for(
            server.addr(),
            PoolConfig {
                idle_timeout: Duration::from_millis(1),
                ..PoolConfig::default()
            },
        );
        let body = b"<x/>".to_vec();
        client.call(&[IoSlice::new(&body)]).unwrap();
        assert_eq!(client.pool().idle_count(), 1);
        std::thread::sleep(Duration::from_millis(10));
        client.pool().reap();
        assert_eq!(client.pool().idle_count(), 0);
        assert_eq!(client.pool().stats().expired, 1);
        drop(client);
        server.stop();
    }

    #[test]
    fn health_check_catches_peer_close() {
        // Manual one-shot server: accept, respond to one request, close.
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (mut s, _) = listener.accept().unwrap();
                let mut reader = RequestReader::new(s.try_clone().unwrap());
                let _ = reader.next_request().unwrap();
                let mut resp = Vec::new();
                render_response(&mut resp, 200, "OK", b"<one/>");
                s.write_all(&resp).unwrap();
                // Connection drops here: the pooled socket goes stale.
            }
        });
        let client = client_for(addr, PoolConfig::default());
        let body = b"<x/>".to_vec();
        client.call(&[IoSlice::new(&body)]).unwrap();
        // Give the FIN time to arrive so the health check (not the
        // mid-exchange retry) is what catches the stale socket.
        std::thread::sleep(Duration::from_millis(30));
        client.call(&[IoSlice::new(&body)]).unwrap();
        let stats = client.pool().stats();
        assert_eq!(stats.created, 2);
        assert_eq!(stats.stale, 1);
        server.join().unwrap();
    }

    #[test]
    fn mid_exchange_death_retries_on_fresh_connection() {
        // Server: first connection answers one request then swallows the
        // next and closes WITHOUT responding (stale keep-alive mid-call);
        // second connection answers normally.
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut resp = Vec::new();
            {
                let (mut s, _) = listener.accept().unwrap();
                let mut reader = RequestReader::new(s.try_clone().unwrap());
                let _ = reader.next_request().unwrap();
                render_response(&mut resp, 200, "OK", b"<a/>");
                s.write_all(&resp).unwrap();
                // Read the second request fully, then close (stream AND
                // reader clone, so the FIN actually goes out) with no
                // response: the client sees a clean write + EOF on read.
                let _ = reader.next_request();
            }
            let (mut s, _) = listener.accept().unwrap();
            let mut reader = RequestReader::new(s.try_clone().unwrap());
            let _ = reader.next_request().unwrap();
            render_response(&mut resp, 200, "OK", b"<b/>");
            s.write_all(&resp).unwrap();
            let _ = reader.next_request(); // wait for client close
        });
        let client = client_for(addr, PoolConfig::default());
        let body = b"<x/>".to_vec();
        let first = client.call(&[IoSlice::new(&body)]).unwrap();
        assert_eq!(first.body, b"<a/>");
        let second = client.call(&[IoSlice::new(&body)]).unwrap();
        assert_eq!(second.body, b"<b/>", "transparent retry returned data");
        let stats = client.pool().stats();
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.created, 2);
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn fresh_connection_failure_propagates() {
        // Nothing listening: checkout fails, no silent retry loop.
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener);
        let client = client_for(addr, PoolConfig::default());
        let body = b"<x/>".to_vec();
        assert!(client.call(&[IoSlice::new(&body)]).is_err());
        assert_eq!(client.pool().stats().retries, 0);
    }

    #[test]
    fn pool_metrics_mirror_pool_stats() {
        let metrics = Metrics::shared();
        let server = TestServer::spawn(ServerMode::Collect).unwrap();
        let mut client = client_for(server.addr(), PoolConfig::default());
        client.set_metrics(Arc::clone(&metrics));
        let body = b"<x/>".to_vec();
        for _ in 0..4 {
            client.call(&[IoSlice::new(&body)]).unwrap();
        }
        let stats = client.pool().stats();
        let snap = metrics.snapshot();
        assert_eq!(snap.get(Counter::PoolCreated), stats.created);
        assert_eq!(snap.get(Counter::PoolReused), stats.reused);
        assert_eq!(snap.get(Counter::PoolRetries), stats.retries);
        assert_eq!(
            snap.hist(HistId::PoolCheckout).count(),
            stats.created + stats.reused,
            "one checkout latency observation per checkout"
        );
        let (events, _) = metrics.trace_ring().snapshot();
        let checkouts = events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::PoolCheckout { .. }))
            .count() as u64;
        assert_eq!(checkouts, stats.created + stats.reused);
        drop(client);
        server.stop();
    }

    #[test]
    fn pooled_get_scrapes_metrics_endpoint() {
        let metrics = Metrics::shared();
        let server = TestServer::spawn_with_metrics(
            ServerMode::Ack,
            crate::server::ServerOptions::default(),
            Arc::clone(&metrics),
        )
        .unwrap();
        let client = client_for(server.addr(), PoolConfig::default());
        let reply = client.get("/metrics").unwrap();
        assert_eq!(reply.status, 200);
        let text = String::from_utf8(reply.body).unwrap();
        assert_eq!(
            bsoap_obs::parse_value(&text, "bsoap_metrics_scrapes_total"),
            Some(1.0)
        );
        drop(client);
        server.stop();
    }

    #[test]
    fn max_idle_caps_pool_size() {
        let server = TestServer::spawn(ServerMode::Collect).unwrap();
        let client = client_for(
            server.addr(),
            PoolConfig {
                max_idle: 2,
                ..PoolConfig::default()
            },
        );
        // Four concurrent checkouts force four connections; on checkin
        // only two stay pooled.
        let body = b"<x/>".to_vec();
        let conns: Vec<_> = (0..4).map(|_| client.pool.checkout().unwrap()).collect();
        assert_eq!(client.pool().stats().created, 4);
        drop(conns);
        assert_eq!(client.pool().idle_count(), 2);
        // Still usable afterwards.
        client.call(&[IoSlice::new(&body)]).unwrap();
        drop(client);
        server.stop();
    }
}
