//! Client-side fault tolerance: deadlines, retry with decorrelated-jitter
//! backoff, and a per-endpoint circuit breaker.
//!
//! The paper assumes a cooperative receiver; this module is the
//! non-cooperative half. A [`FaultPolicy`] describes the budget and retry
//! shape of one endpoint's calls; [`Resilience`] executes attempts under
//! that policy:
//!
//! * every call opens a [`Deadline`] from the policy budget and threads it
//!   through checkout, connect, and socket timeouts;
//! * retryable failures are re-attempted up to `max_retries` times, with
//!   decorrelated-jitter sleeps taken on the injected [`Clock`] — a
//!   [`VirtualClock`](bsoap_obs::VirtualClock) makes the entire schedule
//!   deterministic and sleep-free in tests;
//! * a [`CircuitBreaker`] trips open after `breaker_threshold` consecutive
//!   failures, fails calls fast during the cooldown, lets one half-open
//!   probe through, and closes again on success.
//!
//! Everything is observable: `RetriesAttempted`, `BreakerOpens`,
//! `BreakerFastFails` and `DeadlinesExceeded` counters plus `Retry` /
//! `BreakerTransition` / `DeadlineExceeded` trace events.

use bsoap_obs::{
    Backoff, BreakerState, Clock, Counter, Deadline, Metrics, MonotonicClock, Recorder, TraceKind,
};
use parking_lot::Mutex;
use std::io;
use std::sync::Arc;
use std::time::Duration;

/// Fault-tolerance policy for one endpoint's calls.
#[derive(Clone, Copy, Debug)]
pub struct FaultPolicy {
    /// Per-call budget across checkout + connect + write + response read.
    /// `None` leaves every step unbounded (the seed behavior).
    pub deadline: Option<Duration>,
    /// Retries beyond the first attempt. The pool's free single retry on
    /// a reused-stale socket does not count against this.
    pub max_retries: u32,
    /// Backoff floor.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Consecutive failures that trip the breaker (`0` disables it).
    pub breaker_threshold: u32,
    /// How long an open breaker fails fast before one half-open probe.
    pub breaker_cooldown: Duration,
    /// Seed for the jitter draw — schedules replay exactly per seed.
    pub backoff_seed: u64,
}

impl Default for FaultPolicy {
    /// Seed-compatible defaults: no deadline, no policy retries, breaker
    /// off. Only the legacy stale-socket retry remains active.
    fn default() -> Self {
        FaultPolicy {
            deadline: None,
            max_retries: 0,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(1),
            breaker_threshold: 0,
            breaker_cooldown: Duration::from_secs(1),
            backoff_seed: 0x5EED_CAFE,
        }
    }
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_ns: u64,
}

/// A per-endpoint circuit breaker driven by an injected [`Clock`].
///
/// Closed → (threshold consecutive failures) → Open → (cooldown elapses,
/// next `allow` becomes the probe) → HalfOpen → Closed on probe success,
/// back to Open on probe failure. With `threshold == 0` the breaker is
/// inert: `allow` is always true.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown_ns: u64,
    clock: Arc<dyn Clock>,
    inner: Mutex<BreakerInner>,
    metrics: Option<Arc<Metrics>>,
}

impl CircuitBreaker {
    /// Breaker tripping after `threshold` consecutive failures, cooling
    /// down for `cooldown` on `clock`.
    pub fn new(threshold: u32, cooldown: Duration, clock: Arc<dyn Clock>) -> Self {
        CircuitBreaker {
            threshold,
            cooldown_ns: cooldown.as_nanos() as u64,
            clock,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at_ns: 0,
            }),
            metrics: None,
        }
    }

    /// Attach an observability registry (`BreakerOpens` counter plus
    /// transition trace events).
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.metrics = Some(metrics);
    }

    /// May a call proceed? In the open state this is the fail-fast gate;
    /// once the cooldown elapses exactly one caller is admitted as the
    /// half-open probe (subsequent callers keep failing fast until the
    /// probe reports).
    pub fn allow(&self) -> bool {
        if self.threshold == 0 {
            return true;
        }
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false, // probe already in flight
            BreakerState::Open => {
                let now = self.clock.now_ns();
                if now.saturating_sub(inner.opened_at_ns) >= self.cooldown_ns {
                    inner.state = BreakerState::HalfOpen;
                    self.trace_transition(BreakerState::HalfOpen);
                    true // this caller is the probe
                } else {
                    false
                }
            }
        }
    }

    /// Report a successful call: failures reset, a half-open probe closes
    /// the breaker.
    pub fn record_success(&self) {
        if self.threshold == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.consecutive_failures = 0;
        if inner.state != BreakerState::Closed {
            inner.state = BreakerState::Closed;
            self.trace_transition(BreakerState::Closed);
        }
    }

    /// Report a failed call: the failure streak grows; crossing the
    /// threshold (or failing the half-open probe) opens the breaker.
    pub fn record_failure(&self) {
        if self.threshold == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let trip = match inner.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => inner.consecutive_failures >= self.threshold,
            BreakerState::Open => false,
        };
        if trip {
            inner.state = BreakerState::Open;
            inner.opened_at_ns = self.clock.now_ns();
            if let Some(m) = &self.metrics {
                m.add(Counter::BreakerOpens, 1);
            }
            self.trace_transition(BreakerState::Open);
        }
    }

    /// Current raw state (an elapsed cooldown still reads `Open` until the
    /// next `allow` promotes it).
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    fn trace_transition(&self, to: BreakerState) {
        if let Some(m) = &self.metrics {
            m.trace(TraceKind::BreakerTransition { to });
        }
    }
}

/// One failed attempt, as reported by the attempt closure.
#[derive(Debug)]
pub struct AttemptFailure {
    /// The I/O error the attempt died with.
    pub error: io::Error,
    /// Whether this failure qualifies for the legacy free retry (a reused
    /// pooled socket that went stale mid-exchange — the endpoint is not
    /// implicated, only the idle socket).
    pub free_retry: bool,
}

impl AttemptFailure {
    /// A failure with no free-retry claim.
    pub fn hard(error: io::Error) -> Self {
        AttemptFailure {
            error,
            free_retry: false,
        }
    }
}

/// Executes attempts under a [`FaultPolicy`]: deadline, breaker gate,
/// free stale-socket retry, then policy retries with jittered backoff.
#[derive(Debug)]
pub struct Resilience {
    policy: FaultPolicy,
    breaker: CircuitBreaker,
    clock: Arc<dyn Clock>,
    metrics: Option<Arc<Metrics>>,
}

impl Resilience {
    /// Executor for `policy` on the real clock.
    pub fn new(policy: FaultPolicy) -> Self {
        Self::with_clock(policy, Arc::new(MonotonicClock::new()))
    }

    /// Executor for `policy` on an injected clock (tests pass a
    /// [`VirtualClock`](bsoap_obs::VirtualClock): backoff sleeps advance
    /// it instead of blocking, and breaker cooldowns elapse on demand).
    pub fn with_clock(policy: FaultPolicy, clock: Arc<dyn Clock>) -> Self {
        Resilience {
            breaker: CircuitBreaker::new(
                policy.breaker_threshold,
                policy.breaker_cooldown,
                Arc::clone(&clock),
            ),
            policy,
            clock,
            metrics: None,
        }
    }

    /// Attach an observability registry (retry/deadline/breaker counters
    /// and trace events).
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.breaker.set_metrics(Arc::clone(&metrics));
        self.metrics = Some(metrics);
    }

    /// The policy in force.
    pub fn policy(&self) -> &FaultPolicy {
        &self.policy
    }

    /// The breaker (state inspection in tests).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// The clock attempts are timed on.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Run `attempt` until success, retry exhaustion, deadline expiry, or
    /// breaker fail-fast. The closure receives the call's [`Deadline`]
    /// (derive socket/connect timeouts from it) and the attempt ordinal.
    pub fn run<T>(
        &self,
        attempt: impl FnMut(&Deadline, u32) -> Result<T, AttemptFailure>,
    ) -> io::Result<T> {
        self.run_with(attempt, || {})
    }

    /// [`Resilience::run`] with a hook invoked each time the legacy free
    /// stale-socket retry is taken (the pool counts `PoolRetries` there).
    pub fn run_with<T>(
        &self,
        mut attempt: impl FnMut(&Deadline, u32) -> Result<T, AttemptFailure>,
        mut on_free_retry: impl FnMut(),
    ) -> io::Result<T> {
        let deadline = Deadline::from_budget(Arc::clone(&self.clock), self.policy.deadline);
        let mut backoff = Backoff::new(
            self.policy.backoff_base,
            self.policy.backoff_cap,
            self.policy.backoff_seed,
        );
        let mut free_used = false;
        let mut retries = 0u32;
        let mut attempt_no = 0u32;
        loop {
            // Deadline before breaker: `allow()` on an elapsed cooldown
            // admits this caller as the half-open probe, and a probe must
            // report back via record_success/record_failure. An expired
            // call runs no attempt and could never report, so it must
            // bail *before* it can be admitted — otherwise the breaker
            // wedges in HalfOpen ("probe in flight" forever).
            if deadline.expired() {
                return Err(self.deadline_exceeded());
            }
            if !self.breaker.allow() {
                if let Some(m) = &self.metrics {
                    m.add(Counter::BreakerFastFails, 1);
                }
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "circuit breaker open",
                ));
            }
            match attempt(&deadline, attempt_no) {
                Ok(v) => {
                    self.breaker.record_success();
                    return Ok(v);
                }
                Err(AttemptFailure { error, free_retry }) => {
                    self.breaker.record_failure();
                    attempt_no += 1;
                    if is_timeout(&error) && deadline.is_bounded() {
                        // Under a bounded deadline every socket timeout
                        // is sized to the remaining budget, so a timeout
                        // IS deadline expiry. Without a deadline a
                        // `TimedOut` came from somewhere else (an
                        // OS-level ETIMEDOUT, a user-set socket timeout)
                        // and falls through below, preserved as-is.
                        return Err(self.deadline_exceeded());
                    }
                    if free_retry && !free_used && stale_socket(&error) && !deadline.expired() {
                        free_used = true;
                        on_free_retry();
                        continue;
                    }
                    if retries < self.policy.max_retries
                        && policy_retryable(&error)
                        && !deadline.expired()
                    {
                        retries += 1;
                        let mut delay = backoff.next_delay();
                        if let Some(left) = deadline.remaining() {
                            delay = delay.min(left);
                        }
                        if let Some(m) = &self.metrics {
                            m.add(Counter::RetriesAttempted, 1);
                            m.trace(TraceKind::Retry {
                                attempt: retries as u64,
                                delay_ns: delay.as_nanos() as u64,
                            });
                        }
                        self.clock.sleep(delay);
                        continue;
                    }
                    return Err(error);
                }
            }
        }
    }

    fn deadline_exceeded(&self) -> io::Error {
        if let Some(m) = &self.metrics {
            m.add(Counter::DeadlinesExceeded, 1);
            m.trace(TraceKind::DeadlineExceeded);
        }
        Deadline::timed_out()
    }
}

/// Timeout spellings: `TimedOut` from `connect_timeout`, `WouldBlock`
/// from `SO_RCVTIMEO`/`SO_SNDTIMEO` on Unix.
pub(crate) fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

/// Errors that signal a stale keep-alive socket rather than a down or
/// misbehaving endpoint (the legacy free-retry set).
pub(crate) fn stale_socket(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::NotConnected
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::WriteZero
    )
}

/// Errors the retry policy considers transient: every stale-socket kind
/// plus connection refusal (a restarting endpoint).
pub(crate) fn policy_retryable(e: &io::Error) -> bool {
    stale_socket(e) || e.kind() == io::ErrorKind::ConnectionRefused
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsoap_obs::VirtualClock;

    fn vclock() -> Arc<VirtualClock> {
        Arc::new(VirtualClock::new())
    }

    fn policy() -> FaultPolicy {
        FaultPolicy {
            deadline: Some(Duration::from_secs(5)),
            max_retries: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(1),
            backoff_seed: 7,
        }
    }

    fn reset() -> io::Error {
        io::Error::new(io::ErrorKind::ConnectionReset, "reset")
    }

    #[test]
    fn retries_then_succeeds_with_virtual_sleeps() {
        let clock = vclock();
        let metrics = Metrics::with_clock(clock.clone());
        let mut r = Resilience::with_clock(policy(), clock.clone());
        r.set_metrics(Arc::new(metrics));
        let mut fails = 2;
        let out = r
            .run(|_, attempt| {
                if fails > 0 {
                    fails -= 1;
                    Err(AttemptFailure::hard(reset()))
                } else {
                    Ok(attempt)
                }
            })
            .unwrap();
        assert_eq!(out, 2, "succeeded on the third attempt");
        // Backoff slept on the virtual clock — time moved, thread didn't.
        assert!(clock.now_ns() >= 2 * 10_000_000);
    }

    #[test]
    fn retry_schedule_is_deterministic_per_seed() {
        let run_schedule = |seed: u64| -> Vec<u64> {
            let clock = vclock();
            let metrics = Arc::new(Metrics::with_clock(clock.clone()));
            let mut p = policy();
            p.backoff_seed = seed;
            let mut r = Resilience::with_clock(p, clock.clone());
            r.set_metrics(Arc::clone(&metrics));
            let _ = r.run::<()>(|_, _| Err(AttemptFailure::hard(reset())));
            let (events, _) = metrics.trace_ring().snapshot();
            events
                .iter()
                .filter_map(|e| match e.kind {
                    TraceKind::Retry { delay_ns, .. } => Some(delay_ns),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(run_schedule(11), run_schedule(11));
        assert_ne!(run_schedule(11), run_schedule(12));
    }

    #[test]
    fn exhausted_retries_return_last_error() {
        let clock = vclock();
        let r = Resilience::with_clock(
            FaultPolicy {
                breaker_threshold: 0,
                ..policy()
            },
            clock,
        );
        let mut attempts = 0;
        let err = r
            .run::<()>(|_, _| {
                attempts += 1;
                Err(AttemptFailure::hard(reset()))
            })
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(attempts, 4, "1 try + 3 retries");
    }

    #[test]
    fn timeout_short_circuits_retries() {
        let clock = vclock();
        let metrics = Arc::new(Metrics::with_clock(clock.clone()));
        let mut r = Resilience::with_clock(policy(), clock);
        r.set_metrics(Arc::clone(&metrics));
        let mut attempts = 0;
        let err = r
            .run::<()>(|_, _| {
                attempts += 1;
                Err(AttemptFailure::hard(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "rcvtimeo",
                )))
            })
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert_eq!(attempts, 1, "budget spent — no point retrying");
        assert_eq!(metrics.snapshot().get(Counter::DeadlinesExceeded), 1);
    }

    #[test]
    fn deadline_expiry_stops_the_schedule() {
        let clock = vclock();
        let metrics = Arc::new(Metrics::with_clock(clock.clone()));
        let mut p = policy();
        p.deadline = Some(Duration::from_millis(25));
        p.max_retries = 100;
        p.breaker_threshold = 0;
        let mut r = Resilience::with_clock(p, clock.clone());
        r.set_metrics(Arc::clone(&metrics));
        let err = r
            .run::<()>(|_, _| Err(AttemptFailure::hard(reset())))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        let snap = metrics.snapshot();
        assert_eq!(snap.get(Counter::DeadlinesExceeded), 1);
        assert!(
            snap.get(Counter::RetriesAttempted) < 100,
            "deadline cut the schedule short"
        );
        // Sleeps were clamped to the remaining budget: virtual time did
        // not overshoot the deadline by more than the final clamp.
        assert!(clock.now_ns() <= 25_000_000 + 1);
    }

    #[test]
    fn breaker_opens_fails_fast_probes_and_recovers() {
        let clock = vclock();
        let metrics = Arc::new(Metrics::with_clock(clock.clone()));
        let mut p = policy();
        p.max_retries = 0;
        p.deadline = None;
        let mut r = Resilience::with_clock(p, clock.clone());
        r.set_metrics(Arc::clone(&metrics));

        // Three failing calls trip the breaker.
        for _ in 0..3 {
            let e = r
                .run::<()>(|_, _| Err(AttemptFailure::hard(reset())))
                .unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);
        }
        assert_eq!(r.breaker().state(), BreakerState::Open);
        assert_eq!(metrics.snapshot().get(Counter::BreakerOpens), 1);

        // Open: fail fast without running the attempt.
        let mut ran = false;
        let e = r
            .run::<()>(|_, _| {
                ran = true;
                Ok(())
            })
            .unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::ConnectionRefused);
        assert!(!ran, "attempt never executed while open");
        assert_eq!(metrics.snapshot().get(Counter::BreakerFastFails), 1);

        // Cooldown elapses on the virtual clock; the next call probes and
        // closes the breaker.
        clock.advance(1_000_000_000);
        r.run::<()>(|_, _| Ok(())).unwrap();
        assert_eq!(r.breaker().state(), BreakerState::Closed);

        let (events, _) = metrics.trace_ring().snapshot();
        let transitions: Vec<_> = events
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::BreakerTransition { to } => Some(to),
                _ => None,
            })
            .collect();
        assert_eq!(
            transitions,
            vec![
                BreakerState::Open,
                BreakerState::HalfOpen,
                BreakerState::Closed
            ]
        );
    }

    #[test]
    fn failed_probe_reopens() {
        let clock = vclock();
        let mut p = policy();
        p.max_retries = 0;
        p.deadline = None;
        let r = Resilience::with_clock(p, clock.clone());
        for _ in 0..3 {
            let _ = r.run::<()>(|_, _| Err(AttemptFailure::hard(reset())));
        }
        assert_eq!(r.breaker().state(), BreakerState::Open);
        clock.advance(1_000_000_000);
        let _ = r.run::<()>(|_, _| Err(AttemptFailure::hard(reset())));
        assert_eq!(r.breaker().state(), BreakerState::Open, "probe failed");
        // And it fails fast again until the next cooldown.
        let e = r.run::<()>(|_, _| Ok(())).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let clock = vclock();
        let breaker = CircuitBreaker::new(1, Duration::from_secs(1), clock.clone());
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        clock.advance(1_000_000_000);
        assert!(breaker.allow(), "first caller is the probe");
        assert!(!breaker.allow(), "second caller fails fast");
        assert!(!breaker.allow());
        breaker.record_success();
        assert!(breaker.allow(), "closed after probe success");
    }

    #[test]
    fn expired_deadline_never_wedges_a_cooling_breaker() {
        // Regression: a retry backoff sleep that both elapses the breaker
        // cooldown and exhausts the deadline must NOT let the expired
        // call be admitted as the half-open probe (it runs no attempt, so
        // it could never report back and the breaker would stay HalfOpen
        // — "probe in flight" — forever).
        let clock = vclock();
        let p = FaultPolicy {
            deadline: Some(Duration::from_millis(25)),
            max_retries: 1,
            backoff_base: Duration::from_millis(100), // clamps to remaining
            backoff_cap: Duration::from_millis(100),
            breaker_threshold: 1,
            breaker_cooldown: Duration::from_millis(20),
            backoff_seed: 7,
        };
        let r = Resilience::with_clock(p, clock.clone());
        // One failing attempt trips the breaker; the retry sleep is
        // clamped to the remaining 25ms, which also outlasts the 20ms
        // cooldown — the loop re-enters with the deadline spent.
        let err = r
            .run::<()>(|_, _| Err(AttemptFailure::hard(reset())))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert_eq!(
            r.breaker().state(),
            BreakerState::Open,
            "the expired call must not have been admitted as the probe"
        );
        // A later healthy call gets the probe slot and closes the breaker
        // — with the probe slot leaked this would fail fast forever.
        clock.advance(20_000_000);
        r.run::<()>(|_, _| Ok(())).unwrap();
        assert_eq!(r.breaker().state(), BreakerState::Closed);
    }

    #[test]
    fn bare_timeout_without_a_deadline_stays_a_plain_io_error() {
        // With no deadline in force, socket timeouts are never set by the
        // policy, so a TimedOut attempt error (an OS-level ETIMEDOUT, a
        // user-set socket timeout) is NOT deadline expiry: it must pass
        // through unconverted and uncounted.
        let clock = vclock();
        let metrics = Arc::new(Metrics::with_clock(clock.clone()));
        let mut p = policy();
        p.deadline = None;
        p.breaker_threshold = 0;
        let mut r = Resilience::with_clock(p, clock);
        r.set_metrics(Arc::clone(&metrics));
        let mut attempts = 0;
        let err = r
            .run::<()>(|_, _| {
                attempts += 1;
                Err(AttemptFailure::hard(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "ETIMEDOUT",
                )))
            })
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(
            !Deadline::is_deadline_error(&err),
            "no marker: this is not a budget expiry"
        );
        assert_eq!(attempts, 1, "timeouts are not policy-retryable");
        assert_eq!(metrics.snapshot().get(Counter::DeadlinesExceeded), 0);
    }

    #[test]
    fn free_retry_does_not_consume_policy_budget() {
        let clock = vclock();
        let mut p = policy();
        p.max_retries = 1;
        p.breaker_threshold = 0;
        let r = Resilience::with_clock(p, clock);
        let mut attempts = 0;
        let mut free_retries = 0;
        let err = r
            .run_with::<()>(
                |_, _| {
                    attempts += 1;
                    Err(AttemptFailure {
                        error: reset(),
                        free_retry: attempts == 1,
                    })
                },
                || free_retries += 1,
            )
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(free_retries, 1);
        assert_eq!(attempts, 3, "1 try + 1 free retry + 1 policy retry");
    }
}
