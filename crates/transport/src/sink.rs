//! In-process counting sink.
//!
//! The paper's Send Time measurements stop "right after the final `send()`
//! system call"; the server never parses. A loopback kernel socket still
//! adds scheduler and syscall noise, so for deterministic benchmarking the
//! sink accepts bytes at memory speed, counts them, and (optionally)
//! touches every byte to model the copy into a socket buffer.

use crate::Transport;
use std::io::{self, IoSlice, Write};

/// Byte-counting discard sink.
///
/// `touch_bytes` controls whether accepted bytes are read (checksummed).
/// With it off, "sending" is O(chunks); with it on, it is O(bytes) — a
/// stand-in for the kernel's copy into `SO_SNDBUF`, which the paper's
/// numbers include. Benchmarks use `touch_bytes = true`.
#[derive(Debug)]
pub struct SinkTransport {
    bytes: u64,
    messages: u64,
    touch_bytes: bool,
    checksum: u64,
}

impl SinkTransport {
    /// Sink that models the socket-buffer copy (reads every byte).
    pub fn new() -> Self {
        SinkTransport {
            bytes: 0,
            messages: 0,
            touch_bytes: true,
            checksum: 0,
        }
    }

    /// Sink that only counts (pure accounting; no per-byte work).
    pub fn counting_only() -> Self {
        SinkTransport {
            touch_bytes: false,
            ..Self::new()
        }
    }

    /// Messages accepted.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Rolling checksum over all accepted bytes (prevents the optimizer
    /// from deleting the byte-touch loop; also a cheap corruption canary).
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    fn absorb(&mut self, buf: &[u8]) {
        if self.touch_bytes {
            // 64-bit FNV-1a over the payload: one multiply + xor per byte,
            // comparable to a copy loop's per-byte cost.
            let mut h = self.checksum ^ 0xcbf2_9ce4_8422_2325;
            for &b in buf {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            self.checksum = h;
        }
        self.bytes += buf.len() as u64;
    }
}

impl Default for SinkTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl Write for SinkTransport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.absorb(buf);
        Ok(buf.len())
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        let mut n = 0;
        for b in bufs {
            self.absorb(b);
            n += b.len();
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Transport for SinkTransport {
    fn send_message(&mut self, message: &[IoSlice<'_>]) -> io::Result<usize> {
        let n = self.write_vectored(message)?;
        self.messages += 1;
        Ok(n)
    }

    fn bytes_sent(&self) -> u64 {
        self.bytes
    }
}

/// A sink that proves (or disproves) zero-copy sends.
///
/// Source buffers are registered up front; every slice the sink receives
/// is classified by pointer identity as **aliased** (it points into a
/// registered buffer — the bytes were never copied on the way here) or
/// **copied** (it lives anywhere else, e.g. an intermediate flattening
/// buffer). The zero-copy acceptance test asserts `copied_body_bytes()`
/// is zero while the wire bytes stay byte-identical to the copying path.
#[derive(Debug, Default)]
pub struct ProvenanceSink {
    ranges: Vec<(usize, usize)>,
    aliased: u64,
    copied: u64,
    out: Vec<u8>,
}

impl ProvenanceSink {
    /// Empty sink with no registered sources.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `buf` as a zero-copy source: slices pointing into it
    /// count as aliased.
    pub fn register(&mut self, buf: &[u8]) {
        let start = buf.as_ptr() as usize;
        self.ranges.push((start, start + buf.len()));
    }

    /// Bytes that arrived still pointing into a registered buffer.
    pub fn aliased_bytes(&self) -> u64 {
        self.aliased
    }

    /// Bytes that arrived from anywhere else (framing, or copies).
    pub fn copied_bytes(&self) -> u64 {
        self.copied
    }

    /// Everything received, in order (for byte-identity checks).
    pub fn bytes(&self) -> &[u8] {
        &self.out
    }

    fn classify(&mut self, buf: &[u8]) {
        let p = buf.as_ptr() as usize;
        let aliased = self
            .ranges
            .iter()
            .any(|&(a, b)| p >= a && p + buf.len() <= b);
        if aliased {
            self.aliased += buf.len() as u64;
        } else {
            self.copied += buf.len() as u64;
        }
        self.out.extend_from_slice(buf);
    }
}

impl Write for ProvenanceSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.classify(buf);
        Ok(buf.len())
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        let mut n = 0;
        for b in bufs {
            self.classify(b);
            n += b.len();
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_bytes_and_messages() {
        let mut s = SinkTransport::new();
        let a = b"hello".to_vec();
        let b = b" world".to_vec();
        let n = s
            .send_message(&[IoSlice::new(&a), IoSlice::new(&b)])
            .unwrap();
        assert_eq!(n, 11);
        assert_eq!(s.bytes_sent(), 11);
        assert_eq!(s.messages(), 1);
        s.send_message(&[IoSlice::new(&a)]).unwrap();
        assert_eq!(s.bytes_sent(), 16);
        assert_eq!(s.messages(), 2);
    }

    #[test]
    fn checksum_depends_on_content() {
        let mut a = SinkTransport::new();
        let mut b = SinkTransport::new();
        a.write_all(b"abc").unwrap();
        b.write_all(b"abd").unwrap();
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn counting_only_skips_checksum() {
        let mut s = SinkTransport::counting_only();
        s.write_all(b"abc").unwrap();
        assert_eq!(s.checksum(), 0);
        assert_eq!(s.bytes_sent(), 3);
    }

    #[test]
    fn works_as_plain_write_sink() {
        let mut s = SinkTransport::new();
        write!(s, "{}-{}", 1, 2).unwrap();
        assert_eq!(s.bytes_sent(), 3);
    }
}
