//! Deadline-ordered timer wheel for the event-loop server core.
//!
//! Each loop thread owns one wheel. Entries are keyed by
//! `(deadline_ns, seq)` in a `BTreeMap`, so the earliest deadline is the
//! first key — `epoll_wait`'s timeout is clamped to it and expired
//! entries pop in firing order. A connection holds at most one timer per
//! [`TimerKind`]; re-arming a kind replaces the previous deadline (this
//! is how a read-stall timer slides forward on every byte of progress).
//!
//! Deadlines are nanosecond readings of the metrics clock
//! (`Recorder::now_ns`), so a `VirtualClock` drives timers in tests
//! exactly as wall time does in production.

use std::collections::{BTreeMap, HashMap};

/// Which deadline a timer entry enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TimerKind {
    /// No read progress for `read_timeout` (slow-loris eviction; also
    /// covers the between-requests gap, mirroring the worker pool's
    /// socket read timeout).
    ReadStall,
    /// Whole-request budget (`request_timeout`), armed at the first byte
    /// of a request head and canceled when the request completes.
    RequestBudget,
    /// Idle keep-alive reaper (`idle_timeout`), armed only while the
    /// connection sits between requests with an empty buffer.
    IdleReap,
}

impl TimerKind {
    const ALL: [TimerKind; 3] = [
        TimerKind::ReadStall,
        TimerKind::RequestBudget,
        TimerKind::IdleReap,
    ];
}

/// Deadline-ordered timer store: O(log n) arm/cancel, O(1) peek.
#[derive(Debug, Default)]
pub struct TimerWheel {
    /// `(deadline_ns, seq) → (token, kind)`; seq breaks deadline ties in
    /// arming order.
    entries: BTreeMap<(u64, u64), (u64, TimerKind)>,
    /// Reverse index for cancel/re-arm.
    index: HashMap<(u64, TimerKind), (u64, u64)>,
    seq: u64,
}

impl TimerWheel {
    /// Empty wheel.
    pub fn new() -> TimerWheel {
        TimerWheel::default()
    }

    /// Arm (or slide) the `kind` timer for `token` to `deadline_ns`.
    pub fn arm(&mut self, token: u64, kind: TimerKind, deadline_ns: u64) {
        self.cancel(token, kind);
        let key = (deadline_ns, self.seq);
        self.seq += 1;
        self.entries.insert(key, (token, kind));
        self.index.insert((token, kind), key);
    }

    /// Cancel the `kind` timer for `token`, if armed.
    pub fn cancel(&mut self, token: u64, kind: TimerKind) {
        if let Some(key) = self.index.remove(&(token, kind)) {
            self.entries.remove(&key);
        }
    }

    /// Cancel every timer held by `token` (connection teardown).
    pub fn cancel_all(&mut self, token: u64) {
        for kind in TimerKind::ALL {
            self.cancel(token, kind);
        }
    }

    /// Earliest armed deadline, if any.
    pub fn next_deadline_ns(&self) -> Option<u64> {
        self.entries.keys().next().map(|(d, _)| *d)
    }

    /// Pop every entry with `deadline_ns <= now_ns` into `out` (cleared
    /// first), in firing order.
    pub fn pop_expired(&mut self, now_ns: u64, out: &mut Vec<(u64, TimerKind)>) {
        out.clear();
        while let Some((&key, &(token, kind))) = self.entries.iter().next() {
            if key.0 > now_ns {
                break;
            }
            self.entries.remove(&key);
            self.index.remove(&(token, kind));
            out.push((token, kind));
        }
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no timers are armed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order_with_stable_ties() {
        let mut w = TimerWheel::new();
        w.arm(1, TimerKind::ReadStall, 300);
        w.arm(2, TimerKind::ReadStall, 100);
        w.arm(3, TimerKind::IdleReap, 100); // same deadline, armed later
        assert_eq!(w.next_deadline_ns(), Some(100));

        let mut fired = Vec::new();
        w.pop_expired(100, &mut fired);
        assert_eq!(
            fired,
            vec![(2, TimerKind::ReadStall), (3, TimerKind::IdleReap)]
        );
        assert_eq!(w.next_deadline_ns(), Some(300));
        w.pop_expired(299, &mut fired);
        assert!(fired.is_empty());
        w.pop_expired(300, &mut fired);
        assert_eq!(fired, vec![(1, TimerKind::ReadStall)]);
        assert!(w.is_empty());
    }

    #[test]
    fn rearm_slides_the_deadline() {
        let mut w = TimerWheel::new();
        w.arm(7, TimerKind::ReadStall, 50);
        w.arm(7, TimerKind::ReadStall, 500); // progress: slide forward
        assert_eq!(w.len(), 1);
        let mut fired = Vec::new();
        w.pop_expired(499, &mut fired);
        assert!(fired.is_empty(), "old deadline must not fire");
        w.pop_expired(500, &mut fired);
        assert_eq!(fired, vec![(7, TimerKind::ReadStall)]);
    }

    #[test]
    fn cancel_and_cancel_all_remove_entries() {
        let mut w = TimerWheel::new();
        w.arm(1, TimerKind::ReadStall, 10);
        w.arm(1, TimerKind::RequestBudget, 20);
        w.arm(2, TimerKind::IdleReap, 30);
        w.cancel(1, TimerKind::ReadStall);
        assert_eq!(w.len(), 2);
        w.cancel_all(1);
        assert_eq!(w.len(), 1);
        assert_eq!(w.next_deadline_ns(), Some(30));
        w.cancel(2, TimerKind::ReadStall); // not armed: no-op
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn distinct_kinds_per_token_coexist() {
        let mut w = TimerWheel::new();
        w.arm(9, TimerKind::ReadStall, 40);
        w.arm(9, TimerKind::RequestBudget, 120);
        w.arm(9, TimerKind::ReadStall, 80); // slides only ReadStall
        let mut fired = Vec::new();
        w.pop_expired(200, &mut fired);
        assert_eq!(
            fired,
            vec![(9, TimerKind::ReadStall), (9, TimerKind::RequestBudget)]
        );
    }
}
