//! Kernel dispatch substrate: which byte-kernel implementation runs.
//!
//! The hot per-byte loops of the engine — XML escape scanning
//! (`bsoap-xml`), width-stuffed integer encoding (`bsoap-convert`) and
//! coalesced gap shifting (`bsoap-chunks`) — each exist in two forms: a
//! portable scalar implementation (the *oracle*: always available, always
//! correct, the reference the property tests compare against) and a wide
//! SIMD/branchless form gated on runtime CPU-feature detection.
//!
//! This crate owns the three pieces every kernel crate shares:
//!
//! * [`KernelPolicy`] — the engine-facing knob (`Auto` / `Scalar` /
//!   `ForcedSimd`), carried on `EngineConfig` and threaded down to each
//!   kernel call site;
//! * [`resolve`] — policy → [`SimdLevel`], combining the policy with
//!   cached CPU detection and the `BSOAP_KERNEL` environment override
//!   (the CI lever that force-disables SIMD for a whole test run);
//! * the process-global SIMD hit counter ([`record_simd_hits`] /
//!   [`take_simd_hits`]) that `bsoap-core` folds into the
//!   `SimdKernelHits` observability counter once per flush.
//!
//! Dispatch is deliberately *coarse*: callers resolve once per string /
//! field / shift pass, never per byte, so the scalar fallback pays one
//! relaxed atomic load and no indirect calls.

#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which byte-kernel implementations the engine may use.
///
/// The scalar code is always compiled and always correct; SIMD paths are
/// byte-identical accelerations proven by differential property tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KernelPolicy {
    /// Use the widest SIMD level the CPU supports (scalar when none).
    #[default]
    Auto,
    /// Scalar kernels only — the differential oracle and the safe
    /// operating point on any platform.
    Scalar,
    /// Use SIMD even where the heuristics would not bother; still falls
    /// back to scalar when the CPU offers nothing (correctness never
    /// requires SIMD).
    ForcedSimd,
}

impl KernelPolicy {
    /// Parse the `BSOAP_KERNEL` environment value (`auto`/`scalar`/`simd`).
    pub fn parse(s: &str) -> Option<KernelPolicy> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(KernelPolicy::Auto),
            "scalar" => Some(KernelPolicy::Scalar),
            "simd" | "forced" | "forced_simd" => Some(KernelPolicy::ForcedSimd),
            _ => None,
        }
    }
}

/// The SIMD instruction level a resolved kernel call may use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Scalar only.
    None,
    /// 16-byte SSE2 lanes (baseline on `x86_64`).
    Sse2,
    /// 32-byte AVX2 lanes (runtime-detected).
    Avx2,
}

impl SimdLevel {
    /// True when any SIMD path may run.
    #[inline]
    pub fn is_simd(self) -> bool {
        self != SimdLevel::None
    }
}

/// Cached CPU detection: 0 = undetected, else `SimdLevel as u8 + 1`.
static DETECTED: AtomicU8 = AtomicU8::new(0);

fn detect_uncached() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        // SSE2 is part of the x86_64 baseline; AVX2 needs a runtime check.
        if std::arch::is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else {
            SimdLevel::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdLevel::None
    }
}

/// The widest SIMD level this CPU supports (cached after the first call).
#[inline]
pub fn detected_level() -> SimdLevel {
    match DETECTED.load(Ordering::Relaxed) {
        0 => {
            let lvl = detect_uncached();
            DETECTED.store(lvl as u8 + 1, Ordering::Relaxed);
            lvl
        }
        1 => SimdLevel::None,
        2 => SimdLevel::Sse2,
        _ => SimdLevel::Avx2,
    }
}

/// Cached `BSOAP_KERNEL` environment override (read once per process).
fn env_override() -> Option<KernelPolicy> {
    static ENV: OnceLock<Option<KernelPolicy>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("BSOAP_KERNEL")
            .ok()
            .and_then(|v| KernelPolicy::parse(&v))
    })
}

/// Resolve a policy to the SIMD level a kernel call may use right now.
///
/// Precedence: the `BSOAP_KERNEL` environment variable (the CI
/// force-disable lever) beats the policy, which beats detection. A
/// `ForcedSimd` resolution on a CPU with no SIMD is still
/// [`SimdLevel::None`] — no platform needs SIMD for correctness.
#[inline]
pub fn resolve(policy: KernelPolicy) -> SimdLevel {
    let effective = env_override().unwrap_or(policy);
    match effective {
        KernelPolicy::Scalar => SimdLevel::None,
        KernelPolicy::Auto | KernelPolicy::ForcedSimd => detected_level(),
    }
}

/// Process-global count of SIMD kernel invocations (escape scans, stuffed
/// integer encodes, vectorized shift passes). Monotone; scooped by
/// [`take_simd_hits`].
static SIMD_HITS: AtomicU64 = AtomicU64::new(0);

/// Record `n` SIMD kernel invocations. Called by the kernel crates once
/// per call that took a SIMD path (not per lane or block).
#[inline]
pub fn record_simd_hits(n: u64) {
    if n > 0 {
        SIMD_HITS.fetch_add(n, Ordering::Relaxed);
    }
}

/// Take-and-reset the global SIMD hit count. `bsoap-core` calls this once
/// per flush (and per first-time build) to fold the delta into the
/// `SimdKernelHits` metric; swap semantics mean every hit is attributed
/// exactly once even with concurrent engines (per-engine attribution is
/// then approximate, the process total exact).
#[inline]
pub fn take_simd_hits() -> u64 {
    SIMD_HITS.swap(0, Ordering::Relaxed)
}

/// Current un-scooped SIMD hit count (test support; does not reset).
#[inline]
pub fn peek_simd_hits() -> u64 {
    SIMD_HITS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_policy_always_resolves_none() {
        assert_eq!(resolve(KernelPolicy::Scalar), SimdLevel::None);
    }

    #[test]
    fn auto_and_forced_resolve_to_detection() {
        // With no env override these must agree with the cached detection.
        if env_override().is_none() {
            assert_eq!(resolve(KernelPolicy::Auto), detected_level());
            assert_eq!(resolve(KernelPolicy::ForcedSimd), detected_level());
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn x86_64_detects_at_least_sse2() {
        assert!(detected_level() >= SimdLevel::Sse2);
    }

    #[test]
    fn policy_parse() {
        assert_eq!(KernelPolicy::parse("scalar"), Some(KernelPolicy::Scalar));
        assert_eq!(KernelPolicy::parse("SIMD"), Some(KernelPolicy::ForcedSimd));
        assert_eq!(KernelPolicy::parse("auto"), Some(KernelPolicy::Auto));
        assert_eq!(KernelPolicy::parse("bogus"), None);
    }

    #[test]
    fn hits_roundtrip() {
        take_simd_hits();
        record_simd_hits(3);
        record_simd_hits(0); // no-op
        assert!(peek_simd_hits() >= 3);
        let taken = take_simd_hits();
        assert!(taken >= 3);
    }

    #[test]
    fn level_ordering() {
        assert!(SimdLevel::None < SimdLevel::Sse2);
        assert!(SimdLevel::Sse2 < SimdLevel::Avx2);
        assert!(!SimdLevel::None.is_simd());
        assert!(SimdLevel::Avx2.is_simd());
    }
}
