//! # bsoap-obs — the observability layer
//!
//! Metrics and tracing for the differential-serialization engine. The
//! paper's argument is about *which tier a send takes* and *how much work
//! shifting and chunk management do* (HPDC 2004 §3–§4); this crate makes
//! those quantities visible on live traffic:
//!
//! * [`ShardedCounter`] — lock-free, cache-line-padded monotone counters;
//! * [`Histogram`] — fixed-bucket log-linear latency histograms (~3%
//!   relative error, wait-free recording, no allocation after construction);
//! * [`TraceRing`] — a bounded ring of per-send span events;
//! * [`Clock`] / [`VirtualClock`] — injectable time so timing-dependent
//!   tests run deterministically;
//! * [`Metrics`] — the registry tying these together, with
//!   [`Metrics::snapshot`] producing an [`EngineStats`] and
//!   [`Metrics::render_prometheus`] producing the `/metrics` text body.
//!
//! Everything is std-only: no new dependencies.
//!
//! ## Cost when disabled
//!
//! Components hold an `Option<Arc<Metrics>>`; the disabled path is a
//! `None` check (one branch, no atomics). A constructed registry can also
//! be switched off with [`Metrics::set_enabled`], turning every record
//! call into a single relaxed load.

mod clock;
mod counters;
mod deadline;
mod hist;
mod prom;
mod trace;

pub use clock::{Clock, MonotonicClock, VirtualClock};
pub use counters::{LevelGauge, MaxGauge, ShardedCounter};
pub use deadline::{Backoff, Deadline, DeadlineExpired};
pub use hist::{bucket_upper_ns, max_trackable_ns, HistSnapshot, Histogram, BUCKETS};
pub use prom::parse_value;
pub use trace::{BreakerState, TraceEvent, TraceKind, TraceRing};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The four send tiers of the paper's matching hierarchy, mirrored here so
/// the observability layer stays a leaf crate (core depends on obs, not
/// the other way around).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Full serialization from scratch.
    FirstTime,
    /// Saved message resent byte-for-byte.
    ContentMatch,
    /// Same structure; changed values rewritten in place.
    PerfectStructural,
    /// Structure changed; template regions shifted/regrown.
    PartialStructural,
}

impl Tier {
    /// All tiers in counter order.
    pub const ALL: [Tier; 4] = [
        Tier::FirstTime,
        Tier::ContentMatch,
        Tier::PerfectStructural,
        Tier::PartialStructural,
    ];

    /// Stable snake_case label (Prometheus `tier` label value).
    pub fn label(self) -> &'static str {
        match self {
            Tier::FirstTime => "first_time",
            Tier::ContentMatch => "content_match",
            Tier::PerfectStructural => "perfect_structural",
            Tier::PartialStructural => "partial_structural",
        }
    }

    /// Index into per-tier arrays.
    pub fn index(self) -> usize {
        match self {
            Tier::FirstTime => 0,
            Tier::ContentMatch => 1,
            Tier::PerfectStructural => 2,
            Tier::PartialStructural => 3,
        }
    }
}

macro_rules! metric_enum {
    ($(#[$meta:meta])* $name:ident { $($(#[$vmeta:meta])* $variant:ident => $label:literal,)+ }) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        pub enum $name {
            $($(#[$vmeta])* $variant,)+
        }

        impl $name {
            /// Every variant, in declaration (array-index) order.
            pub const ALL: &'static [$name] = &[$($name::$variant,)+];

            /// Number of variants.
            pub const COUNT: usize = $name::ALL.len();

            /// Array index of this variant.
            pub fn index(self) -> usize {
                self as usize
            }

            /// Prometheus metric name.
            pub fn name(self) -> &'static str {
                match self {
                    $($name::$variant => $label,)+
                }
            }
        }
    };
}

metric_enum! {
    /// Monotone engine counters.
    Counter {
        /// Sends that took the first-time tier.
        SendFirstTime => "bsoap_sends_total",
        /// Sends that took the content-match tier.
        SendContentMatch => "bsoap_sends_total",
        /// Sends that took the perfect-structural tier.
        SendPerfectStructural => "bsoap_sends_total",
        /// Sends that took the partial-structural tier.
        SendPartialStructural => "bsoap_sends_total",
        /// Dirty values rewritten into saved messages.
        ValuesWritten => "bsoap_values_written_total",
        /// Shift operations (tail moved to widen a field).
        Shifts => "bsoap_shifts_total",
        /// Steal operations (width taken from a neighbor's padding).
        Steals => "bsoap_steals_total",
        /// Chunk splits forced by field expansion.
        Splits => "bsoap_chunk_splits_total",
        /// Bytes moved by shifting.
        ShiftedBytes => "bsoap_shifted_bytes_total",
        /// DUT entries whose location was fixed up after shifts/splits.
        DutFixups => "bsoap_dut_fixups_total",
        /// Payload bytes handed to the transport.
        BytesSent => "bsoap_bytes_sent_total",
        /// Vectored write syscalls issued.
        WritevCalls => "bsoap_writev_calls_total",
        /// Vectored writes that returned short and had to resume.
        WritevPartials => "bsoap_writev_partials_total",
        /// Chunk allocations grown in place.
        ChunkGrows => "bsoap_chunk_grows_total",
        /// Empty chunks merged away after contraction.
        ChunkMerges => "bsoap_chunk_merges_total",
        /// Bytes moved by intra-chunk range moves (stealing).
        ChunkMovedBytes => "bsoap_chunk_moved_bytes_total",
        /// Portions handed to the pipelined sender.
        PipelinePortions => "bsoap_pipeline_portions_total",
        /// Pool connections dialed fresh.
        PoolCreated => "bsoap_pool_created_total",
        /// Pool checkouts satisfied by an idle connection.
        PoolReused => "bsoap_pool_reused_total",
        /// Pooled connections found dead at checkout.
        PoolStale => "bsoap_pool_stale_total",
        /// Pooled connections reaped by idle timeout.
        PoolExpired => "bsoap_pool_expired_total",
        /// Calls retried once on a stale pooled connection.
        PoolRetries => "bsoap_pool_retries_total",
        /// Connections accepted by the worker-pool server.
        ServerConnections => "bsoap_server_connections_total",
        /// Requests served.
        ServerRequests => "bsoap_server_requests_total",
        /// Response bytes written by the server.
        ServerBytesOut => "bsoap_server_bytes_out_total",
        /// `GET /metrics` scrapes served.
        MetricsScrapes => "bsoap_metrics_scrapes_total",
        /// Read-only send plans computed by the planner.
        PlansComputed => "bsoap_plans_computed_total",
        /// Sends where the cost gate discarded the template and fell back
        /// to a first-time serialization.
        CostFallbacks => "bsoap_cost_fallbacks_total",
        /// Coalesced right-to-left shift passes (one per chunk with
        /// planned width growth, regardless of how many fields grew).
        CoalescedShiftPasses => "bsoap_coalesced_shift_passes_total",
        /// Byte-kernel calls that took a SIMD/branchless path (escape
        /// scans, stuffed integer encodes, wide shift passes). Scooped
        /// from the process-global `bsoap-kernels` tally once per flush,
        /// so per-engine attribution is approximate but the process total
        /// is exact.
        SimdKernelHits => "bsoap_simd_kernel_hits_total",
        /// Send attempts re-issued by the retry policy (excludes the
        /// first attempt of each call).
        RetriesAttempted => "bsoap_retries_attempted_total",
        /// Circuit-breaker transitions into the open state.
        BreakerOpens => "bsoap_breaker_opens_total",
        /// Calls refused fast because the breaker was open.
        BreakerFastFails => "bsoap_breaker_fast_fails_total",
        /// Calls that ran out of deadline budget.
        DeadlinesExceeded => "bsoap_deadlines_exceeded_total",
        /// Sends made in degraded mode (stateless full serialization,
        /// no template retained).
        DegradedSends => "bsoap_degraded_sends_total",
        /// Malformed requests answered with 400 by the server.
        ServerBadRequests => "bsoap_server_bad_requests_total",
        /// Connections evicted by the server's per-connection read
        /// deadline (slow-loris defense).
        ServerTimeouts => "bsoap_server_timeouts_total",
        /// Window portions streamed by the chunk-overlay sender (§3.3):
        /// each is one re-serialization of the reused window fragment,
        /// flushed to the wire as its own HTTP chunk.
        OverlayPortions => "bsoap_overlay_portions_total",
        /// Payload bytes streamed through the overlay pipeline (prologue +
        /// portions + epilogue; excludes HTTP framing).
        OverlayBytesStreamed => "bsoap_overlay_bytes_streamed_total",
        /// Per-connection state-machine transitions on the event-loop
        /// server core (one per edge the connection's lifecycle takes).
        ConnStateTransitions => "bsoap_conn_state_transitions_total",
        /// Idle keep-alive connections reaped by the event-loop core's
        /// idle timer (distinct from [`Counter::ServerTimeouts`], which
        /// counts mid-request stalls and budget exhaustion).
        ServerIdleReaped => "bsoap_server_idle_reaped_total",
        /// Shared-store lookups that returned a usable saved template.
        TemplateHits => "bsoap_template_hits_total",
        /// Shared-store lookups that found nothing usable (no entry, or a
        /// structural match below the promotion bar) and forced a rebuild.
        TemplateMisses => "bsoap_template_misses_total",
        /// Templates dropped by the shared store: budget/quota eviction,
        /// per-key cap overflow, cost-fallback discard, degraded purge.
        TemplateEvictions => "bsoap_template_evictions_total",
        /// Sends that went out on the SOAP/XML wire lane.
        SendsXml => "bsoap_sends_xml_total",
        /// Sends that went out on the negotiated compact binary wire lane.
        SendsBinary => "bsoap_sends_binary_total",
    }
}

impl Counter {
    /// The send counter for a tier.
    pub fn send(tier: Tier) -> Counter {
        match tier {
            Tier::FirstTime => Counter::SendFirstTime,
            Tier::ContentMatch => Counter::SendContentMatch,
            Tier::PerfectStructural => Counter::SendPerfectStructural,
            Tier::PartialStructural => Counter::SendPartialStructural,
        }
    }
}

metric_enum! {
    /// Peak-value gauges.
    Gauge {
        /// Deepest the server accept queue ever got.
        QueueDepthPeak => "bsoap_queue_depth_peak",
        /// Most portions ever in flight in the pipelined sender.
        PipelineMaxInFlight => "bsoap_pipeline_max_in_flight",
        /// Largest window fragment (template bytes) the overlay sender
        /// ever held — the sender's memory bound, flat in array size.
        OverlayWindowPeakBytes => "bsoap_overlay_window_peak_bytes",
        /// Most connections the event-loop server core ever held open at
        /// once (the readiness loop's concurrency high-water mark).
        ConnectionsOpenPeak => "bsoap_connections_open_peak",
    }
}

metric_enum! {
    /// Settable up/down level gauges (current value, not a peak).
    Level {
        /// Template bytes currently resident in the shared store
        /// (templates plus reserved overlay-window fragments).
        TemplateBytesResident => "bsoap_template_bytes_resident",
    }
}

metric_enum! {
    /// Latency histogram identifiers.
    HistId {
        /// Client send latency, first-time tier.
        SendFirstTime => "bsoap_send_latency_seconds",
        /// Client send latency, content-match tier.
        SendContentMatch => "bsoap_send_latency_seconds",
        /// Client send latency, perfect-structural tier.
        SendPerfectStructural => "bsoap_send_latency_seconds",
        /// Client send latency, partial-structural tier.
        SendPartialStructural => "bsoap_send_latency_seconds",
        /// Server request handling latency.
        ServerRequest => "bsoap_request_latency_seconds",
        /// Pool checkout latency.
        PoolCheckout => "bsoap_pool_checkout_seconds",
    }
}

impl HistId {
    /// The send-latency histogram for a tier.
    pub fn send(tier: Tier) -> HistId {
        match tier {
            Tier::FirstTime => HistId::SendFirstTime,
            Tier::ContentMatch => HistId::SendContentMatch,
            Tier::PerfectStructural => HistId::SendPerfectStructural,
            Tier::PartialStructural => HistId::SendPartialStructural,
        }
    }
}

/// Sink for instrumentation events. [`Metrics`] is the real implementation;
/// the trait exists so tests and benches can substitute their own recorder
/// (or a no-op) without touching call sites.
pub trait Recorder: Send + Sync {
    /// Whether recording is on. Callers may skip work when false.
    fn is_enabled(&self) -> bool;
    /// Add to a counter.
    fn add(&self, c: Counter, delta: u64);
    /// Observe a peak-gauge value.
    fn gauge(&self, g: Gauge, v: u64);
    /// Record a latency observation in nanoseconds.
    fn observe_ns(&self, h: HistId, ns: u64);
    /// Drop a trace event into the ring.
    fn trace(&self, kind: TraceKind);
    /// Current time on the recorder's clock.
    fn now_ns(&self) -> u64;
}

/// Default trace-ring capacity (events).
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// The metrics registry: one per engine/server instance (or shared between
/// the two sides of a benchmark). All recording paths are lock-free except
/// the trace ring, which takes a short mutex.
pub struct Metrics {
    enabled: AtomicBool,
    clock: Arc<dyn Clock>,
    counters: [ShardedCounter; Counter::COUNT],
    gauges: [MaxGauge; Gauge::COUNT],
    levels: [LevelGauge; Level::COUNT],
    hists: [Histogram; HistId::COUNT],
    trace: TraceRing,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Registry on the real (monotonic) clock.
    pub fn new() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// Registry on an injected clock (tests pass a [`VirtualClock`]).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Metrics {
            enabled: AtomicBool::new(true),
            clock,
            counters: std::array::from_fn(|_| ShardedCounter::new()),
            gauges: std::array::from_fn(|_| MaxGauge::new()),
            levels: std::array::from_fn(|_| LevelGauge::new()),
            hists: std::array::from_fn(|_| Histogram::new()),
            trace: TraceRing::new(DEFAULT_TRACE_CAPACITY),
        }
    }

    /// Convenience: a shared, enabled registry.
    pub fn shared() -> Arc<Metrics> {
        Arc::new(Metrics::new())
    }

    /// Flip recording on/off at runtime. When off, every record call is a
    /// single relaxed load and branch.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// The injected clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The trace ring.
    pub fn trace_ring(&self) -> &TraceRing {
        &self.trace
    }

    /// Point-in-time aggregate of everything recorded so far.
    pub fn snapshot(&self) -> EngineStats {
        let (_, trace_dropped) = self.trace.snapshot();
        EngineStats {
            counters: std::array::from_fn(|i| self.counters[i].get()),
            gauges: std::array::from_fn(|i| self.gauges[i].get()),
            levels: std::array::from_fn(|i| self.levels[i].get()),
            hists: self.hists.iter().map(|h| h.snapshot()).collect(),
            trace_dropped,
        }
    }

    /// Overwrite a level gauge.
    #[inline]
    pub fn level_set(&self, l: Level, v: u64) {
        if self.is_enabled() {
            self.levels[l.index()].set(v);
        }
    }

    /// The current value of a level gauge.
    pub fn level_get(&self, l: Level) -> u64 {
        self.levels[l.index()].get()
    }

    /// Render the current snapshot in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        prom::render(&self.snapshot())
    }
}

impl Recorder for Metrics {
    #[inline]
    fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    #[inline]
    fn add(&self, c: Counter, delta: u64) {
        if self.is_enabled() {
            self.counters[c.index()].add(delta);
        }
    }

    #[inline]
    fn gauge(&self, g: Gauge, v: u64) {
        if self.is_enabled() {
            self.gauges[g.index()].observe(v);
        }
    }

    #[inline]
    fn observe_ns(&self, h: HistId, ns: u64) {
        if self.is_enabled() {
            self.hists[h.index()].record(ns);
        }
    }

    fn trace(&self, kind: TraceKind) {
        if self.is_enabled() {
            self.trace.push(TraceEvent {
                ts_ns: self.clock.now_ns(),
                kind,
            });
        }
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("enabled", &self.is_enabled())
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

/// A recorder that records nothing (clock pinned at 0).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn is_enabled(&self) -> bool {
        false
    }
    fn add(&self, _: Counter, _: u64) {}
    fn gauge(&self, _: Gauge, _: u64) {}
    fn observe_ns(&self, _: HistId, _: u64) {}
    fn trace(&self, _: TraceKind) {}
    fn now_ns(&self) -> u64 {
        0
    }
}

/// Point-in-time aggregate of a [`Metrics`] registry — the engine's
/// observable state. Plain data: compare, clone, diff.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineStats {
    /// All counters, indexed by [`Counter::index`].
    counters: [u64; Counter::COUNT],
    /// All gauges, indexed by [`Gauge::index`].
    gauges: [u64; Gauge::COUNT],
    /// All level gauges, indexed by [`Level::index`].
    levels: [u64; Level::COUNT],
    /// All histograms, indexed by [`HistId::index`].
    hists: Vec<HistSnapshot>,
    /// Trace events evicted from the ring so far.
    trace_dropped: u64,
}

impl Default for EngineStats {
    // Derived `Default` stops at 32-element arrays; spelled out so the
    // counter enum can keep growing.
    fn default() -> Self {
        EngineStats {
            counters: [0; Counter::COUNT],
            gauges: [0; Gauge::COUNT],
            levels: [0; Level::COUNT],
            hists: Vec::new(),
            trace_dropped: 0,
        }
    }
}

impl EngineStats {
    /// Snapshot a registry (alias for [`Metrics::snapshot`]).
    pub fn snapshot(metrics: &Metrics) -> EngineStats {
        metrics.snapshot()
    }

    /// Value of a counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Value of a gauge.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g.index()]
    }

    /// Value of a level gauge.
    pub fn level(&self, l: Level) -> u64 {
        self.levels[l.index()]
    }

    /// A histogram's snapshot.
    pub fn hist(&self, h: HistId) -> &HistSnapshot {
        &self.hists[h.index()]
    }

    /// Sends recorded for one tier.
    pub fn tier_sends(&self, tier: Tier) -> u64 {
        self.get(Counter::send(tier))
    }

    /// Per-tier send counts in [`Tier::ALL`] order.
    pub fn tier_counts(&self) -> [u64; 4] {
        [
            self.tier_sends(Tier::FirstTime),
            self.tier_sends(Tier::ContentMatch),
            self.tier_sends(Tier::PerfectStructural),
            self.tier_sends(Tier::PartialStructural),
        ]
    }

    /// Total sends across all tiers.
    pub fn total_sends(&self) -> u64 {
        self.tier_counts().iter().sum()
    }

    /// Trace events evicted from the ring.
    pub fn trace_dropped(&self) -> u64 {
        self.trace_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_indices_are_dense() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, h) in HistId::ALL.iter().enumerate() {
            assert_eq!(h.index(), i);
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
        for (i, l) in Level::ALL.iter().enumerate() {
            assert_eq!(l.index(), i);
        }
    }

    #[test]
    fn level_gauge_moves_both_ways_in_snapshots() {
        let m = Metrics::new();
        m.level_set(Level::TemplateBytesResident, 4096);
        assert_eq!(m.snapshot().level(Level::TemplateBytesResident), 4096);
        m.level_set(Level::TemplateBytesResident, 128);
        assert_eq!(m.snapshot().level(Level::TemplateBytesResident), 128);
        m.set_enabled(false);
        m.level_set(Level::TemplateBytesResident, 9);
        assert_eq!(m.level_get(Level::TemplateBytesResident), 128);
    }

    #[test]
    fn snapshot_reflects_recording() {
        let m = Metrics::new();
        m.add(Counter::send(Tier::ContentMatch), 3);
        m.add(Counter::Shifts, 7);
        m.gauge(Gauge::QueueDepthPeak, 5);
        m.observe_ns(HistId::ServerRequest, 1_500);
        let s = m.snapshot();
        assert_eq!(s.tier_sends(Tier::ContentMatch), 3);
        assert_eq!(s.get(Counter::Shifts), 7);
        assert_eq!(s.gauge(Gauge::QueueDepthPeak), 5);
        assert_eq!(s.hist(HistId::ServerRequest).count(), 1);
        assert_eq!(s.total_sends(), 3);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let m = Metrics::new();
        m.set_enabled(false);
        m.add(Counter::Shifts, 1);
        m.observe_ns(HistId::ServerRequest, 10);
        m.trace(TraceKind::PoolReconnect);
        let s = m.snapshot();
        assert_eq!(s.get(Counter::Shifts), 0);
        assert_eq!(s.hist(HistId::ServerRequest).count(), 0);
        assert!(m.trace_ring().snapshot().0.is_empty());
    }

    #[test]
    fn virtual_clock_drives_trace_timestamps() {
        let clock = Arc::new(VirtualClock::new());
        let m = Metrics::with_clock(clock.clone());
        clock.advance(42);
        m.trace(TraceKind::PoolReconnect);
        let (events, _) = m.trace_ring().snapshot();
        assert_eq!(events[0].ts_ns, 42);
    }
}
