//! Prometheus text exposition rendering.
//!
//! Renders an [`EngineStats`] snapshot as `text/plain; version=0.0.4`.
//! Histograms are down-sampled onto a fixed ladder of power-of-two
//! second boundaries (cumulative, ending in `+Inf`), which keeps the
//! payload small while `_count`/`_sum` stay exact.

use crate::{Counter, EngineStats, Gauge, HistId, HistSnapshot, Level, Tier};
use std::fmt::Write;

/// `le` boundaries for rendered histograms, in nanoseconds: 1 µs · 2^k for
/// k = 0..20 (1 µs up to ~1 s), then +Inf.
fn le_bounds_ns() -> impl Iterator<Item = u64> {
    (0..21).map(|k| 1_000u64 << k)
}

fn render_hist(out: &mut String, name: &str, labels: &str, h: &HistSnapshot) {
    let sep = if labels.is_empty() { "" } else { "," };
    for bound in le_bounds_ns() {
        let le = bound as f64 / 1e9;
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {}",
            h.cumulative_le(bound)
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
        h.count()
    );
    if labels.is_empty() {
        let _ = writeln!(out, "{name}_sum {}", h.sum_ns() as f64 / 1e9);
        let _ = writeln!(out, "{name}_count {}", h.count());
    } else {
        let _ = writeln!(out, "{name}_sum{{{labels}}} {}", h.sum_ns() as f64 / 1e9);
        let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count());
    }
}

/// Render a snapshot as Prometheus text.
pub fn render(s: &EngineStats) -> String {
    let mut out = String::with_capacity(8 * 1024);

    // Per-tier send counters: one family, tier label.
    out.push_str("# HELP bsoap_sends_total Differential sends by tier chosen.\n");
    out.push_str("# TYPE bsoap_sends_total counter\n");
    for tier in Tier::ALL {
        let _ = writeln!(
            out,
            "bsoap_sends_total{{tier=\"{}\"}} {}",
            tier.label(),
            s.tier_sends(tier)
        );
    }

    // Scalar counters (everything that is not a per-tier send counter).
    for &c in Counter::ALL {
        if matches!(
            c,
            Counter::SendFirstTime
                | Counter::SendContentMatch
                | Counter::SendPerfectStructural
                | Counter::SendPartialStructural
        ) {
            continue;
        }
        let _ = writeln!(out, "# TYPE {} counter", c.name());
        let _ = writeln!(out, "{} {}", c.name(), s.get(c));
    }

    for &g in Gauge::ALL {
        let _ = writeln!(out, "# TYPE {} gauge", g.name());
        let _ = writeln!(out, "{} {}", g.name(), s.gauge(g));
    }

    for &l in Level::ALL {
        let _ = writeln!(out, "# TYPE {} gauge", l.name());
        let _ = writeln!(out, "{} {}", l.name(), s.level(l));
    }

    // Per-tier send latency: one histogram family, tier label.
    out.push_str("# TYPE bsoap_send_latency_seconds histogram\n");
    for tier in Tier::ALL {
        render_hist(
            &mut out,
            "bsoap_send_latency_seconds",
            &format!("tier=\"{}\"", tier.label()),
            s.hist(HistId::send(tier)),
        );
    }

    out.push_str("# TYPE bsoap_request_latency_seconds histogram\n");
    render_hist(
        &mut out,
        "bsoap_request_latency_seconds",
        "",
        s.hist(HistId::ServerRequest),
    );

    out.push_str("# TYPE bsoap_pool_checkout_seconds histogram\n");
    render_hist(
        &mut out,
        "bsoap_pool_checkout_seconds",
        "",
        s.hist(HistId::PoolCheckout),
    );

    let _ = writeln!(out, "# TYPE bsoap_trace_dropped_total counter");
    let _ = writeln!(out, "bsoap_trace_dropped_total {}", s.trace_dropped());

    out
}

/// Parse a counter value back out of rendered text — scrape-test support.
/// Matches a line that starts with `name` followed by a space (exact
/// name, no labels) or the full `name{labels}` form passed in `name`.
pub fn parse_value(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Metrics, Recorder};

    #[test]
    fn render_contains_tier_counters_and_hist() {
        let m = Metrics::new();
        m.add(Counter::send(Tier::ContentMatch), 5);
        m.add(Counter::Shifts, 2);
        m.observe_ns(HistId::send(Tier::ContentMatch), 2_000);
        let text = m.render_prometheus();
        assert_eq!(
            parse_value(&text, "bsoap_sends_total{tier=\"content_match\"}"),
            Some(5.0)
        );
        assert_eq!(parse_value(&text, "bsoap_shifts_total"), Some(2.0));
        assert_eq!(
            parse_value(
                &text,
                "bsoap_send_latency_seconds_count{tier=\"content_match\"}"
            ),
            Some(1.0)
        );
        // Cumulative buckets end at the exact total.
        assert!(text.contains("le=\"+Inf\"}"));
    }

    #[test]
    fn render_contains_level_gauges() {
        let m = Metrics::new();
        m.level_set(Level::TemplateBytesResident, 12_345);
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE bsoap_template_bytes_resident gauge"));
        assert_eq!(
            parse_value(&text, "bsoap_template_bytes_resident"),
            Some(12_345.0)
        );
    }

    #[test]
    fn bucket_lines_are_monotone() {
        let m = Metrics::new();
        for v in [500u64, 1_500, 80_000, 3_000_000, 900_000_000] {
            m.observe_ns(HistId::ServerRequest, v);
        }
        let text = m.render_prometheus();
        let mut last = 0.0f64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("bsoap_request_latency_seconds_bucket{") {
                let v: f64 = rest.split(' ').nth(1).unwrap().parse().unwrap();
                assert!(v >= last, "CDF must be monotone: {line}");
                last = v;
            }
        }
        assert_eq!(last, 5.0);
    }
}
