//! Time sources for the observability layer.
//!
//! Everything that stamps an event or measures a latency goes through the
//! [`Clock`] trait so tests can substitute a [`VirtualClock`] and make
//! timing-dependent assertions deterministic (no wall-clock flake).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic nanosecond time source.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Nanoseconds since an arbitrary (per-clock) origin. Monotone
    /// non-decreasing.
    fn now_ns(&self) -> u64;

    /// Block until `d` has elapsed *on this clock*. The real clock parks
    /// the thread; [`VirtualClock`] merely advances itself, which is what
    /// lets retry/backoff schedules run with zero wall-clock sleeps in
    /// tests.
    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// Real time: `Instant`-backed, anchored at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// New clock anchored at now.
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // u64 nanoseconds cover ~584 years from the origin; truncation is
        // theoretical only.
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A manually advanced clock. Time only moves when the test says so, which
/// is what makes latency-ordering assertions deterministic: the "cost" of
/// an operation is whatever the test's cost model charges for it.
#[derive(Debug, Default)]
pub struct VirtualClock {
    ns: AtomicU64,
}

impl VirtualClock {
    /// New clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance by `delta` nanoseconds; returns the new time.
    pub fn advance(&self, delta: u64) -> u64 {
        self.ns.fetch_add(delta, Ordering::Relaxed) + delta
    }

    /// Jump to an absolute time. Callers are responsible for keeping the
    /// clock monotone (the trait contract).
    pub fn set(&self, ns: u64) {
        self.ns.store(ns, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    fn sleep(&self, d: Duration) {
        self.advance(d.as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_moves_forward() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_only_moves_when_advanced() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 0, "time stands still");
        assert_eq!(c.advance(250), 250);
        assert_eq!(c.now_ns(), 250);
        c.set(1_000);
        assert_eq!(c.now_ns(), 1_000);
    }

    #[test]
    fn virtual_sleep_advances_instead_of_blocking() {
        let c = VirtualClock::new();
        let wall = Instant::now();
        c.sleep(Duration::from_secs(3600));
        assert_eq!(c.now_ns(), 3_600_000_000_000);
        assert!(wall.elapsed() < Duration::from_secs(1), "no real sleep");
    }
}
