//! Bounded trace-event ring buffer.
//!
//! Every interesting moment on the hot path can drop a [`TraceEvent`] into
//! the ring: per-send spans (tier chosen, dirty count, bytes shifted,
//! chunks split/merged, DUT fix-ups), pool checkouts/reconnects, queue
//! depth samples. The ring is bounded — when full, the oldest event is
//! evicted and a drop counter ticks, so tracing can never grow memory
//! under load.

use crate::Tier;
use std::collections::VecDeque;
use std::sync::Mutex;

/// What happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// One differential send, end to end.
    SendSpan {
        /// Tier the matching phase chose.
        tier: Tier,
        /// DUT entries dirty at flush time.
        dirty: u64,
        /// Values actually rewritten.
        values_written: u64,
        /// Bytes moved by shifting.
        shifted_bytes: u64,
        /// Shift operations.
        shifts: u64,
        /// Steal operations (gap taken from a neighbor's padding).
        steals: u64,
        /// Chunk splits forced by expansion.
        splits: u64,
        /// DUT entries whose location was fixed up after shifts/splits.
        dut_fixups: u64,
        /// Bytes on the wire for this send.
        bytes: u64,
        /// Wall (or virtual) time the send took.
        elapsed_ns: u64,
    },
    /// A connection-pool checkout.
    PoolCheckout {
        /// Whether an idle pooled connection was reused.
        reused: bool,
    },
    /// The pool replaced a stale connection after a failed attempt.
    PoolReconnect,
    /// Queue depth observed when a connection was enqueued on the
    /// worker-pool server.
    QueueDepth {
        /// Connections waiting (including the one just queued).
        depth: u64,
    },
    /// One server request handled.
    Request {
        /// Response bytes written.
        bytes: u64,
        /// Handling time.
        elapsed_ns: u64,
    },
    /// A failed attempt is being retried after a backoff sleep.
    Retry {
        /// Attempt number about to run (1 = first retry).
        attempt: u64,
        /// Backoff slept before this attempt.
        delay_ns: u64,
    },
    /// The per-endpoint circuit breaker changed state.
    BreakerTransition {
        /// State entered.
        to: BreakerState,
    },
    /// A call ran out of its deadline budget.
    DeadlineExceeded,
    /// The client entered (`true`) or left (`false`) degraded mode for an
    /// endpoint: stateless full-serialization sends, no template kept.
    Degraded {
        /// Whether degraded mode is now on.
        on: bool,
    },
    /// The event-loop server core accepted a connection.
    Accept {
        /// Loop-assigned connection id.
        conn_id: u64,
    },
    /// The event-loop core evicted a connection (stall/budget timeout or
    /// idle reap).
    Evict {
        /// Loop-assigned connection id.
        conn_id: u64,
        /// Whether the connection was idle between requests when evicted.
        idle: bool,
    },
    /// Graceful drain began on the event-loop core.
    Drain {
        /// Connections still open when the drain started.
        in_flight: u64,
    },
}

/// Circuit-breaker states (see `bsoap-transport`'s breaker; mirrored here
/// so trace events stay in the leaf crate).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Healthy: calls flow.
    Closed,
    /// Tripped: calls fail fast until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe call is allowed through.
    HalfOpen,
}

/// A timestamped trace event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Clock reading when the event was recorded.
    pub ts_ns: u64,
    /// Event payload.
    pub kind: TraceKind,
}

#[derive(Debug, Default)]
struct RingState {
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

/// Bounded ring of trace events.
#[derive(Debug)]
pub struct TraceRing {
    cap: usize,
    state: Mutex<RingState>,
}

impl TraceRing {
    /// Ring holding at most `cap` events (cap 0 disables tracing).
    pub fn new(cap: usize) -> Self {
        TraceRing {
            cap,
            state: Mutex::new(RingState::default()),
        }
    }

    /// Capacity in events.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Push an event, evicting the oldest when full.
    pub fn push(&self, ev: TraceEvent) {
        if self.cap == 0 {
            return;
        }
        let mut st = self.state.lock().unwrap();
        if st.buf.len() == self.cap {
            st.buf.pop_front();
            st.dropped += 1;
        }
        st.buf.push_back(ev);
    }

    /// Events currently buffered, oldest first, plus the evicted count.
    pub fn snapshot(&self) -> (Vec<TraceEvent>, u64) {
        let st = self.state.lock().unwrap();
        (st.buf.iter().cloned().collect(), st.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            kind: TraceKind::PoolReconnect,
        }
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let ring = TraceRing::new(3);
        for t in 0..5 {
            ring.push(ev(t));
        }
        let (events, dropped) = ring.snapshot();
        assert_eq!(dropped, 2);
        let ts: Vec<u64> = events.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_discards() {
        let ring = TraceRing::new(0);
        ring.push(ev(1));
        let (events, dropped) = ring.snapshot();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }
}
