//! Lock-free counter primitives.
//!
//! [`ShardedCounter`] spreads increments across cache-line-padded atomic
//! shards so concurrent flush workers and server threads never contend on
//! one line; reads sum the shards. [`MaxGauge`] keeps a running maximum
//! (peak queue depth, max in-flight portions).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of shards. Power of two; enough that a worker pool of the sizes
/// this engine runs (≤ a few dozen threads) rarely collides.
const SHARDS: usize = 16;

/// One atomic on its own cache line.
#[repr(align(64))]
#[derive(Default)]
struct PaddedAtomic(AtomicU64);

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The shard this thread increments. Assigned round-robin on first use so
/// threads spread out even when spawned in bursts.
fn my_shard() -> usize {
    MY_SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
        s.set(v);
        v
    })
}

/// A monotone counter sharded across cache lines.
#[derive(Default)]
pub struct ShardedCounter {
    shards: [PaddedAtomic; SHARDS],
}

impl ShardedCounter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` on this thread's shard.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.shards[my_shard()]
            .0
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Sum of all shards. Monotone between calls as long as only `add` is
    /// used; concurrent adds may or may not be visible (relaxed loads).
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for ShardedCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ShardedCounter").field(&self.get()).finish()
    }
}

/// A gauge that remembers the maximum value ever observed.
#[derive(Default)]
pub struct MaxGauge(AtomicU64);

impl MaxGauge {
    /// New gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an observation; keeps the max.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The maximum observed so far.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for MaxGauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("MaxGauge").field(&self.get()).finish()
    }
}

/// A settable up/down gauge (current value, not a peak). Backs resource
/// levels such as resident template bytes, where the quantity shrinks on
/// eviction — something [`MaxGauge`] (fetch-max only) cannot express.
#[derive(Default)]
pub struct LevelGauge(AtomicU64);

impl LevelGauge {
    /// New gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the level by `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Lower the level by `delta`, saturating at zero.
    #[inline]
    pub fn sub(&self, delta: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(delta))
            });
    }

    /// The current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for LevelGauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("LevelGauge").field(&self.get()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(ShardedCounter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.add(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn max_gauge_keeps_peak() {
        let g = MaxGauge::new();
        g.observe(3);
        g.observe(7);
        g.observe(5);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn level_gauge_tracks_current_value() {
        let g = LevelGauge::new();
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.set(100);
        assert_eq!(g.get(), 100);
        g.sub(200);
        assert_eq!(g.get(), 0, "sub saturates at zero");
    }
}
