//! Fixed-bucket log-linear latency histogram.
//!
//! The layout is HdrHistogram-like but much smaller: values below
//! 2^SUB_BITS nanoseconds get exact unit buckets; above that, each power
//! of two is divided into 2^SUB_BITS linear sub-buckets, bounding the
//! relative quantization error at 1/2^SUB_BITS (~3%). All buckets are
//! atomics, so recording is a single relaxed `fetch_add` — lock-free and
//! wait-free — and the whole histogram is a fixed ~8.5 KiB allocation.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: 2^5 = 32 linear sub-buckets per octave.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;

/// Highest tracked value: 2^38 ns ≈ 4.6 minutes. Anything larger clamps
/// into the last bucket (it still counts; its value saturates).
const MAX_MSB: u32 = 38;

/// Total bucket count: SUB unit buckets plus (MAX_MSB - SUB_BITS) octaves
/// of SUB sub-buckets each.
pub const BUCKETS: usize = (SUB as usize) * ((MAX_MSB - SUB_BITS) as usize + 1);

/// Bucket index for a value.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - (v.leading_zeros() as u64);
    let shift = (msb as u32).saturating_sub(SUB_BITS);
    let sub = (v >> shift) - SUB;
    let idx = (shift as usize + 1) * SUB as usize + sub as usize;
    idx.min(BUCKETS - 1)
}

/// Inclusive upper bound of the values a bucket holds.
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB as usize {
        return idx as u64;
    }
    let shift = (idx / SUB as usize - 1) as u32;
    let sub = (idx % SUB as usize) as u64;
    ((SUB + sub + 1) << shift) - 1
}

/// Concurrent latency histogram (nanosecond values).
pub struct Histogram {
    counts: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        let counts: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let counts: Box<[AtomicU64; BUCKETS]> = counts.into_boxed_slice().try_into().unwrap();
        Histogram {
            counts,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one value (nanoseconds). Values beyond the trackable range
    /// saturate at [`max_trackable_ns`] — they land in the last bucket and
    /// contribute the saturated value to the sum, so `sum` cannot be blown
    /// up by a single wild measurement.
    #[inline]
    pub fn record(&self, v: u64) {
        let v = v.min(max_trackable_ns());
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Point-in-time copy. Under concurrent recording the snapshot is a
    /// consistent *lower* bound per bucket; once writers quiesce it is
    /// exact.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish()
    }
}

/// Immutable copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistSnapshot {
    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (ns).
    pub fn sum_ns(&self) -> u64 {
        self.sum
    }

    /// Mean recorded value in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Number of recorded values ≤ `bound` ns. Conservative for the bucket
    /// straddling `bound` (counts it only if the whole bucket is ≤ bound),
    /// so the result is monotone in `bound` and reaches `count()` once
    /// `bound` covers the last non-empty bucket.
    pub fn cumulative_le(&self, bound: u64) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .take_while(|(i, _)| bucket_upper(*i) <= bound)
            .map(|(_, c)| *c)
            .sum()
    }

    /// Value (ns) at percentile `p` in [0, 100]: the upper bound of the
    /// first bucket whose cumulative count reaches `ceil(p/100 · count)`.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Merge another snapshot into this one (bucket-wise sum). Merging is
    /// commutative and associative — shard merges can happen in any order.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Raw bucket counts (test/debug support).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }
}

/// Inclusive upper bound (ns) of bucket `idx` — exposed for rendering.
pub fn bucket_upper_ns(idx: usize) -> u64 {
    bucket_upper(idx)
}

/// Largest value the histogram tracks without saturating (~9 minutes).
#[inline]
pub fn max_trackable_ns() -> u64 {
    bucket_upper(BUCKETS - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_are_exact() {
        for v in 0..SUB {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn index_and_upper_agree() {
        // Every value maps to a bucket whose range contains it.
        for &v in &[0, 1, 31, 32, 33, 63, 64, 100, 1_000, 123_456, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS);
            let upper = bucket_upper(idx);
            if idx < BUCKETS - 1 {
                assert!(v <= upper, "v={v} idx={idx} upper={upper}");
            }
            if idx > 0 {
                let prev_upper = bucket_upper(idx - 1);
                assert!(v > prev_upper || idx == BUCKETS - 1);
            }
        }
    }

    #[test]
    fn relative_error_bounded() {
        for &v in &[100u64, 5_000, 77_777, 1_000_000, 250_000_000] {
            let upper = bucket_upper(bucket_index(v));
            let err = (upper - v) as f64 / v as f64;
            assert!(err <= 1.0 / SUB as f64 + 1e-9, "v={v} upper={upper}");
        }
    }

    #[test]
    fn percentiles_of_known_data() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v * 1_000); // 1µs .. 100µs
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        let p50 = s.percentile(50.0);
        let p99 = s.percentile(99.0);
        // p50 ≈ 50µs, p99 ≈ 99µs within ~3% quantization.
        assert!((48_000..=53_000).contains(&p50), "p50={p50}");
        assert!((96_000..=103_000).contains(&p99), "p99={p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn huge_values_clamp_into_last_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.bucket_counts()[BUCKETS - 1], 1);
    }
}
