//! Per-call time budgets and retry backoff schedules.
//!
//! A [`Deadline`] is an absolute expiry on a [`Clock`]: created once at
//! the top of a call, threaded down through pool checkout, connect,
//! writev, and response read, each stage deriving its socket timeout from
//! [`Deadline::remaining`]. On a [`VirtualClock`](crate::VirtualClock)
//! the whole budget is simulated, so deadline-expiry paths are testable
//! without real stalls.
//!
//! [`Backoff`] implements decorrelated jitter ("Exponential Backoff And
//! Jitter", AWS Architecture Blog): each delay is drawn uniformly from
//! `[base, 3 × previous]`, clamped to `cap`. The draw uses a seeded LCG —
//! no wall-clock entropy — so a retry schedule is a pure function of its
//! seed and every chaos test can replay it.

use crate::Clock;
use std::sync::Arc;
use std::time::Duration;

/// An absolute expiry on a shared clock. `None` budget = unbounded.
#[derive(Clone, Debug)]
pub struct Deadline {
    clock: Arc<dyn Clock>,
    expires_ns: Option<u64>,
}

impl Deadline {
    /// A deadline `budget` from now on `clock`.
    pub fn after(clock: Arc<dyn Clock>, budget: Duration) -> Self {
        let expires_ns = Some(clock.now_ns().saturating_add(budget.as_nanos() as u64));
        Deadline { clock, expires_ns }
    }

    /// An unbounded deadline (never expires) on `clock`.
    pub fn unbounded(clock: Arc<dyn Clock>) -> Self {
        Deadline {
            clock,
            expires_ns: None,
        }
    }

    /// From an optional budget: `None` → unbounded.
    pub fn from_budget(clock: Arc<dyn Clock>, budget: Option<Duration>) -> Self {
        match budget {
            Some(b) => Self::after(clock, b),
            None => Self::unbounded(clock),
        }
    }

    /// The clock this deadline reads.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Whether any budget is attached at all.
    pub fn is_bounded(&self) -> bool {
        self.expires_ns.is_some()
    }

    /// Budget left, `None` when unbounded. Zero once expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.expires_ns.map(|e| {
            let now = self.clock.now_ns();
            Duration::from_nanos(e.saturating_sub(now))
        })
    }

    /// True when the budget is spent.
    pub fn expired(&self) -> bool {
        matches!(self.remaining(), Some(d) if d.is_zero())
    }

    /// Socket-timeout view of the remaining budget: `Ok(None)` when
    /// unbounded, `Ok(Some(d))` with `d > 0` otherwise, and a
    /// `TimedOut` error once expired (a zero `Duration` is rejected by
    /// `set_read_timeout`, so expiry must surface *before* the syscall).
    pub fn socket_timeout(&self) -> std::io::Result<Option<Duration>> {
        match self.remaining() {
            None => Ok(None),
            Some(d) if d.is_zero() => Err(Self::timed_out()),
            Some(d) => Ok(Some(d)),
        }
    }

    /// Fail fast if the budget is spent.
    pub fn check(&self) -> std::io::Result<()> {
        if self.expired() {
            Err(Self::timed_out())
        } else {
            Ok(())
        }
    }

    /// The canonical expiry error: `TimedOut` carrying a
    /// [`DeadlineExpired`] marker payload, so upper layers can tell a
    /// genuine budget expiry apart from an OS-level `TimedOut` (e.g. an
    /// `ETIMEDOUT` connect to an unreachable host, or a user-set socket
    /// timeout outside any deadline policy).
    pub fn timed_out() -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::TimedOut, DeadlineExpired)
    }

    /// Whether `e` is a deadline-expiry error minted by
    /// [`Deadline::timed_out`] (checks for the [`DeadlineExpired`]
    /// marker, not the error kind — a bare `TimedOut` is *not* a
    /// deadline expiry).
    pub fn is_deadline_error(e: &std::io::Error) -> bool {
        e.get_ref()
            .is_some_and(|inner| inner.is::<DeadlineExpired>())
    }
}

/// Marker payload inside the canonical deadline-expiry error (see
/// [`Deadline::timed_out`] / [`Deadline::is_deadline_error`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeadlineExpired;

impl std::fmt::Display for DeadlineExpired {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("deadline exceeded")
    }
}

impl std::error::Error for DeadlineExpired {}

/// Deterministic decorrelated-jitter backoff schedule.
#[derive(Clone, Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    prev: Duration,
    state: u64,
}

impl Backoff {
    /// Schedule with delays in `[base, cap]`, seeded for replay.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Backoff {
            base,
            cap: cap.max(base),
            prev: base,
            state: seed | 1,
        }
    }

    /// Next pseudo-random u64 (LCG; same constants as `wyrand`-style
    /// mixers used elsewhere in the test suite — quality is irrelevant,
    /// determinism is the point).
    fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // xorshift the high bits down so short moduli see variation.
        let x = self.state;
        (x ^ (x >> 31)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Draw the next delay: uniform in `[base, 3 × previous]`, clamped to
    /// `cap`. The drawn value becomes the new `previous`.
    pub fn next_delay(&mut self) -> Duration {
        let base = self.base.as_nanos() as u64;
        let hi = (self.prev.as_nanos() as u64).saturating_mul(3).max(base);
        let span = hi - base;
        let jitter = if span == 0 {
            0
        } else {
            self.next_u64() % (span + 1)
        };
        let next = Duration::from_nanos(base + jitter).min(self.cap);
        self.prev = next;
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VirtualClock;

    fn vclock() -> Arc<VirtualClock> {
        Arc::new(VirtualClock::new())
    }

    #[test]
    fn deadline_counts_down_on_the_clock() {
        let c = vclock();
        let d = Deadline::after(c.clone() as Arc<dyn Clock>, Duration::from_millis(10));
        assert!(!d.expired());
        assert_eq!(d.remaining(), Some(Duration::from_millis(10)));
        c.advance(4_000_000);
        assert_eq!(d.remaining(), Some(Duration::from_millis(6)));
        c.advance(7_000_000);
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        assert_eq!(d.check().unwrap_err().kind(), std::io::ErrorKind::TimedOut);
    }

    #[test]
    fn unbounded_deadline_never_expires() {
        let c = vclock();
        let d = Deadline::unbounded(c.clone() as Arc<dyn Clock>);
        c.advance(u64::MAX / 2);
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
        assert_eq!(d.socket_timeout().unwrap(), None);
        d.check().unwrap();
    }

    #[test]
    fn socket_timeout_is_never_zero() {
        let c = vclock();
        let d = Deadline::after(c.clone() as Arc<dyn Clock>, Duration::from_nanos(5));
        assert_eq!(d.socket_timeout().unwrap(), Some(Duration::from_nanos(5)));
        c.advance(5);
        // Expired: surfaces as TimedOut rather than Some(0), which
        // `TcpStream::set_read_timeout` would reject.
        assert_eq!(
            d.socket_timeout().unwrap_err().kind(),
            std::io::ErrorKind::TimedOut
        );
    }

    #[test]
    fn deadline_errors_carry_the_marker_plain_timeouts_do_not() {
        let e = Deadline::timed_out();
        assert_eq!(e.kind(), std::io::ErrorKind::TimedOut);
        assert!(Deadline::is_deadline_error(&e));
        // An OS-level timeout (same kind, no marker) is not an expiry.
        let os = std::io::Error::new(std::io::ErrorKind::TimedOut, "ETIMEDOUT");
        assert!(!Deadline::is_deadline_error(&os));
        let bare = std::io::Error::from(std::io::ErrorKind::TimedOut);
        assert!(!Deadline::is_deadline_error(&bare));
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_secs(1);
        let mut a = Backoff::new(base, cap, 42);
        let mut b = Backoff::new(base, cap, 42);
        let mut prev = base;
        for _ in 0..64 {
            let da = a.next_delay();
            let db = b.next_delay();
            assert_eq!(da, db, "same seed, same schedule");
            assert!(da >= base && da <= cap, "delay {da:?} outside [base, cap]");
            assert!(
                da <= (prev * 3).min(cap).max(base),
                "decorrelated bound violated"
            );
            prev = da;
        }
    }

    #[test]
    fn backoff_seeds_decorrelate() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_secs(60);
        let mut a = Backoff::new(base, cap, 1);
        let mut b = Backoff::new(base, cap, 2);
        let sa: Vec<_> = (0..8).map(|_| a.next_delay()).collect();
        let sb: Vec<_> = (0..8).map(|_| b.next_delay()).collect();
        assert_ne!(sa, sb, "different seeds should diverge");
    }
}
