//! Property tests for the latency histogram: the invariants the
//! observability layer's numbers rest on.
//!
//! * the rendered CDF is monotone and exhaustive;
//! * percentiles are monotone in `p` (so p50 ≤ p99, always);
//! * merging is associative and commutative — flush-worker shards can be
//!   combined in any order and agree with a single shared histogram;
//! * concurrent recording (`parallel_workers > 1`) loses nothing: the
//!   post-quiesce snapshot accounts for every observation exactly once.

use bsoap_obs::{HistSnapshot, Histogram};
use proptest::prelude::*;

fn record_all(values: &[u64]) -> HistSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Latency-ish values: spread across the full log range plus edge cases.
fn latencies() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            0u64..64,
            64u64..100_000,
            100_000u64..1_000_000_000,
            Just(u64::MAX),
        ],
        0..200,
    )
}

proptest! {
    #[test]
    fn cdf_is_monotone_and_exhaustive(values in latencies()) {
        let s = record_all(&values);
        let mut last = 0u64;
        // Sweep a log ladder of bounds; cumulative counts must never
        // decrease and must reach the total by the top of the range.
        for k in 0..64u32 {
            let bound = 1u64 << k;
            let c = s.cumulative_le(bound.saturating_sub(1).max(1));
            prop_assert!(c >= last, "CDF decreased at 2^{k}");
            prop_assert!(c <= s.count());
            last = c;
        }
        prop_assert_eq!(s.cumulative_le(u64::MAX), s.count());
    }

    #[test]
    fn percentiles_are_monotone(values in latencies()) {
        let s = record_all(&values);
        let ps = [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0];
        let mut last = 0u64;
        for &p in &ps {
            let v = s.percentile(p);
            prop_assert!(v >= last, "percentile({p}) = {v} < {last}");
            last = v;
        }
        // The headline invariant.
        prop_assert!(s.percentile(50.0) <= s.percentile(99.0));
    }

    #[test]
    fn percentile_brackets_true_quantile(values in latencies()) {
        prop_assume!(!values.is_empty());
        let s = record_all(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        // p100 must cover the max within one bucket's quantization (~3%,
        // or saturated for clamped values).
        let max = *sorted.last().unwrap();
        let p100 = s.percentile(100.0);
        if max < (1u64 << 38) {
            prop_assert!(p100 >= max, "p100={p100} < max={max}");
            prop_assert!(p100 as f64 <= max as f64 * 1.04 + 1.0);
        }
    }

    #[test]
    fn merge_is_associative_and_matches_shared(
        a in latencies(),
        b in latencies(),
        c in latencies(),
    ) {
        let (sa, sb, sc) = (record_all(&a), record_all(&b), record_all(&c));

        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        // a ⊕ (b ⊕ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right, "merge must be associative");

        // b ⊕ a == a ⊕ b (commutative)
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba, "merge must be commutative");

        // Sharded-then-merged equals one shared histogram over everything.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let shared = record_all(&all);
        prop_assert_eq!(&left, &shared, "shard merge must match shared histogram");
    }
}

/// Concurrent recording from several workers, then a quiesced snapshot:
/// nothing lost, nothing double-counted. This is the `parallel_workers > 1`
/// consistency guarantee the flush shards rely on.
#[test]
fn concurrent_recording_snapshot_is_exact() {
    use std::sync::Arc;

    for workers in [2usize, 4, 8] {
        let h = Arc::new(Histogram::new());
        let per_worker = 5_000u64;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    for i in 0..per_worker {
                        // Deterministic spread across buckets per worker.
                        let v = (i * 37 + w as u64 * 1_009) % 2_000_000;
                        h.record(v);
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        let expect_sum: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let s = h.snapshot();
        assert_eq!(s.count(), per_worker * workers as u64);
        assert_eq!(s.sum_ns(), expect_sum);
        assert_eq!(
            s.bucket_counts().iter().sum::<u64>(),
            s.count(),
            "bucket counts must account for every observation"
        );
    }
}
