//! Property tests for the XML substrate: escaping is invertible, the
//! writer's output tokenizes back to the same structure, and the pad
//! canonicalizer is idempotent and padding-insensitive.

use bsoap_xml::{
    escape_attr_into, escape_text_into, escape_text_into_with, strip_pad, unescape, Event,
    PullParser, XmlWriter,
};
use proptest::prelude::*;

fn text_strategy() -> impl Strategy<Value = String> {
    // Printable ASCII plus the characters escaping must handle, plus
    // multi-byte UTF-8 so the SIMD scanner sees block-straddling sequences.
    proptest::collection::vec(
        prop_oneof![
            proptest::char::range(' ', '~'),
            Just('<'),
            Just('>'),
            Just('&'),
            Just('"'),
            Just('\''),
            Just('\n'),
            Just('\r'),
            Just('é'),
            Just('α'),
            Just('😀'),
        ],
        0..80,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9._-]{0,10}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn unescape_inverts_text_escape(text in text_strategy()) {
        let mut escaped = Vec::new();
        escape_text_into(&mut escaped, &text);
        let back = unescape(&escaped).unwrap();
        prop_assert_eq!(back.as_ref(), text.as_bytes());
    }

    #[test]
    fn unescape_inverts_attr_escape(text in text_strategy()) {
        let mut escaped = Vec::new();
        escape_attr_into(&mut escaped, &text);
        // Escaped attribute values never contain raw quotes or angle
        // brackets or ampersands-not-starting-entities.
        prop_assert!(!escaped.contains(&b'"'));
        prop_assert!(!escaped.contains(&b'<'));
        let back = unescape(&escaped).unwrap();
        prop_assert_eq!(back.as_ref(), text.as_bytes());
    }

    #[test]
    fn writer_output_tokenizes_back(
        names in proptest::collection::vec(name_strategy(), 1..8),
        texts in proptest::collection::vec(text_strategy(), 1..8),
        attr_val in text_strategy(),
    ) {
        // Build a nested document: each name wraps the next; innermost
        // holds the first text.
        let mut w = XmlWriter::new();
        w.declaration();
        for (i, n) in names.iter().enumerate() {
            w.start(n);
            if i == 0 {
                w.attr("a", &attr_val);
            }
            w.close_start_tag();
            if let Some(t) = texts.get(i) {
                w.text(t);
            }
        }
        for n in names.iter().rev() {
            w.end(n);
        }
        let bytes = w.finish().unwrap();

        // Tokenize and compare structure.
        let mut p = PullParser::new(&bytes);
        let mut starts = Vec::new();
        let mut ends = 0usize;
        let mut attr_seen = None;
        loop {
            match p.next_event().unwrap() {
                Event::Eof => break,
                Event::Start { name, attrs, .. } => {
                    starts.push(String::from_utf8(bytes[name].to_vec()).unwrap());
                    if let Some(a) = attrs.first() {
                        let raw = &bytes[a.value.clone()];
                        attr_seen = Some(unescape(raw).unwrap().into_owned());
                    }
                }
                Event::End { .. } => ends += 1,
                _ => {}
            }
        }
        prop_assert_eq!(&starts, &names);
        prop_assert_eq!(ends, names.len());
        prop_assert_eq!(attr_seen.as_deref(), Some(attr_val.as_bytes()));
    }

    #[test]
    fn escape_kernels_agree(text in text_strategy()) {
        // The SIMD scanner's "needs escape" mask must match the scalar
        // predicate exactly — same escapes, same clean runs.
        use bsoap_kernels::KernelPolicy;
        let mut scalar = Vec::new();
        let mut simd = Vec::new();
        escape_text_into_with(&mut scalar, &text, KernelPolicy::Scalar);
        escape_text_into_with(&mut simd, &text, KernelPolicy::ForcedSimd);
        prop_assert_eq!(scalar, simd);
    }

    #[test]
    fn carriage_returns_round_trip_through_parser(
        prefix in proptest::collection::vec(proptest::char::range('a', 'z'), 0..40),
    ) {
        // Satellite: \r in text content must survive a full
        // escape → parse → unescape round trip (a literal \r would be
        // normalized to \n by conforming parsers; &#13; survives).
        let text: String = prefix.into_iter().collect::<String>() + "\r mid\r";
        let mut w = XmlWriter::new();
        w.start("r");
        w.close_start_tag();
        w.text(&text);
        w.end("r");
        let bytes = w.finish().unwrap();
        prop_assert!(!bytes.contains(&b'\r'), "raw CR leaked into wire bytes");

        let mut p = PullParser::new(&bytes);
        let mut recovered = Vec::new();
        loop {
            match p.next_event().unwrap() {
                Event::Eof => break,
                Event::Text { range } => {
                    recovered.extend_from_slice(&unescape(&bytes[range]).unwrap());
                }
                _ => {}
            }
        }
        prop_assert_eq!(recovered, text.into_bytes());
    }

    #[test]
    fn strip_pad_is_idempotent(
        names in proptest::collection::vec(name_strategy(), 1..6),
        texts in proptest::collection::vec(text_strategy(), 1..6),
    ) {
        let mut w = XmlWriter::new();
        for (n, t) in names.iter().zip(&texts) {
            w.start(n);
            w.close_start_tag();
            w.text(t);
            w.end(n);
        }
        for _ in 0..names.len().min(texts.len()) {
            // leftover opens? none: every started element was ended.
        }
        let bytes = match w.finish() {
            Ok(b) => b,
            Err(_) => return Ok(()),
        };
        let once = strip_pad(&bytes);
        let twice = strip_pad(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn strip_pad_ignores_injected_padding(
        pad_lens in proptest::collection::vec(0usize..10, 1..6),
    ) {
        // A fixed document with variable padding runs between elements
        // must canonicalize to the same bytes.
        let mut doc = String::from("<r>");
        for (i, &p) in pad_lens.iter().enumerate() {
            doc.push_str(&format!("<v>{i}</v>"));
            doc.push_str(&" ".repeat(p));
        }
        doc.push_str("</r>");
        let reference = {
            let mut d = String::from("<r>");
            for i in 0..pad_lens.len() {
                d.push_str(&format!("<v>{i}</v>"));
            }
            d.push_str("</r>");
            d
        };
        prop_assert_eq!(strip_pad(doc.as_bytes()), reference.into_bytes());
    }
}
