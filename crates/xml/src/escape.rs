//! XML character escaping and entity resolution.
//!
//! Numeric leaf values (the hot path of the paper) never need escaping —
//! the engine writes them raw. Escaping is only on the string path and in
//! the baseline serializers, but it must still be correct and allocation
//! conscious: both escape directions work into caller-provided buffers.
//!
//! ## Kernel dispatch
//!
//! The escape scan is one of the engine's three byte kernels (DESIGN.md
//! §3.11): [`find_special`] locates the next byte needing escaping 16 or
//! 32 bytes per iteration (SSE2/AVX2 splat-compare + movemask) and the
//! escape functions bulk-copy the clean run between specials. The scalar
//! predicate [`Charset::contains`] is the oracle; the SIMD mask is built
//! from exactly the same byte set, and property tests assert the two
//! paths agree on every input, including UTF-8 sequences straddling the
//! 16/32-byte block boundaries (multi-byte UTF-8 is ≥ `0x80`, so no
//! continuation byte can collide with an ASCII special).

use bsoap_kernels::{resolve, KernelPolicy, SimdLevel};

/// Error from [`unescape`]: a malformed or unknown entity reference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EscapeError {
    /// Byte offset of the offending `&`.
    pub at: usize,
}

impl std::fmt::Display for EscapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed entity reference at byte {}", self.at)
    }
}

impl std::error::Error for EscapeError {}

/// Which escape context a scan serves. Each variant is a fixed byte set;
/// the scalar predicate here is the oracle the SIMD masks must match.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Charset {
    /// Text content: `&`, `<`, `>`, `\r`.
    ///
    /// `>` only strictly needs escaping in the `]]>` sequence but escaping
    /// it unconditionally is the norm for SOAP toolkits. `\r` must be
    /// escaped as a character reference because XML parsers normalize
    /// literal carriage returns in content to `\n` (canonical-XML safety).
    Text,
    /// Double-quoted attribute values: `&`, `<`, `"`, `\t`, `\n`, `\r`.
    Attr,
}

impl Charset {
    /// The bytes this charset escapes (the SIMD compare constants).
    pub fn specials(self) -> &'static [u8] {
        match self {
            Charset::Text => b"&<>\r",
            Charset::Attr => b"&<\"\t\n\r",
        }
    }

    /// Scalar predicate: does `b` need escaping in this context?
    #[inline]
    pub fn contains(self, b: u8) -> bool {
        match self {
            Charset::Text => matches!(b, b'&' | b'<' | b'>' | b'\r'),
            Charset::Attr => matches!(b, b'&' | b'<' | b'"' | b'\t' | b'\n' | b'\r'),
        }
    }

    /// Replacement entity for a byte this charset escapes.
    fn replacement(self, b: u8) -> &'static [u8] {
        match b {
            b'&' => b"&amp;",
            b'<' => b"&lt;",
            b'>' => b"&gt;",
            b'"' => b"&quot;",
            b'\t' => b"&#9;",
            b'\n' => b"&#10;",
            b'\r' => b"&#13;",
            _ => unreachable!("not a special byte"),
        }
    }
}

/// Index of the first byte of `hay` needing escaping under `set`, with
/// explicit kernel selection. `None` means the whole slice is clean.
#[inline]
pub fn find_special_at(hay: &[u8], set: Charset, level: SimdLevel) -> Option<usize> {
    #[cfg(target_arch = "x86_64")]
    {
        if level >= SimdLevel::Avx2 && hay.len() >= 32 {
            // SAFETY: AVX2 presence was runtime-detected by `resolve`.
            return unsafe { simd::find_special_avx2(hay, set) };
        }
        if level >= SimdLevel::Sse2 && hay.len() >= 16 {
            // SAFETY: SSE2 is part of the x86_64 baseline.
            return unsafe { simd::find_special_sse2(hay, set) };
        }
    }
    let _ = level;
    hay.iter().position(|&b| set.contains(b))
}

/// Index of the first byte needing escaping under `set`, resolving the
/// kernel from `policy` (the scanner template build and the writer share).
#[inline]
pub fn find_special(hay: &[u8], set: Charset, policy: KernelPolicy) -> Option<usize> {
    find_special_at(hay, set, resolve(policy))
}

/// Shared escape loop: scan for specials, bulk-copy clean runs.
fn escape_into(out: &mut Vec<u8>, bytes: &[u8], set: Charset, policy: KernelPolicy) {
    let level = resolve(policy);
    if level.is_simd() && bytes.len() >= 16 {
        bsoap_kernels::record_simd_hits(1);
    }
    let mut pos = 0;
    while pos < bytes.len() {
        match find_special_at(&bytes[pos..], set, level) {
            None => break,
            Some(i) => {
                out.extend_from_slice(&bytes[pos..pos + i]);
                out.extend_from_slice(set.replacement(bytes[pos + i]));
                pos += i + 1;
            }
        }
    }
    out.extend_from_slice(&bytes[pos..]);
}

/// Append `text` to `out`, escaping `&`, `<`, `>` and `\r`
/// ([`Charset::Text`]), using the kernel the default policy resolves to.
pub fn escape_text_into(out: &mut Vec<u8>, text: &str) {
    escape_into(out, text.as_bytes(), Charset::Text, KernelPolicy::Auto);
}

/// [`escape_text_into`] with an explicit kernel policy (the engine
/// threads its `EngineConfig::kernel` knob through here).
pub fn escape_text_into_with(out: &mut Vec<u8>, text: &str, policy: KernelPolicy) {
    escape_into(out, text.as_bytes(), Charset::Text, policy);
}

/// Append `value` to `out`, escaped for a double-quoted attribute
/// ([`Charset::Attr`]).
pub fn escape_attr_into(out: &mut Vec<u8>, value: &str) {
    escape_into(out, value.as_bytes(), Charset::Attr, KernelPolicy::Auto);
}

/// [`escape_attr_into`] with an explicit kernel policy.
pub fn escape_attr_into_with(out: &mut Vec<u8>, value: &str, policy: KernelPolicy) {
    escape_into(out, value.as_bytes(), Charset::Attr, policy);
}

#[cfg(target_arch = "x86_64")]
mod simd {
    //! SSE2/AVX2 escape scanners.
    //!
    //! Safety argument (DESIGN.md §3.11): every load is an *unaligned*
    //! vector load fully inside `hay` — the block loop stops while
    //! `i + LANES <= hay.len()` and the remaining tail is scanned with the
    //! scalar predicate, so no byte outside the slice is ever read. The
    //! only unsafety is the intrinsics themselves, which require the
    //! corresponding target feature: SSE2 is unconditionally present on
    //! `x86_64`, AVX2 callers hold a runtime-detection proof.

    use super::Charset;
    use std::arch::x86_64::*;

    /// 16-bytes-per-iteration scanner.
    ///
    /// # Safety
    /// Requires SSE2 (always true on `x86_64`).
    #[target_feature(enable = "sse2")]
    pub unsafe fn find_special_sse2(hay: &[u8], set: Charset) -> Option<usize> {
        // SAFETY: loads are unaligned and bounded by `i + 16 <= len`.
        unsafe {
            let specials = set.specials();
            let ptr = hay.as_ptr();
            let len = hay.len();
            let mut i = 0;
            while i + 16 <= len {
                let block = _mm_loadu_si128(ptr.add(i) as *const __m128i);
                let mut hits = _mm_setzero_si128();
                for &s in specials {
                    let needle = _mm_set1_epi8(s as i8);
                    hits = _mm_or_si128(hits, _mm_cmpeq_epi8(block, needle));
                }
                let mask = _mm_movemask_epi8(hits) as u32;
                if mask != 0 {
                    return Some(i + mask.trailing_zeros() as usize);
                }
                i += 16;
            }
            hay[i..]
                .iter()
                .position(|&b| set.contains(b))
                .map(|p| i + p)
        }
    }

    /// 32-bytes-per-iteration scanner.
    ///
    /// # Safety
    /// Requires AVX2 (runtime-detected by the caller).
    #[target_feature(enable = "avx2")]
    pub unsafe fn find_special_avx2(hay: &[u8], set: Charset) -> Option<usize> {
        // SAFETY: loads are unaligned and bounded by `i + 32 <= len`; the
        // sub-32-byte tail reuses the SSE2/scalar scanner.
        unsafe {
            let specials = set.specials();
            let ptr = hay.as_ptr();
            let len = hay.len();
            let mut i = 0;
            while i + 32 <= len {
                let block = _mm256_loadu_si256(ptr.add(i) as *const __m256i);
                let mut hits = _mm256_setzero_si256();
                for &s in specials {
                    let needle = _mm256_set1_epi8(s as i8);
                    hits = _mm256_or_si256(hits, _mm256_cmpeq_epi8(block, needle));
                }
                let mask = _mm256_movemask_epi8(hits) as u32;
                if mask != 0 {
                    return Some(i + mask.trailing_zeros() as usize);
                }
                i += 32;
            }
            find_special_sse2(&hay[i..], set).map(|p| i + p)
        }
    }
}

/// Resolve entity and character references in raw character data.
///
/// Returns `Cow::Borrowed` when no references are present (the common case
/// for numeric content, keeping the differential deserializer copy-free).
pub fn unescape(raw: &[u8]) -> Result<std::borrow::Cow<'_, [u8]>, EscapeError> {
    let Some(first_amp) = raw.iter().position(|&b| b == b'&') else {
        return Ok(std::borrow::Cow::Borrowed(raw));
    };
    let mut out = Vec::with_capacity(raw.len());
    out.extend_from_slice(&raw[..first_amp]);
    let mut i = first_amp;
    while i < raw.len() {
        if raw[i] != b'&' {
            out.push(raw[i]);
            i += 1;
            continue;
        }
        let semi = raw[i..]
            .iter()
            .position(|&b| b == b';')
            .ok_or(EscapeError { at: i })?;
        let entity = &raw[i + 1..i + semi];
        match entity {
            b"amp" => out.push(b'&'),
            b"lt" => out.push(b'<'),
            b"gt" => out.push(b'>'),
            b"quot" => out.push(b'"'),
            b"apos" => out.push(b'\''),
            _ if entity.first() == Some(&b'#') => {
                let code = parse_char_ref(&entity[1..]).ok_or(EscapeError { at: i })?;
                let ch = char::from_u32(code).ok_or(EscapeError { at: i })?;
                let mut buf = [0u8; 4];
                out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
            }
            _ => return Err(EscapeError { at: i }),
        }
        i += semi + 1;
    }
    Ok(std::borrow::Cow::Owned(out))
}

fn parse_char_ref(body: &[u8]) -> Option<u32> {
    if let Some(hex) = body.strip_prefix(b"x") {
        if hex.is_empty() || hex.len() > 6 {
            return None;
        }
        let mut code: u32 = 0;
        for &b in hex {
            code = code * 16 + (b as char).to_digit(16)?;
        }
        Some(code)
    } else {
        if body.is_empty() || body.len() > 7 {
            return None;
        }
        let mut code: u32 = 0;
        for &b in body {
            code = code * 10 + (b as char).to_digit(10)?;
        }
        Some(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn escape_text(s: &str) -> String {
        let mut out = Vec::new();
        escape_text_into(&mut out, s);
        String::from_utf8(out).unwrap()
    }

    fn escape_attr(s: &str) -> String {
        let mut out = Vec::new();
        escape_attr_into(&mut out, s);
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn text_escaping() {
        assert_eq!(escape_text("plain"), "plain");
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
        assert_eq!(escape_text(""), "");
        assert_eq!(escape_text("<<>>"), "&lt;&lt;&gt;&gt;");
        assert_eq!(escape_text("quotes \" stay"), "quotes \" stay");
    }

    #[test]
    fn text_escapes_carriage_return() {
        // Literal \r in content would be normalized to \n by conforming
        // XML parsers; the character reference survives round trips.
        assert_eq!(escape_text("a\rb"), "a&#13;b");
        assert_eq!(escape_text("\r\n"), "&#13;\n");
        let back = unescape(b"a&#13;b").unwrap();
        assert_eq!(back.as_ref(), b"a\rb");
    }

    #[test]
    fn attr_escaping() {
        assert_eq!(escape_attr("a\"b"), "a&quot;b");
        assert_eq!(escape_attr("tab\there"), "tab&#9;here");
        assert_eq!(escape_attr("<&"), "&lt;&amp;");
        assert_eq!(escape_attr("line\nbreak"), "line&#10;break");
        assert_eq!(escape_attr("cr\rhere"), "cr&#13;here");
    }

    #[test]
    fn simd_mask_matches_scalar_predicate() {
        // Every possible byte value, in every position of a 48-byte block,
        // for both charsets: the SIMD scanners and the scalar predicate
        // must agree exactly (this is the satellite invariant).
        for set in [Charset::Text, Charset::Attr] {
            for b in 0..=255u8 {
                for pos in [0usize, 1, 14, 15, 16, 17, 30, 31, 32, 33, 47] {
                    let mut hay = vec![b'a'; 48];
                    hay[pos] = b;
                    let scalar = hay.iter().position(|&x| set.contains(x));
                    for level in [SimdLevel::None, SimdLevel::Sse2, SimdLevel::Avx2] {
                        #[cfg(not(target_arch = "x86_64"))]
                        if level.is_simd() {
                            continue;
                        }
                        #[cfg(target_arch = "x86_64")]
                        if level == SimdLevel::Avx2
                            && bsoap_kernels::detected_level() < SimdLevel::Avx2
                        {
                            continue;
                        }
                        assert_eq!(
                            find_special_at(&hay, set, level),
                            scalar,
                            "byte {b:#04x} at {pos} in {set:?} under {level:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scalar_and_forced_simd_escapes_agree() {
        let samples: &[&str] = &[
            "",
            "short",
            "exactly sixteen!",
            "a string long enough to cross several SIMD blocks without specials",
            "specials <&> scattered \r through a long enough string to vectorize",
            "trailing special at the very end of a long clean run ............&",
            "héllo wörld — unicode straddling blocks: ααααααααααααααααααα<end>",
        ];
        for s in samples {
            let mut scalar = Vec::new();
            let mut simd = Vec::new();
            escape_text_into_with(&mut scalar, s, KernelPolicy::Scalar);
            escape_text_into_with(&mut simd, s, KernelPolicy::ForcedSimd);
            assert_eq!(scalar, simd, "text kernels diverged on {s:?}");
            let mut scalar = Vec::new();
            let mut simd = Vec::new();
            escape_attr_into_with(&mut scalar, s, KernelPolicy::Scalar);
            escape_attr_into_with(&mut simd, s, KernelPolicy::ForcedSimd);
            assert_eq!(scalar, simd, "attr kernels diverged on {s:?}");
        }
    }

    #[test]
    fn unescape_borrows_when_clean() {
        let clean = b"12345.678";
        assert!(matches!(unescape(clean).unwrap(), Cow::Borrowed(_)));
    }

    #[test]
    fn unescape_entities() {
        assert_eq!(unescape(b"a&amp;b").unwrap().as_ref(), b"a&b");
        assert_eq!(
            unescape(b"&lt;&gt;&quot;&apos;").unwrap().as_ref(),
            b"<>\"'"
        );
        assert_eq!(unescape(b"&#65;&#x42;").unwrap().as_ref(), b"AB");
        assert_eq!(unescape(b"&#x1F600;").unwrap().as_ref(), "😀".as_bytes());
    }

    #[test]
    fn unescape_rejects_malformed() {
        assert!(unescape(b"&bogus;").is_err());
        assert!(unescape(b"&amp").is_err());
        assert!(unescape(b"&#;").is_err());
        assert!(unescape(b"&#xZZ;").is_err());
        assert!(unescape(b"&#x110000;").is_err(), "above Unicode range");
    }

    #[test]
    fn escape_unescape_round_trip() {
        for s in [
            "a<b&c>d",
            "\"quoted\"",
            "no specials",
            "&&&",
            "mixed <tag> & \"attr\"",
            "carriage\rreturn and line\nfeed",
        ] {
            let escaped = escape_text(s);
            let back = unescape(escaped.as_bytes()).unwrap();
            assert_eq!(back.as_ref(), s.as_bytes());
        }
    }
}
