//! XML character escaping and entity resolution.
//!
//! Numeric leaf values (the hot path of the paper) never need escaping —
//! the engine writes them raw. Escaping is only on the string path and in
//! the baseline serializers, but it must still be correct and allocation
//! conscious: both escape directions work into caller-provided buffers.

/// Error from [`unescape`]: a malformed or unknown entity reference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EscapeError {
    /// Byte offset of the offending `&`.
    pub at: usize,
}

impl std::fmt::Display for EscapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed entity reference at byte {}", self.at)
    }
}

impl std::error::Error for EscapeError {}

/// Append `text` to `out`, escaping `&`, `<` and `>`.
///
/// `>` only strictly needs escaping in the `]]>` sequence but escaping it
/// unconditionally is the norm for SOAP toolkits and costs nothing here.
pub fn escape_text_into(out: &mut Vec<u8>, text: &str) {
    let bytes = text.as_bytes();
    let mut flushed = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let rep: &[u8] = match b {
            b'&' => b"&amp;",
            b'<' => b"&lt;",
            b'>' => b"&gt;",
            _ => continue,
        };
        out.extend_from_slice(&bytes[flushed..i]);
        out.extend_from_slice(rep);
        flushed = i + 1;
    }
    out.extend_from_slice(&bytes[flushed..]);
}

/// Append `value` to `out`, escaped for a double-quoted attribute.
pub fn escape_attr_into(out: &mut Vec<u8>, value: &str) {
    let bytes = value.as_bytes();
    let mut flushed = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let rep: &[u8] = match b {
            b'&' => b"&amp;",
            b'<' => b"&lt;",
            b'"' => b"&quot;",
            b'\t' => b"&#9;",
            b'\n' => b"&#10;",
            b'\r' => b"&#13;",
            _ => continue,
        };
        out.extend_from_slice(&bytes[flushed..i]);
        out.extend_from_slice(rep);
        flushed = i + 1;
    }
    out.extend_from_slice(&bytes[flushed..]);
}

/// Resolve entity and character references in raw character data.
///
/// Returns `Cow::Borrowed` when no references are present (the common case
/// for numeric content, keeping the differential deserializer copy-free).
pub fn unescape(raw: &[u8]) -> Result<std::borrow::Cow<'_, [u8]>, EscapeError> {
    let Some(first_amp) = raw.iter().position(|&b| b == b'&') else {
        return Ok(std::borrow::Cow::Borrowed(raw));
    };
    let mut out = Vec::with_capacity(raw.len());
    out.extend_from_slice(&raw[..first_amp]);
    let mut i = first_amp;
    while i < raw.len() {
        if raw[i] != b'&' {
            out.push(raw[i]);
            i += 1;
            continue;
        }
        let semi = raw[i..]
            .iter()
            .position(|&b| b == b';')
            .ok_or(EscapeError { at: i })?;
        let entity = &raw[i + 1..i + semi];
        match entity {
            b"amp" => out.push(b'&'),
            b"lt" => out.push(b'<'),
            b"gt" => out.push(b'>'),
            b"quot" => out.push(b'"'),
            b"apos" => out.push(b'\''),
            _ if entity.first() == Some(&b'#') => {
                let code = parse_char_ref(&entity[1..]).ok_or(EscapeError { at: i })?;
                let ch = char::from_u32(code).ok_or(EscapeError { at: i })?;
                let mut buf = [0u8; 4];
                out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
            }
            _ => return Err(EscapeError { at: i }),
        }
        i += semi + 1;
    }
    Ok(std::borrow::Cow::Owned(out))
}

fn parse_char_ref(body: &[u8]) -> Option<u32> {
    if let Some(hex) = body.strip_prefix(b"x") {
        if hex.is_empty() || hex.len() > 6 {
            return None;
        }
        let mut code: u32 = 0;
        for &b in hex {
            code = code * 16 + (b as char).to_digit(16)?;
        }
        Some(code)
    } else {
        if body.is_empty() || body.len() > 7 {
            return None;
        }
        let mut code: u32 = 0;
        for &b in body {
            code = code * 10 + (b as char).to_digit(10)?;
        }
        Some(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    fn escape_text(s: &str) -> String {
        let mut out = Vec::new();
        escape_text_into(&mut out, s);
        String::from_utf8(out).unwrap()
    }

    fn escape_attr(s: &str) -> String {
        let mut out = Vec::new();
        escape_attr_into(&mut out, s);
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn text_escaping() {
        assert_eq!(escape_text("plain"), "plain");
        assert_eq!(escape_text("a<b&c>d"), "a&lt;b&amp;c&gt;d");
        assert_eq!(escape_text(""), "");
        assert_eq!(escape_text("<<>>"), "&lt;&lt;&gt;&gt;");
        assert_eq!(escape_text("quotes \" stay"), "quotes \" stay");
    }

    #[test]
    fn attr_escaping() {
        assert_eq!(escape_attr("a\"b"), "a&quot;b");
        assert_eq!(escape_attr("tab\there"), "tab&#9;here");
        assert_eq!(escape_attr("<&"), "&lt;&amp;");
        assert_eq!(escape_attr("line\nbreak"), "line&#10;break");
    }

    #[test]
    fn unescape_borrows_when_clean() {
        let clean = b"12345.678";
        assert!(matches!(unescape(clean).unwrap(), Cow::Borrowed(_)));
    }

    #[test]
    fn unescape_entities() {
        assert_eq!(unescape(b"a&amp;b").unwrap().as_ref(), b"a&b");
        assert_eq!(
            unescape(b"&lt;&gt;&quot;&apos;").unwrap().as_ref(),
            b"<>\"'"
        );
        assert_eq!(unescape(b"&#65;&#x42;").unwrap().as_ref(), b"AB");
        assert_eq!(unescape(b"&#x1F600;").unwrap().as_ref(), "😀".as_bytes());
    }

    #[test]
    fn unescape_rejects_malformed() {
        assert!(unescape(b"&bogus;").is_err());
        assert!(unescape(b"&amp").is_err());
        assert!(unescape(b"&#;").is_err());
        assert!(unescape(b"&#xZZ;").is_err());
        assert!(unescape(b"&#x110000;").is_err(), "above Unicode range");
    }

    #[test]
    fn escape_unescape_round_trip() {
        for s in [
            "a<b&c>d",
            "\"quoted\"",
            "no specials",
            "&&&",
            "mixed <tag> & \"attr\"",
        ] {
            let escaped = escape_text(s);
            let back = unescape(escaped.as_bytes()).unwrap();
            assert_eq!(back.as_ref(), s.as_bytes());
        }
    }
}
