//! Pull-style XML tokenizer producing byte-range events.
//!
//! Every event carries `Range<usize>` offsets into the original input
//! rather than copied strings. The differential **de**serialization
//! extension (paper §6) depends on this: the server records each leaf's
//! byte range in the previous message, and on the next arrival compares
//! ranges with `memcmp` to skip re-parsing unchanged values.
//!
//! Supported: XML declaration, elements, attributes, character data,
//! comments, the five predefined entities (resolved lazily by
//! [`crate::escape::unescape`], not here). Rejected by design: DTDs
//! (forbidden by SOAP 1.1), processing instructions, and CDATA sections.

use std::ops::Range;

/// One attribute within a start tag; ranges exclude the quotes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attr {
    /// Byte range of the (possibly prefixed) attribute name.
    pub name: Range<usize>,
    /// Byte range of the raw attribute value (entities unresolved).
    pub value: Range<usize>,
}

/// A tokenizer event. All ranges index the input passed to [`PullParser::new`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// `<?xml …?>` declaration (full range including delimiters).
    Decl { range: Range<usize> },
    /// Start tag. `range` spans `<` to `>` inclusive.
    Start {
        /// Byte range of the (possibly prefixed) element name.
        name: Range<usize>,
        /// Attributes in document order.
        attrs: Vec<Attr>,
        /// True for `<name …/>`; a matching [`Event::End`] is still emitted.
        self_closing: bool,
        /// Full tag range.
        range: Range<usize>,
    },
    /// End tag (explicit `</name>` or synthesized after a self-closing tag,
    /// in which case the range is empty and sits at the tag end).
    End {
        /// Byte range of the element name (the start tag's name for
        /// synthesized ends).
        name: Range<usize>,
        /// Full tag range (empty for synthesized ends).
        range: Range<usize>,
    },
    /// Character data between tags (raw; may contain entities, may be
    /// whitespace-only — stuffing produces exactly such runs).
    Text { range: Range<usize> },
    /// A comment (full range).
    Comment { range: Range<usize> },
    /// End of input with all elements balanced.
    Eof,
}

/// Tokenizer error with the byte offset where it was detected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PullError {
    /// Input ended inside a construct.
    UnexpectedEof { at: usize },
    /// Malformed syntax.
    BadSyntax { at: usize, what: &'static str },
    /// End tag does not match the open element.
    MismatchedTag { at: usize },
    /// DTD / PI / CDATA — outside the supported SOAP subset.
    Unsupported { at: usize, what: &'static str },
    /// Input ended with elements still open.
    UnclosedAtEof { open_depth: usize },
}

impl std::fmt::Display for PullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PullError::UnexpectedEof { at } => write!(f, "unexpected end of input at byte {at}"),
            PullError::BadSyntax { at, what } => write!(f, "bad XML syntax at byte {at}: {what}"),
            PullError::MismatchedTag { at } => write!(f, "mismatched end tag at byte {at}"),
            PullError::Unsupported { at, what } => {
                write!(f, "unsupported construct at byte {at}: {what}")
            }
            PullError::UnclosedAtEof { open_depth } => {
                write!(f, "input ended with {open_depth} unclosed element(s)")
            }
        }
    }
}

impl std::error::Error for PullError {}

/// Pull tokenizer over a byte buffer.
pub struct PullParser<'a> {
    input: &'a [u8],
    pos: usize,
    /// Name ranges of currently open elements.
    stack: Vec<Range<usize>>,
    /// Synthesized end event pending after a self-closing start tag.
    pending_end: Option<Range<usize>>,
    eof_emitted: bool,
}

impl<'a> PullParser<'a> {
    /// Create a tokenizer over `input`.
    pub fn new(input: &'a [u8]) -> Self {
        PullParser {
            input,
            pos: 0,
            stack: Vec::new(),
            pending_end: None,
            eof_emitted: false,
        }
    }

    /// The input buffer the event ranges index into.
    pub fn input(&self) -> &'a [u8] {
        self.input
    }

    /// Resolve a range to its bytes.
    pub fn slice(&self, range: &Range<usize>) -> &'a [u8] {
        &self.input[range.clone()]
    }

    /// Current nesting depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Produce the next event.
    pub fn next_event(&mut self) -> Result<Event, PullError> {
        if let Some(name) = self.pending_end.take() {
            self.stack.pop();
            return Ok(Event::End {
                name,
                range: self.pos..self.pos,
            });
        }
        if self.pos >= self.input.len() {
            if !self.stack.is_empty() {
                return Err(PullError::UnclosedAtEof {
                    open_depth: self.stack.len(),
                });
            }
            self.eof_emitted = true;
            return Ok(Event::Eof);
        }
        if self.input[self.pos] != b'<' {
            let start = self.pos;
            while self.pos < self.input.len() && self.input[self.pos] != b'<' {
                self.pos += 1;
            }
            return Ok(Event::Text {
                range: start..self.pos,
            });
        }
        // self.input[self.pos] == b'<'
        let tag_start = self.pos;
        let next = *self
            .input
            .get(self.pos + 1)
            .ok_or(PullError::UnexpectedEof { at: self.pos })?;
        match next {
            b'?' => self.read_decl(tag_start),
            b'!' => self.read_bang(tag_start),
            b'/' => self.read_end_tag(tag_start),
            _ => self.read_start_tag(tag_start),
        }
    }

    fn read_decl(&mut self, start: usize) -> Result<Event, PullError> {
        // `<?xml … ?>` — only the declaration form is accepted.
        if !self.input[start..].starts_with(b"<?xml") {
            return Err(PullError::Unsupported {
                at: start,
                what: "processing instruction",
            });
        }
        let close = find(self.input, start, b"?>").ok_or(PullError::UnexpectedEof { at: start })?;
        self.pos = close + 2;
        Ok(Event::Decl {
            range: start..self.pos,
        })
    }

    fn read_bang(&mut self, start: usize) -> Result<Event, PullError> {
        if self.input[start..].starts_with(b"<!--") {
            let close = find(self.input, start + 4, b"-->")
                .ok_or(PullError::UnexpectedEof { at: start })?;
            self.pos = close + 3;
            return Ok(Event::Comment {
                range: start..self.pos,
            });
        }
        if self.input[start..].starts_with(b"<![CDATA[") {
            return Err(PullError::Unsupported {
                at: start,
                what: "CDATA section",
            });
        }
        Err(PullError::Unsupported {
            at: start,
            what: "DTD (forbidden by SOAP 1.1)",
        })
    }

    fn read_end_tag(&mut self, start: usize) -> Result<Event, PullError> {
        let name_start = start + 2;
        let mut i = name_start;
        while i < self.input.len() && is_name_byte(self.input[i]) {
            i += 1;
        }
        if i == name_start {
            return Err(PullError::BadSyntax {
                at: i,
                what: "empty end-tag name",
            });
        }
        let name = name_start..i;
        i = skip_ws(self.input, i);
        if self.input.get(i) != Some(&b'>') {
            return Err(PullError::BadSyntax {
                at: i,
                what: "expected '>' in end tag",
            });
        }
        let open = self
            .stack
            .pop()
            .ok_or(PullError::MismatchedTag { at: start })?;
        if self.input[open.clone()] != self.input[name.clone()] {
            return Err(PullError::MismatchedTag { at: start });
        }
        self.pos = i + 1;
        Ok(Event::End {
            name,
            range: start..self.pos,
        })
    }

    fn read_start_tag(&mut self, start: usize) -> Result<Event, PullError> {
        let name_start = start + 1;
        let mut i = name_start;
        while i < self.input.len() && is_name_byte(self.input[i]) {
            i += 1;
        }
        if i == name_start {
            return Err(PullError::BadSyntax {
                at: i,
                what: "empty start-tag name",
            });
        }
        let name = name_start..i;
        let mut attrs = Vec::new();
        loop {
            i = skip_ws(self.input, i);
            match self.input.get(i) {
                None => return Err(PullError::UnexpectedEof { at: i }),
                Some(b'>') => {
                    self.pos = i + 1;
                    self.stack.push(name.clone());
                    return Ok(Event::Start {
                        name,
                        attrs,
                        self_closing: false,
                        range: start..self.pos,
                    });
                }
                Some(b'/') => {
                    if self.input.get(i + 1) != Some(&b'>') {
                        return Err(PullError::BadSyntax {
                            at: i,
                            what: "expected '/>'",
                        });
                    }
                    self.pos = i + 2;
                    self.stack.push(name.clone());
                    self.pending_end = Some(name.clone());
                    return Ok(Event::Start {
                        name,
                        attrs,
                        self_closing: true,
                        range: start..self.pos,
                    });
                }
                Some(_) => {
                    let attr = self.read_attr(&mut i)?;
                    attrs.push(attr);
                }
            }
        }
    }

    fn read_attr(&mut self, i: &mut usize) -> Result<Attr, PullError> {
        let name_start = *i;
        while *i < self.input.len() && is_name_byte(self.input[*i]) {
            *i += 1;
        }
        if *i == name_start {
            return Err(PullError::BadSyntax {
                at: *i,
                what: "expected attribute name",
            });
        }
        let name = name_start..*i;
        *i = skip_ws(self.input, *i);
        if self.input.get(*i) != Some(&b'=') {
            return Err(PullError::BadSyntax {
                at: *i,
                what: "expected '=' after attribute name",
            });
        }
        *i = skip_ws(self.input, *i + 1);
        let quote = match self.input.get(*i) {
            Some(&q @ (b'"' | b'\'')) => q,
            _ => {
                return Err(PullError::BadSyntax {
                    at: *i,
                    what: "expected quoted attribute value",
                })
            }
        };
        let value_start = *i + 1;
        let mut j = value_start;
        while j < self.input.len() && self.input[j] != quote {
            j += 1;
        }
        if j >= self.input.len() {
            return Err(PullError::UnexpectedEof { at: value_start });
        }
        *i = j + 1;
        Ok(Attr {
            name,
            value: value_start..j,
        })
    }
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b':' | b'_' | b'-' | b'.') || b >= 0x80
}

fn skip_ws(input: &[u8], mut i: usize) -> usize {
    while i < input.len() && matches!(input[i], b' ' | b'\t' | b'\r' | b'\n') {
        i += 1;
    }
    i
}

fn find(haystack: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(input: &[u8]) -> Vec<Event> {
        let mut p = PullParser::new(input);
        let mut events = Vec::new();
        loop {
            let e = p.next_event().unwrap();
            let done = e == Event::Eof;
            events.push(e);
            if done {
                break;
            }
        }
        events
    }

    fn text_of<'a>(input: &'a [u8], e: &Event) -> &'a [u8] {
        match e {
            Event::Text { range } => &input[range.clone()],
            _ => panic!("not text: {e:?}"),
        }
    }

    #[test]
    fn simple_document() {
        let doc = b"<a><b>hello</b></a>";
        let events = collect(doc);
        assert_eq!(events.len(), 6); // start a, start b, text, end b, end a, eof
        assert_eq!(text_of(doc, &events[2]), b"hello");
    }

    #[test]
    fn declaration_and_attrs() {
        let doc = br#"<?xml version="1.0"?><e a="1" b='two'>x</e>"#;
        let events = collect(doc);
        assert!(matches!(events[0], Event::Decl { .. }));
        let Event::Start { attrs, .. } = &events[1] else {
            panic!()
        };
        assert_eq!(attrs.len(), 2);
        assert_eq!(&doc[attrs[0].name.clone()], b"a");
        assert_eq!(&doc[attrs[0].value.clone()], b"1");
        assert_eq!(&doc[attrs[1].value.clone()], b"two");
    }

    #[test]
    fn self_closing_synthesizes_end() {
        let doc = b"<a><b/></a>";
        let events = collect(doc);
        assert!(matches!(
            &events[1],
            Event::Start {
                self_closing: true,
                ..
            }
        ));
        assert!(matches!(&events[2], Event::End { .. }));
        assert!(matches!(&events[3], Event::End { .. }));
    }

    #[test]
    fn comments_are_events() {
        let doc = b"<a><!-- note --></a>";
        let events = collect(doc);
        assert!(matches!(&events[1], Event::Comment { .. }));
    }

    #[test]
    fn whitespace_stuffing_text_preserved() {
        // The exact byte range of padded values must be recoverable.
        let doc = b"<v>42   </v>";
        let events = collect(doc);
        assert_eq!(text_of(doc, &events[1]), b"42   ");
    }

    #[test]
    fn mismatched_tags_rejected() {
        let mut p = PullParser::new(b"<a></b>");
        p.next_event().unwrap();
        assert!(matches!(
            p.next_event(),
            Err(PullError::MismatchedTag { .. })
        ));
    }

    #[test]
    fn unclosed_at_eof_rejected() {
        let mut p = PullParser::new(b"<a>");
        p.next_event().unwrap();
        assert!(matches!(
            p.next_event(),
            Err(PullError::UnclosedAtEof { open_depth: 1 })
        ));
    }

    #[test]
    fn dtd_rejected() {
        let mut p = PullParser::new(b"<!DOCTYPE html><a/>");
        assert!(matches!(p.next_event(), Err(PullError::Unsupported { .. })));
    }

    #[test]
    fn cdata_rejected() {
        let mut p = PullParser::new(b"<a><![CDATA[x]]></a>");
        p.next_event().unwrap();
        assert!(matches!(p.next_event(), Err(PullError::Unsupported { .. })));
    }

    #[test]
    fn pi_rejected() {
        let mut p = PullParser::new(b"<?php echo ?><a/>");
        assert!(matches!(p.next_event(), Err(PullError::Unsupported { .. })));
    }

    #[test]
    fn prefixed_names() {
        let doc = b"<SOAP-ENV:Envelope xmlns:SOAP-ENV=\"http://schemas.xmlsoap.org/soap/envelope/\"></SOAP-ENV:Envelope>";
        let events = collect(doc);
        let Event::Start { name, attrs, .. } = &events[0] else {
            panic!()
        };
        assert_eq!(&doc[name.clone()], b"SOAP-ENV:Envelope");
        assert_eq!(&doc[attrs[0].name.clone()], b"xmlns:SOAP-ENV");
    }

    #[test]
    fn truncated_inputs_error_not_panic() {
        for doc in [
            &b"<"[..],
            b"<a",
            b"<a href",
            b"<a href=",
            b"<a href=\"x",
            b"</",
            b"<a><!--",
        ] {
            let mut p = PullParser::new(doc);
            let mut guard = 0;
            loop {
                match p.next_event() {
                    Err(_) => break,
                    Ok(Event::Eof) => break,
                    Ok(_) => {}
                }
                guard += 1;
                assert!(guard < 100, "parser loop on {doc:?}");
            }
        }
    }
}
