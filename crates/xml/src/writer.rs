//! Streaming XML writer.
//!
//! Used by the baseline serializers (which rebuild every message from
//! scratch — exactly what the paper's differential technique avoids) and by
//! the template builder to lay down envelope skeletons. Writes into a
//! caller-owned `Vec<u8>`; well-formedness (tag balance) is tracked with an
//! element stack and enforced with debug assertions plus a fallible
//! `finish`.

use crate::escape::{escape_attr_into, escape_text_into};

/// A streaming XML writer over a byte buffer.
///
/// ```
/// use bsoap_xml::XmlWriter;
/// let mut w = XmlWriter::new();
/// w.declaration();
/// w.start("root");
/// w.attr("id", "1");
/// w.close_start_tag();
/// w.text("hi & bye");
/// w.end("root");
/// assert_eq!(
///     w.finish().unwrap(),
///     b"<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<root id=\"1\">hi &amp; bye</root>"
/// );
/// ```
#[derive(Debug, Default)]
pub struct XmlWriter {
    out: Vec<u8>,
    stack: Vec<String>,
    /// True when a start tag is open (`<name` written, `>` pending).
    tag_open: bool,
}

impl XmlWriter {
    /// New writer with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// New writer reusing `buf` (cleared) — the workhorse-buffer pattern
    /// baseline serializers use per send.
    pub fn with_buffer(mut buf: Vec<u8>) -> Self {
        buf.clear();
        XmlWriter {
            out: buf,
            stack: Vec::new(),
            tag_open: false,
        }
    }

    /// Emit the XML declaration. Call first.
    pub fn declaration(&mut self) {
        debug_assert!(self.out.is_empty());
        self.out
            .extend_from_slice(b"<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    }

    /// Open a start tag: `<name`. Follow with [`attr`](Self::attr) calls and
    /// a [`close_start_tag`](Self::close_start_tag), or let the next content
    /// call close it implicitly.
    pub fn start(&mut self, name: &str) {
        self.seal_tag();
        self.out.push(b'<');
        self.out.extend_from_slice(name.as_bytes());
        self.stack.push(name.to_owned());
        self.tag_open = true;
    }

    /// Add an attribute to the currently open start tag.
    pub fn attr(&mut self, name: &str, value: &str) {
        debug_assert!(self.tag_open, "attr() outside an open start tag");
        self.out.push(b' ');
        self.out.extend_from_slice(name.as_bytes());
        self.out.extend_from_slice(b"=\"");
        escape_attr_into(&mut self.out, value);
        self.out.push(b'"');
    }

    /// Explicitly close the open start tag with `>`.
    pub fn close_start_tag(&mut self) {
        self.seal_tag();
    }

    fn seal_tag(&mut self) {
        if self.tag_open {
            self.out.push(b'>');
            self.tag_open = false;
        }
    }

    /// Write escaped character data.
    pub fn text(&mut self, text: &str) {
        self.seal_tag();
        escape_text_into(&mut self.out, text);
    }

    /// Write raw, pre-escaped bytes (numeric conversions are already clean).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.seal_tag();
        self.out.extend_from_slice(bytes);
    }

    /// Close the current element. `name` must match the open element.
    pub fn end(&mut self, name: &str) {
        let top = self.stack.pop().expect("end() with no open element");
        debug_assert_eq!(top, name, "mismatched end tag");
        if self.tag_open {
            // <name/> — empty element form.
            self.out.extend_from_slice(b"/>");
            self.tag_open = false;
        } else {
            self.out.extend_from_slice(b"</");
            self.out.extend_from_slice(name.as_bytes());
            self.out.push(b'>');
        }
    }

    /// Convenience: `<name>text</name>`.
    pub fn leaf(&mut self, name: &str, text: &str) {
        self.start(name);
        self.text(text);
        self.end(name);
    }

    /// Bytes written so far (elements may still be open).
    pub fn as_bytes(&self) -> &[u8] {
        &self.out
    }

    /// Current output length in bytes.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Finish writing, returning the buffer.
    ///
    /// Fails if any element is still open — the well-formedness guarantee.
    pub fn finish(mut self) -> Result<Vec<u8>, UnclosedElements> {
        self.seal_tag();
        if self.stack.is_empty() {
            Ok(self.out)
        } else {
            Err(UnclosedElements { open: self.stack })
        }
    }
}

/// Error from [`XmlWriter::finish`]: elements left open.
#[derive(Debug)]
pub struct UnclosedElements {
    /// Names of the still-open elements, outermost first.
    pub open: Vec<String>,
}

impl std::fmt::Display for UnclosedElements {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unclosed elements: {}", self.open.join(" > "))
    }
}

impl std::error::Error for UnclosedElements {}

#[cfg(test)]
mod tests {
    use super::*;

    fn finish_str(w: XmlWriter) -> String {
        String::from_utf8(w.finish().unwrap()).unwrap()
    }

    #[test]
    fn simple_document() {
        let mut w = XmlWriter::new();
        w.start("a");
        w.start("b");
        w.text("x");
        w.end("b");
        w.end("a");
        assert_eq!(finish_str(w), "<a><b>x</b></a>");
    }

    #[test]
    fn attributes_and_escaping() {
        let mut w = XmlWriter::new();
        w.start("e");
        w.attr("k", "a\"b<c");
        w.text("1 < 2");
        w.end("e");
        assert_eq!(finish_str(w), "<e k=\"a&quot;b&lt;c\">1 &lt; 2</e>");
    }

    #[test]
    fn empty_element_form() {
        let mut w = XmlWriter::new();
        w.start("empty");
        w.attr("a", "1");
        w.end("empty");
        assert_eq!(finish_str(w), "<empty a=\"1\"/>");
    }

    #[test]
    fn leaf_helper() {
        let mut w = XmlWriter::new();
        w.start("root");
        w.leaf("item", "42");
        w.leaf("item", "43");
        w.end("root");
        assert_eq!(finish_str(w), "<root><item>42</item><item>43</item></root>");
    }

    #[test]
    fn unclosed_detection() {
        let mut w = XmlWriter::new();
        w.start("open");
        let err = w.finish().unwrap_err();
        assert_eq!(err.open, vec!["open".to_owned()]);
    }

    #[test]
    fn raw_bypasses_escaping() {
        let mut w = XmlWriter::new();
        w.start("n");
        w.raw(b"3.14");
        w.end("n");
        assert_eq!(finish_str(w), "<n>3.14</n>");
    }

    #[test]
    fn buffer_reuse() {
        let mut w = XmlWriter::new();
        w.start("x");
        w.end("x");
        let buf = w.finish().unwrap();
        let cap = buf.capacity();
        let mut w2 = XmlWriter::with_buffer(buf);
        w2.start("y");
        w2.end("y");
        let buf2 = w2.finish().unwrap();
        assert_eq!(buf2, b"<y/>");
        assert!(buf2.capacity() >= cap.min(4));
    }
}
