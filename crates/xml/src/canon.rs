//! Pad-stripping canonicalization.
//!
//! Differential serialization deliberately leaves whitespace padding
//! between a field's close tag and the next open tag (stuffing, and the
//! close-tag shift that follows writing a shorter value). The XML spec and
//! SOAP both declare this inter-element whitespace insignificant, so two
//! messages are equivalent iff they are byte-identical after stripping it.
//! [`strip_pad`] performs exactly that stripping and nothing else, so the
//! core correctness theorem — differential flush ≡ from-scratch full
//! serialization — can be asserted as `strip_pad(a) == strip_pad(b)`.

/// Remove padding spaces from whitespace-only spans between a `>` and the
/// following `<`.
///
/// Only ASCII spaces in spans containing nothing but spaces and newlines
/// are removed (padding is always written as `b' '`); newlines and all
/// non-whitespace text content are preserved. Caveat: a string *value*
/// consisting entirely of spaces is indistinguishable from padding and is
/// also stripped — callers comparing messages with such values must fall
/// back to parsing. Detecting spans is safe because the
/// [`escape`](crate::escape) module always escapes `>` in character data,
/// and attribute values written by this stack never contain a raw `>`.
pub fn strip_pad(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        out.push(b);
        i += 1;
        if b != b'>' {
            continue;
        }
        // Inter-tag span: bytes up to the next '<' (or end of input).
        let span_end = bytes[i..]
            .iter()
            .position(|&c| c == b'<')
            .map_or(bytes.len(), |p| i + p);
        let span = &bytes[i..span_end];
        if span.iter().all(|&c| c == b' ' || c == b'\n') {
            // Whitespace-only span: padding. Drop the spaces, keep the
            // newlines (pretty-print structure written identically by the
            // full and differential paths).
            out.extend(span.iter().copied().filter(|&c| c == b'\n'));
        } else {
            // Real character data — preserved verbatim.
            out.extend_from_slice(span);
        }
        i = span_end;
    }
    out
}

/// `strip_pad` equality — the canonical message-equivalence predicate.
pub fn pad_equivalent(a: &[u8], b: &[u8]) -> bool {
    strip_pad(a) == strip_pad(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_pad_after_close_tag() {
        assert_eq!(strip_pad(b"<a>1</a>   <b>2</b>"), b"<a>1</a><b>2</b>");
    }

    #[test]
    fn preserves_text_spaces() {
        assert_eq!(strip_pad(b"<a>1 2 3</a>"), b"<a>1 2 3</a>");
    }

    #[test]
    fn preserves_attr_spaces_inside_tags() {
        assert_eq!(
            strip_pad(br#"<a x="p q" y="r">v</a>"#),
            br#"<a x="p q" y="r">v</a>"#
        );
    }

    #[test]
    fn preserves_newlines_between_tags() {
        assert_eq!(strip_pad(b"<a>1</a>  \n  <b>"), b"<a>1</a>\n<b>");
    }

    #[test]
    fn leading_prolog_untouched() {
        let doc = b"<?xml version=\"1.0\"?>\n<r>  </r>";
        assert_eq!(strip_pad(doc), b"<?xml version=\"1.0\"?>\n<r></r>");
    }

    #[test]
    fn pad_equivalent_symmetric() {
        assert!(pad_equivalent(b"<a>1</a>  <b/>", b"<a>1</a><b/>"));
        assert!(!pad_equivalent(b"<a>1</a>", b"<a>2</a>"));
    }

    #[test]
    fn escaped_gt_in_text_not_a_tag_end() {
        // `>` in text is always written as `&gt;` by this stack, so a raw
        // one never appears; the entity form must not trigger stripping.
        assert_eq!(strip_pad(b"<a>x&gt; y</a>"), b"<a>x&gt; y</a>");
    }

    #[test]
    fn empty_input() {
        assert_eq!(strip_pad(b""), b"");
    }
}
