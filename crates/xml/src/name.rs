//! Qualified names (`prefix:local`) and `NCName` validation.
//!
//! SOAP messages are namespace-heavy (`SOAP-ENV:Envelope`,
//! `SOAP-ENC:arrayType`, `xsi:type`…). The engine compares names as raw
//! prefixed strings — templates always emit the same prefixes, so full
//! namespace resolution is only needed at the parse boundary, where
//! [`split_qname`] is enough for the fixed prefix vocabulary SOAP 1.1 uses.

/// Error from [`validate_ncname`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NameError {
    /// The name was empty.
    Empty,
    /// An invalid character at the given byte offset.
    InvalidChar { at: usize },
    /// More than one `:` found in a qualified name.
    ExtraColon { at: usize },
}

impl std::fmt::Display for NameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NameError::Empty => write!(f, "empty name"),
            NameError::InvalidChar { at } => write!(f, "invalid name character at byte {at}"),
            NameError::ExtraColon { at } => write!(f, "unexpected ':' at byte {at}"),
        }
    }
}

impl std::error::Error for NameError {}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_name_char(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
}

/// Validate an `NCName` (a name with no colon).
///
/// ASCII-strict for the start/continue classes plus a blanket allowance for
/// multi-byte UTF-8 — SOAP vocabularies are ASCII in practice.
pub fn validate_ncname(name: &[u8]) -> Result<(), NameError> {
    let Some(&first) = name.first() else {
        return Err(NameError::Empty);
    };
    if !is_name_start(first) {
        return Err(NameError::InvalidChar { at: 0 });
    }
    for (i, &b) in name.iter().enumerate().skip(1) {
        if b == b':' {
            return Err(NameError::ExtraColon { at: i });
        }
        if !is_name_char(b) {
            return Err(NameError::InvalidChar { at: i });
        }
    }
    Ok(())
}

/// Split a qualified name into `(prefix, local)`; prefix is empty when the
/// name is unprefixed. Validates both parts as `NCName`s.
pub fn split_qname(qname: &[u8]) -> Result<(&[u8], &[u8]), NameError> {
    match qname.iter().position(|&b| b == b':') {
        None => {
            validate_ncname(qname)?;
            Ok((b"", qname))
        }
        Some(pos) => {
            let (prefix, rest) = qname.split_at(pos);
            let local = &rest[1..];
            validate_ncname(prefix)?;
            validate_ncname(local).map_err(|e| match e {
                NameError::InvalidChar { at } => NameError::InvalidChar { at: at + pos + 1 },
                NameError::ExtraColon { at } => NameError::ExtraColon { at: at + pos + 1 },
                NameError::Empty => NameError::Empty,
            })?;
            Ok((prefix, local))
        }
    }
}

/// The well-known SOAP 1.1 namespace prefixes the stack emits.
pub mod prefixes {
    /// SOAP envelope namespace prefix.
    pub const SOAP_ENV: &str = "SOAP-ENV";
    /// SOAP encoding namespace prefix.
    pub const SOAP_ENC: &str = "SOAP-ENC";
    /// XML Schema instance prefix.
    pub const XSI: &str = "xsi";
    /// XML Schema datatypes prefix.
    pub const XSD: &str = "xsd";
}

/// The namespace URIs matching [`prefixes`].
pub mod uris {
    /// SOAP 1.1 envelope namespace.
    pub const SOAP_ENV: &str = "http://schemas.xmlsoap.org/soap/envelope/";
    /// SOAP 1.1 encoding namespace.
    pub const SOAP_ENC: &str = "http://schemas.xmlsoap.org/soap/encoding/";
    /// XML Schema instance namespace.
    pub const XSI: &str = "http://www.w3.org/2001/XMLSchema-instance";
    /// XML Schema datatypes namespace.
    pub const XSD: &str = "http://www.w3.org/2001/XMLSchema";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_ncnames() {
        for n in ["Envelope", "arrayType", "_x", "a-b.c", "item2", "SOAP-ENV"] {
            assert_eq!(validate_ncname(n.as_bytes()), Ok(()), "{n}");
        }
    }

    #[test]
    fn invalid_ncnames() {
        assert_eq!(validate_ncname(b""), Err(NameError::Empty));
        assert_eq!(
            validate_ncname(b"1abc"),
            Err(NameError::InvalidChar { at: 0 })
        );
        assert_eq!(
            validate_ncname(b"-abc"),
            Err(NameError::InvalidChar { at: 0 })
        );
        assert_eq!(
            validate_ncname(b"a b"),
            Err(NameError::InvalidChar { at: 1 })
        );
        assert_eq!(
            validate_ncname(b"a:b"),
            Err(NameError::ExtraColon { at: 1 })
        );
    }

    #[test]
    fn qname_splitting() {
        assert_eq!(
            split_qname(b"SOAP-ENV:Envelope").unwrap(),
            (&b"SOAP-ENV"[..], &b"Envelope"[..])
        );
        assert_eq!(split_qname(b"item").unwrap(), (&b""[..], &b"item"[..]));
        assert!(split_qname(b"a:b:c").is_err());
        assert!(split_qname(b":b").is_err());
        assert!(split_qname(b"a:").is_err());
    }

    #[test]
    fn soap_vocabulary_is_valid() {
        for p in [
            prefixes::SOAP_ENV,
            prefixes::SOAP_ENC,
            prefixes::XSI,
            prefixes::XSD,
        ] {
            assert!(validate_ncname(p.as_bytes()).is_ok());
        }
    }
}
