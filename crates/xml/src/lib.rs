//! # bsoap-xml — XML substrate for bSOAP
//!
//! Minimal, fast XML infrastructure built from scratch for the SOAP 1.1
//! stack:
//!
//! * [`escape`] — text/attribute escaping and entity resolution,
//! * [`name`] — qualified names and `NCName` validation,
//! * [`writer`] — a streaming writer used by the baseline (gSOAP-like /
//!   XSOAP-like) serializers and for envelope skeletons,
//! * [`pull`] — a pull tokenizer producing events with *byte ranges* into
//!   the original buffer. Ranges (not copies) are what make the
//!   differential **de**serialization extension possible: the server can
//!   memcmp a leaf's byte range against the previous message and skip
//!   re-parsing entirely.
//!
//! Scope: the subset of XML 1.0 that SOAP 1.1 section-5 encoding uses —
//! elements, attributes, character data, comments, XML declarations, and
//! the five predefined entities plus numeric character references. DTDs,
//! processing instructions and CDATA are intentionally rejected (SOAP
//! forbids DTDs outright).

#![deny(unsafe_op_in_unsafe_fn)]

pub mod canon;
pub mod escape;
pub mod name;
pub mod pull;
pub mod writer;

pub use canon::{pad_equivalent, strip_pad};
pub use escape::{
    escape_attr_into, escape_attr_into_with, escape_text_into, escape_text_into_with, find_special,
    find_special_at, unescape, Charset, EscapeError,
};
pub use name::{split_qname, validate_ncname, NameError};
pub use pull::{Event, PullError, PullParser};
pub use writer::XmlWriter;
