//! Adversarial fuzz for the compact-binary decoder (DESIGN §3.15).
//!
//! The binary lane's decoder faces attacker-controlled bytes the moment
//! a server advertises `X-BSOAP-Accept: bin1`, so its contract is
//! absolute: *every* input — truncated, bit-flipped, spliced,
//! length-lying, or pure noise — returns a typed [`DeserError`] or a
//! valid decode; it never panics, never reads out of bounds, and never
//! lets a hostile length prefix drive an allocation past the message's
//! own size.
//!
//! The corpus is deterministic: every mutation stream derives from the
//! fixed xorshift seeds below, so a failure here is a regression anyone
//! can replay byte-for-byte — no `.proptest-regressions` file or seed
//! hunting needed. The proptest block at the bottom adds randomized
//! schedules on top (its failures print the generated case).

use bsoap::convert::ScalarKind;
use bsoap::deser::{parse_binary_envelope, BinaryDiffDeserializer, DeserError, DiffOutcome};
use bsoap::{mio, EngineConfig, MessageTemplate, OpDesc, ParamDesc, TypeDesc, Value, WireFormat};
use proptest::prelude::*;

/// Fixed seeds: the whole corpus replays deterministically from these.
const SEEDS: [u64; 4] = [
    0x9E37_79B9_7F4A_7C15,
    0xBF58_476D_1CE4_E5B9,
    0x94D0_49BB_1331_11EB,
    0x2545_F491_4F6C_DD1D,
];

/// Mutations per seed per corpus frame.
const ROUNDS: usize = 1024;

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn bin_cfg() -> EngineConfig {
    EngineConfig::paper_default().with_wire_format(WireFormat::CompactBinary)
}

/// The operation every corpus frame is decoded against: one leaf of
/// every family the format defines.
fn fuzz_op() -> OpDesc {
    OpDesc::new(
        "fuzzTarget",
        "urn:fuzz",
        vec![
            ParamDesc {
                name: "i".into(),
                desc: TypeDesc::Scalar(ScalarKind::Int),
            },
            ParamDesc {
                name: "l".into(),
                desc: TypeDesc::Scalar(ScalarKind::Long),
            },
            ParamDesc {
                name: "b".into(),
                desc: TypeDesc::Scalar(ScalarKind::Bool),
            },
            ParamDesc {
                name: "xs".into(),
                desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
            },
            ParamDesc {
                name: "mios".into(),
                desc: TypeDesc::array_of(TypeDesc::mio()),
            },
            ParamDesc {
                name: "tag".into(),
                desc: TypeDesc::Scalar(ScalarKind::Str),
            },
        ],
    )
}

fn frame(args: &[Value]) -> Vec<u8> {
    MessageTemplate::build(bin_cfg(), &fuzz_op(), args)
        .unwrap()
        .to_bytes()
}

/// Valid frames the mutators start from — including one whose string
/// shrank, so a pad run sits mid-message.
fn corpus() -> Vec<Vec<u8>> {
    let op = fuzz_op();
    let base = vec![
        Value::Int(-7),
        Value::Long(1 << 40),
        Value::Bool(true),
        Value::DoubleArray(vec![0.5, -1.25, 3.75]),
        Value::Array(vec![mio(1, -2, 0.125), mio(3, 4, -9.5)]),
        Value::Str("payload".into()),
    ];
    let mut frames = vec![
        frame(&base),
        frame(&[
            Value::Int(0),
            Value::Long(0),
            Value::Bool(false),
            Value::DoubleArray(Vec::new()),
            Value::Array(Vec::new()),
            Value::Str(String::new()),
        ]),
    ];
    // Shrink the string and one array so stuffing pads appear.
    let mut tpl = MessageTemplate::build(bin_cfg(), &op, &base).unwrap();
    let mut shrunk = base;
    shrunk[5] = Value::Str("p".into());
    shrunk[3] = Value::DoubleArray(vec![0.5]);
    tpl.update_args(&shrunk).unwrap();
    tpl.flush();
    frames.push(tpl.to_bytes());
    frames
}

/// Feed `bytes` to both decoder entry points; the only acceptable
/// outcomes are a typed error or a clean decode.
fn probe(bytes: &[u8], diff: &mut BinaryDiffDeserializer) {
    let op = fuzz_op();
    match parse_binary_envelope(bytes, &op) {
        Ok(vals) => assert_eq!(vals.len(), op.params.len()),
        Err(e) => {
            // Typed, displayable, and categorized.
            assert!(
                matches!(e, DeserError::Binary { .. } | DeserError::Shape { .. }),
                "unexpected error category: {e}"
            );
            let _ = e.to_string();
        }
    }
    let _ = diff.deserialize(bytes);
}

#[test]
fn mutated_frames_never_panic_and_errors_are_typed() {
    let corpus = corpus();
    let mut diff = BinaryDiffDeserializer::new(fuzz_op());
    let valid = &corpus[0];

    for &seed in &SEEDS {
        let mut rng = XorShift(seed);
        for base in &corpus {
            for _ in 0..ROUNDS {
                let mut m = base.clone();
                match rng.below(6) {
                    // Flip a single bit.
                    0 => {
                        let i = rng.below(m.len());
                        m[i] ^= 1 << rng.below(8);
                    }
                    // Overwrite a byte with a chosen value (tag bytes,
                    // pad, extremes — the interesting constants).
                    1 => {
                        let i = rng.below(m.len());
                        let palette = [
                            0x00, 0x01, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0B, 0x20, 0x7F, 0xFF,
                        ];
                        m[i] = palette[rng.below(palette.len())];
                    }
                    // Truncate.
                    2 => m.truncate(rng.below(m.len())),
                    // Append noise.
                    3 => {
                        for _ in 0..rng.below(9) {
                            m.push(rng.next() as u8);
                        }
                    }
                    // Zero out a range (kills length prefixes mid-frame).
                    4 => {
                        let start = rng.below(m.len());
                        let end = (start + rng.below(16)).min(m.len());
                        m[start..end].iter_mut().for_each(|b| *b = 0);
                    }
                    // Splice the tail of another corpus frame on.
                    _ => {
                        let other = &corpus[rng.below(corpus.len())];
                        let cut = rng.below(m.len());
                        let graft = rng.below(other.len());
                        m.truncate(cut);
                        m.extend_from_slice(&other[graft..]);
                    }
                }
                probe(&m, &mut diff);
            }
        }
        // The persistent differential decoder must survive the abuse:
        // after any error stream it still decodes a valid frame.
        let (vals, _) = diff.deserialize(valid).expect("decoder wedged by fuzz");
        assert_eq!(vals.len(), fuzz_op().params.len());
    }
}

#[test]
fn pure_noise_never_panics() {
    let mut diff = BinaryDiffDeserializer::new(fuzz_op());
    for &seed in &SEEDS {
        let mut rng = XorShift(seed ^ 0xDEAD_BEEF);
        for _ in 0..ROUNDS {
            let len = rng.below(256);
            let mut m: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
            // Half the time, lead with real magic so the fuzz reaches
            // past the first gate.
            if rng.below(2) == 0 && m.len() >= 4 {
                m[..4].copy_from_slice(b"BSB1");
            }
            probe(&m, &mut diff);
        }
    }
}

/// Hand-built frames whose length prefixes lie — each must die with a
/// typed error *before* any allocation sized by the lie.
#[test]
fn length_lying_frames_are_rejected_without_overallocation() {
    let op = fuzz_op();
    let good = corpus().remove(0);

    // String length claims u32::MAX.
    let tag_pos = good
        .windows(5)
        .position(|w| w[0] == 0x05)
        .map(|p| p + 1)
        .unwrap();
    let mut bad = good.clone();
    bad[tag_pos..tag_pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let Err(e) = parse_binary_envelope(&bad, &op) else {
        panic!("lying string length accepted");
    };
    assert!(e.to_string().contains("exceeds"), "{e}");

    // Array count claims more elements than the bytes can hold.
    // ARRAY_BEGIN + TAG_INT + count 3 LE — the xs array, matched by its
    // full prefix so neither the param-count byte (also 0x06) nor a
    // payload byte can alias it.
    let arr_pos = good
        .windows(6)
        .position(|w| w == [0x06, 0x01, 0x03, 0x00, 0x00, 0x00])
        .unwrap();
    let count_pos = arr_pos + 2;
    let mut bad = good.clone();
    let lie = (bad.len() as u32).to_le_bytes();
    bad[count_pos..count_pos + 4].copy_from_slice(&lie);
    assert!(parse_binary_envelope(&bad, &op).is_err());

    // Op-name length prefix pointing past the end of the buffer.
    let mut bad = good.clone();
    bad[4..6].copy_from_slice(&u16::MAX.to_le_bytes());
    assert!(parse_binary_envelope(&bad, &op).is_err());

    // Param count mismatch.
    let name_len = u16::from_le_bytes([good[4], good[5]]) as usize;
    let mut bad = good.clone();
    bad[6 + name_len] = 0xFE;
    assert!(matches!(
        parse_binary_envelope(&bad, &op),
        Err(DeserError::Shape { .. })
    ));

    // Bool payload outside {0, 1}.
    let bool_pos = good.windows(1).position(|w| w[0] == 0x04).unwrap() + 1;
    let mut bad = good;
    bad[bool_pos] = 2;
    assert!(parse_binary_envelope(&bad, &op).is_err());
}

/// A decode error must not poison the differential decoder's retained
/// state: the content-match shortcut still fires for the last *good*
/// message.
#[test]
fn diff_decoder_state_survives_poison_frames() {
    let mut diff = BinaryDiffDeserializer::new(fuzz_op());
    let good = corpus().remove(0);
    diff.deserialize(&good).unwrap();

    let mut poison = good.clone();
    poison.truncate(poison.len() / 2);
    assert!(diff.deserialize(&poison).is_err());

    let (_, outcome) = diff.deserialize(&good).unwrap();
    assert_eq!(
        outcome,
        DiffOutcome::Identical,
        "retained reference lost after a poison frame"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Randomized mutation schedules on top of the fixed corpus: any
    /// cut/splice/overwrite combination decodes or errors, never panics.
    #[test]
    fn random_mutation_schedules_never_panic(
        picks in prop::collection::vec((0usize..3, any::<u16>(), any::<u8>()), 1..24),
        noise in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let corpus = corpus();
        let mut diff = BinaryDiffDeserializer::new(fuzz_op());
        let mut m = corpus[0].clone();
        for (kind, pos, byte) in picks {
            let pos = pos as usize % m.len().max(1);
            match kind {
                0 if !m.is_empty() => m[pos] = byte,
                1 => m.truncate(pos),
                _ => {
                    m.splice(pos..pos, noise.iter().copied());
                }
            }
            probe(&m, &mut diff);
        }
    }
}
