//! Cross-crate integration: client → transport → server → deserializer.
//!
//! These tests exercise the full stack the way the paper's measurement
//! harness does — real sockets, real framing — and assert *byte-level*
//! agreement between what the differential client ships and what a fresh
//! serialization would have shipped, then close the loop by parsing the
//! collected wire bytes back into values.

use bsoap::baseline::GSoapLike;
use bsoap::convert::ScalarKind;
use bsoap::deser::{parse_envelope, DiffDeserializer, DiffOutcome};
use bsoap::transport::http::{HttpVersion, RequestConfig};
use bsoap::transport::tcp::{Framing, TcpTransport};
use bsoap::transport::{ServerCore, ServerMode, ServerOptions, TestServer, Transport};
use bsoap::xml::strip_pad;
use bsoap::{mio, Client, EngineConfig, OpDesc, SendTier, TypeDesc, Value, WidthPolicy};

fn doubles_op() -> OpDesc {
    OpDesc::single(
        "send",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
    )
}

/// Every server core available on this platform: each end-to-end
/// guarantee below is asserted against all of them from one test body,
/// proving the event loop is a drop-in replacement for the worker pool.
fn cores() -> Vec<ServerCore> {
    if bsoap::transport::poller::supported() {
        vec![ServerCore::WorkerPool, ServerCore::EventLoop]
    } else {
        vec![ServerCore::WorkerPool]
    }
}

fn opts_on(core: ServerCore) -> ServerOptions {
    ServerOptions {
        core,
        ..ServerOptions::default()
    }
}

#[test]
fn raw_tcp_bytes_match_fresh_serialization() {
    for core in cores() {
        let server = TestServer::spawn_with(ServerMode::Discard, opts_on(core)).unwrap();
        let mut t = TcpTransport::connect(server.addr(), Framing::Raw).unwrap();
        let op = doubles_op();
        let mut client = Client::with_defaults();

        let mut xs = vec![1.5, 2.5, 3.5];
        let mut expected_total = 0u64;
        let mut g = GSoapLike::new();
        for step in 0..5 {
            xs[step % 3] += 1.0;
            let r = client
                .call("tcp://peer", &op, &[Value::DoubleArray(xs.clone())], &mut t)
                .unwrap();
            expected_total += r.bytes as u64;
            // The differential message must parse to the same values a full
            // serializer would produce.
            let full = g
                .serialize(&op, &[Value::DoubleArray(xs.clone())])
                .unwrap()
                .to_vec();
            assert_eq!(
                parse_envelope(&full, &op).unwrap(),
                vec![Value::DoubleArray(xs.clone())]
            );
        }
        t.finish().unwrap();
        drop(t);
        let stats = server.stop();
        assert_eq!(stats.bytes_received, expected_total, "core {core:?}");
    }
}

#[test]
fn http_collect_round_trip_all_tiers() {
    for core in cores() {
        let server = TestServer::spawn_with(ServerMode::Collect, opts_on(core)).unwrap();
        let cfg = RequestConfig::loopback(HttpVersion::Http11Length);
        let mut t = TcpTransport::connect(server.addr(), Framing::Http(cfg)).unwrap();
        let op = doubles_op();
        let mut client =
            Client::new(EngineConfig::paper_default().with_wire_format(bsoap::WireFormat::SoapXml));

        let sequences: Vec<Vec<f64>> = vec![
            vec![1.5, 2.5, 3.5],      // first-time
            vec![1.5, 2.5, 3.5],      // content match
            vec![9.5, 2.5, 3.5],      // perfect structural
            vec![9.5, 2.5, 3.5, 4.5], // partial structural (grow)
            vec![9.5, 2.5],           // partial structural (shrink)
        ];
        let expected_tiers = [
            SendTier::FirstTime,
            SendTier::ContentMatch,
            SendTier::PerfectStructural,
            SendTier::PartialStructural,
            SendTier::PartialStructural,
        ];
        for (xs, want) in sequences.iter().zip(expected_tiers) {
            let r = client
                .call_via("http://svc", &op, &[Value::DoubleArray(xs.clone())], |s| {
                    t.send_message(s)
                })
                .unwrap();
            assert_eq!(r.tier, want, "core {core:?}");
            let (status, _) = bsoap::transport::http::read_response(t.stream()).unwrap();
            assert_eq!(status, 200, "core {core:?}");
        }
        t.finish().unwrap();
        drop(t);

        let requests = server.stop_collecting();
        assert_eq!(requests.len(), sequences.len(), "core {core:?}");
        for (req, xs) in requests.iter().zip(&sequences) {
            assert_eq!(req.head.method, "POST");
            let args = parse_envelope(&req.body, &op).unwrap();
            assert_eq!(args, vec![Value::DoubleArray(xs.clone())], "core {core:?}");
        }
    }
}

#[test]
fn chunked_http_streams_multi_chunk_templates() {
    // Small chunks force a multi-chunk template; HTTP/1.1 chunked framing
    // maps each template chunk onto a wire chunk.
    for core in cores() {
        let server = TestServer::spawn_with(ServerMode::Collect, opts_on(core)).unwrap();
        let cfg = RequestConfig::loopback(HttpVersion::Http11Chunked);
        let mut t = TcpTransport::connect(server.addr(), Framing::Http(cfg)).unwrap();
        let config = EngineConfig::paper_default()
            .with_wire_format(bsoap::WireFormat::SoapXml)
            .with_chunk(bsoap::ChunkConfig {
                initial_size: 1024,
                split_threshold: 2048,
                reserve: 64,
            });
        let op = doubles_op();
        let mut client = Client::new(config);

        let xs: Vec<f64> = (0..2000).map(|i| i as f64 + 0.5).collect();
        client
            .call_via("http://svc", &op, &[Value::DoubleArray(xs.clone())], |s| {
                assert!(
                    s.len() > 1,
                    "template should be multi-chunk, got {} slices",
                    s.len()
                );
                t.send_message(s)
            })
            .unwrap();
        let (status, _) = bsoap::transport::http::read_response(t.stream()).unwrap();
        assert_eq!(status, 200, "core {core:?}");
        t.finish().unwrap();
        drop(t);

        let requests = server.stop_collecting();
        assert_eq!(requests.len(), 1, "core {core:?}");
        let args = parse_envelope(&requests[0].body, &op).unwrap();
        assert_eq!(args, vec![Value::DoubleArray(xs)], "core {core:?}");
    }
}

#[test]
fn client_server_differential_deserialization_pipeline() {
    // The full paper pipeline: differential client on one end,
    // differential deserializer on the other.
    for core in cores() {
        let server = TestServer::spawn_with(ServerMode::Collect, opts_on(core)).unwrap();
        let cfg = RequestConfig::loopback(HttpVersion::Http10);
        let mut t = TcpTransport::connect(server.addr(), Framing::Http(cfg)).unwrap();
        let op = OpDesc::single("m", "urn:x", "a", TypeDesc::array_of(TypeDesc::mio()));
        let mut client = Client::new(
            EngineConfig::paper_default()
                .with_wire_format(bsoap::WireFormat::SoapXml)
                .with_width(WidthPolicy::Max),
        );

        let mut elems: Vec<(i32, i32, f64)> = (0..50).map(|i| (i, -i, i as f64 * 0.5)).collect();
        let as_value =
            |e: &[(i32, i32, f64)]| Value::Array(e.iter().map(|&(x, y, v)| mio(x, y, v)).collect());
        for step in 0..6 {
            if step > 0 {
                elems[step * 7 % 50].2 += 1.0;
            }
            client
                .call_via("http://svc", &op, &[as_value(&elems)], |s| {
                    t.send_message(s)
                })
                .unwrap();
            let (status, _) = bsoap::transport::http::read_response(t.stream()).unwrap();
            assert_eq!(status, 200, "core {core:?}");
        }
        t.finish().unwrap();
        drop(t);

        let requests = server.stop_collecting();
        let mut deser = DiffDeserializer::new(op);
        let mut outcomes = Vec::new();
        for req in &requests {
            let (_, outcome) = deser.deserialize(&req.body).unwrap();
            outcomes.push(outcome);
        }
        assert_eq!(outcomes[0], DiffOutcome::FullParse, "core {core:?}");
        for o in &outcomes[1..] {
            assert!(
                matches!(o, DiffOutcome::Differential { reparsed: 1, .. }),
                "core {core:?}: expected 1-leaf differential parse, got {o:?}"
            );
        }
        // Final values agree with the client's final state.
        let (args, _) = deser.deserialize(&requests.last().unwrap().body).unwrap();
        assert_eq!(args, &[as_value(&elems)][..], "core {core:?}");
    }
}

#[test]
fn overlay_wire_bytes_equal_template_bytes() {
    use bsoap::OverlaySender;
    let op = doubles_op();
    let config = EngineConfig::paper_default().with_wire_format(bsoap::WireFormat::SoapXml);
    let xs: Vec<f64> = (0..5000).map(|i| (i as f64).sin()).collect();
    let value = Value::DoubleArray(xs);

    // Overlay path: bounded memory, streamed.
    let mut overlay = OverlaySender::auto_window(config, &op).unwrap();
    let mut overlay_out = Vec::new();
    let report = overlay.send(&value, &mut overlay_out).unwrap();
    assert!(report.portions > 1, "workload must span several windows");
    assert!(
        report.window_bytes < overlay_out.len() / 2,
        "overlay memory ({}) must be far below message size ({})",
        report.window_bytes,
        overlay_out.len()
    );

    // Whole-template path.
    let tpl = bsoap::MessageTemplate::build(config, &op, &[value]).unwrap();
    assert_eq!(
        strip_pad(&overlay_out),
        strip_pad(&tpl.to_bytes()),
        "overlaid stream must be pad-equivalent to the stored template"
    );
    // And it parses back.
    assert!(parse_envelope(&overlay_out, &op).is_ok());
}

#[test]
fn pooled_keep_alive_scrape_reports_tier_counters_mid_load() {
    // One observability registry shared by the differential client, the
    // connection pool, and the worker-pool server. Mid-load, `GET
    // /metrics` is scraped over the same pooled keep-alive connection the
    // POSTs ride on, and the per-tier send counters must sum to exactly
    // the requests served so far.
    use bsoap::obs::{parse_value, Counter, Metrics, Tier};
    use bsoap::transport::{HttpPoolClient, PoolConfig, RequestConfig};
    use std::sync::Arc;

    for core in cores() {
        let metrics = Metrics::shared();
        let server = bsoap::transport::TestServer::spawn_with_metrics(
            ServerMode::Ack,
            opts_on(core),
            Arc::clone(&metrics),
        )
        .unwrap();
        let mut pool = HttpPoolClient::new(
            server.addr(),
            RequestConfig::loopback(HttpVersion::Http11Length),
            PoolConfig::default(),
        );
        pool.set_metrics(Arc::clone(&metrics));

        let op = doubles_op();
        let mut client = Client::with_defaults();
        client.set_metrics(Arc::clone(&metrics));
        let endpoint = format!("http://{}/service", server.addr());

        let tier_sum = |text: &str| -> u64 {
            Tier::ALL
                .iter()
                .map(|t| {
                    parse_value(
                        text,
                        &format!("bsoap_sends_total{{tier=\"{}\"}}", t.label()),
                    )
                    .unwrap_or_else(|| panic!("missing tier series {}", t.label()))
                        as u64
                })
                .sum()
        };
        let scrape = |pool: &HttpPoolClient| -> String {
            let reply = pool.get("/metrics").unwrap();
            assert_eq!(reply.status, 200);
            String::from_utf8(reply.body).unwrap()
        };

        let total = 24usize;
        let mut xs: Vec<f64> = (0..64).map(|i| i as f64 * 0.5).collect();
        for i in 0..total {
            if i > 0 {
                xs[(i * 7) % 64] += 1.0; // a few dirty values per call
            }
            client
                .call_via(&endpoint, &op, &[Value::DoubleArray(xs.clone())], |s| {
                    let reply = pool.call(s)?;
                    assert_eq!(reply.status, 200);
                    Ok(reply.wire_bytes)
                })
                .unwrap();

            if i + 1 == total / 2 {
                // Mid-load scrape over the live keep-alive connection.
                let text = scrape(&pool);
                let served = parse_value(&text, "bsoap_server_requests_total").unwrap() as usize;
                assert_eq!(served, i + 1, "server_requests mid-load, core {core:?}");
                assert_eq!(
                    tier_sum(&text) as usize,
                    i + 1,
                    "tier sum mid-load, core {core:?}"
                );
            }
        }

        let text = scrape(&pool);
        assert_eq!(
            parse_value(&text, "bsoap_server_requests_total").unwrap() as usize,
            total,
            "scrapes must not count as served requests (core {core:?})"
        );
        assert_eq!(
            tier_sum(&text) as usize,
            total,
            "tier sum after load, core {core:?}"
        );
        assert_eq!(
            parse_value(&text, "bsoap_metrics_scrapes_total").unwrap() as usize,
            2,
            "core {core:?}"
        );

        let snap = metrics.snapshot();
        assert_eq!(snap.total_sends() as usize, total);
        assert_eq!(snap.tier_sends(Tier::FirstTime), 1);
        assert_eq!(
            snap.get(Counter::ServerRequests) as usize,
            total,
            "core {core:?}"
        );
        assert!(
            snap.get(Counter::PoolReused) > 0,
            "keep-alive reuse never happened (core {core:?})"
        );

        let stats = server.stop();
        assert_eq!(stats.requests as usize, total, "core {core:?}");
    }
}

#[test]
fn two_endpoints_get_independent_templates() {
    let op = doubles_op();
    let mut client = Client::with_defaults();
    let mut sink_a = bsoap::transport::SinkTransport::new();
    let mut sink_b = bsoap::transport::SinkTransport::new();

    let xs = vec![1.5; 10];
    client
        .call(
            "http://a",
            &op,
            &[Value::DoubleArray(xs.clone())],
            &mut sink_a,
        )
        .unwrap();
    // Same payload to a different endpoint: its own first-time send.
    let r = client
        .call(
            "http://b",
            &op,
            &[Value::DoubleArray(xs.clone())],
            &mut sink_b,
        )
        .unwrap();
    assert_eq!(r.tier, SendTier::FirstTime);
    assert_eq!(client.cached_keys(), 2);
    // Back to endpoint A unchanged: content match survives interleaving.
    let r = client
        .call("http://a", &op, &[Value::DoubleArray(xs)], &mut sink_a)
        .unwrap();
    assert_eq!(r.tier, SendTier::ContentMatch);
}
