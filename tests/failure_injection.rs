//! Failure injection: transports that error, stall, or accept partial
//! writes must never corrupt template state — after the failure clears,
//! the template still produces bytes identical to a fresh serialization.
//! The plan/execute split adds its own failure seams (planner error,
//! executor panic, stale plan): each must leave the template bytes
//! untouched.

use bsoap::baseline::GSoapLike;
use bsoap::convert::ScalarKind;
use bsoap::xml::strip_pad;
use bsoap::{
    Client, EngineConfig, EngineError, InjectedFault, MessageTemplate, OpDesc, SendTier, TypeDesc,
    Value,
};
use std::io::{self, IoSlice, Write};

fn doubles_op() -> OpDesc {
    OpDesc::single(
        "send",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
    )
}

/// Writer that fails after accepting `accept_bytes`, then recovers.
struct FlakyWriter {
    accept_bytes: usize,
    taken: usize,
    failures: usize,
    out: Vec<u8>,
}

impl FlakyWriter {
    fn new(accept_bytes: usize) -> Self {
        FlakyWriter {
            accept_bytes,
            taken: 0,
            failures: 0,
            out: Vec::new(),
        }
    }
}

impl Write for FlakyWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.taken >= self.accept_bytes {
            self.failures += 1;
            return Err(io::Error::new(io::ErrorKind::ConnectionReset, "injected"));
        }
        let n = buf.len().min(self.accept_bytes - self.taken);
        self.taken += n;
        self.out.extend_from_slice(&buf[..n]);
        Ok(n)
    }
    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        let total: usize = bufs.iter().map(|b| b.len()).sum();
        let first = bufs.first().map(|b| b.len()).unwrap_or(0);
        let _ = total;
        self.write(bufs.first().map(|b| &b[..first]).unwrap_or(&[]))
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[test]
fn send_error_surfaces_and_template_survives() {
    let op = doubles_op();
    let mut client =
        Client::new(EngineConfig::paper_default().with_wire_format(bsoap::WireFormat::SoapXml));
    let xs = vec![Value::DoubleArray(vec![1.5; 100])];

    // First send into a writer that dies mid-message.
    let mut flaky = FlakyWriter::new(64);
    let err = client.call("ep", &op, &xs, &mut flaky).unwrap_err();
    assert!(
        matches!(err, EngineError::Io(_)),
        "I/O failure must surface: {err:?}"
    );
    assert!(flaky.failures > 0);

    // The same call against a healthy sink: the engine is not poisoned.
    let mut ok = Vec::new();
    let r = client.call("ep", &op, &xs, &mut ok).unwrap();
    // Template may or may not have been cached before the failure; either
    // tier is sound, and the bytes must equal a fresh serialization.
    assert!(matches!(
        r.tier,
        SendTier::FirstTime | SendTier::ContentMatch
    ));
    let mut g = GSoapLike::new();
    let full = g.serialize(&op, &xs).unwrap().to_vec();
    assert_eq!(strip_pad(&ok), strip_pad(&full));
}

#[test]
fn failure_during_differential_send_keeps_bytes_consistent() {
    let op = doubles_op();
    let mut client =
        Client::new(EngineConfig::paper_default().with_wire_format(bsoap::WireFormat::SoapXml));
    let mut ok = Vec::new();
    let mut xs = vec![1.5; 50];
    client
        .call("ep", &op, &[Value::DoubleArray(xs.clone())], &mut ok)
        .unwrap();

    // Dirty some values, then fail the send. The flush happened before the
    // transport error, so the in-memory template already holds the new
    // bytes — the retry must ship exactly those.
    xs[7] = 9.5;
    xs[31] = 2.5;
    let mut flaky = FlakyWriter::new(16);
    let err = client
        .call("ep", &op, &[Value::DoubleArray(xs.clone())], &mut flaky)
        .unwrap_err();
    assert!(matches!(err, EngineError::Io(_)));

    let mut out2 = Vec::new();
    let r = client
        .call("ep", &op, &[Value::DoubleArray(xs.clone())], &mut out2)
        .unwrap();
    assert_eq!(
        r.tier,
        SendTier::ContentMatch,
        "values already flushed before the failure"
    );
    let mut g = GSoapLike::new();
    let full = g
        .serialize(&op, &[Value::DoubleArray(xs)])
        .unwrap()
        .to_vec();
    assert_eq!(strip_pad(&out2), strip_pad(&full));
}

#[test]
fn failure_during_resize_send_keeps_template_coherent() {
    let op = doubles_op();
    let mut client =
        Client::new(EngineConfig::paper_default().with_wire_format(bsoap::WireFormat::SoapXml));
    let mut ok = Vec::new();
    client
        .call("ep", &op, &[Value::DoubleArray(vec![1.5; 10])], &mut ok)
        .unwrap();

    let grown = vec![Value::DoubleArray(
        (0..200).map(|i| i as f64 + 0.5).collect(),
    )];
    let mut flaky = FlakyWriter::new(8);
    assert!(client.call("ep", &op, &grown, &mut flaky).is_err());

    // After the failed resize-send, the template must still satisfy its
    // invariants and serialize correctly.
    let tpl = client.template_mut("ep", &op).expect("template retained");
    tpl.assert_invariants();
    let mut out = Vec::new();
    let r = client.call("ep", &op, &grown, &mut out).unwrap();
    assert_eq!(r.tier, SendTier::ContentMatch);
    let mut g = GSoapLike::new();
    let full = g.serialize(&op, &grown).unwrap().to_vec();
    assert_eq!(strip_pad(&out), strip_pad(&full));
}

#[test]
fn zero_byte_writer_reports_write_zero() {
    struct Stuck;
    impl Write for Stuck {
        fn write(&mut self, _: &[u8]) -> io::Result<usize> {
            Ok(0)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
    let op = doubles_op();
    let mut tpl = MessageTemplate::build(
        bsoap::EngineConfig::paper_default().with_wire_format(bsoap::WireFormat::SoapXml),
        &op,
        &[Value::DoubleArray(vec![1.5])],
    )
    .unwrap();
    let err = tpl.send(&mut Stuck).unwrap_err();
    let EngineError::Io(io_err) = err else {
        panic!("expected Io error")
    };
    assert_eq!(io_err.kind(), io::ErrorKind::WriteZero);
}

#[test]
fn interleaved_failures_across_endpoints_stay_isolated() {
    let op = doubles_op();
    let mut client = Client::with_defaults();
    let args_a = vec![Value::DoubleArray(vec![1.5; 20])];
    let args_b = vec![Value::DoubleArray(vec![2.5; 30])];
    let mut ok = Vec::new();
    client.call("a", &op, &args_a, &mut ok).unwrap();
    client.call("b", &op, &args_b, &mut ok).unwrap();

    // Endpoint B's transport fails; endpoint A is unaffected.
    let mut flaky = FlakyWriter::new(4);
    assert!(client.call("b", &op, &args_b, &mut flaky).is_err());
    let r = client.call("a", &op, &args_a, &mut Vec::new()).unwrap();
    assert_eq!(r.tier, SendTier::ContentMatch);
    let r = client.call("b", &op, &args_b, &mut Vec::new()).unwrap();
    assert_eq!(r.tier, SendTier::ContentMatch);
}

#[test]
fn planner_error_leaves_template_bytes_untouched() {
    let op = doubles_op();
    let mut tpl = MessageTemplate::build(
        EngineConfig::paper_default().with_wire_format(bsoap::WireFormat::SoapXml),
        &op,
        &[Value::DoubleArray(vec![1.5; 40])],
    )
    .unwrap();
    let mut xs = vec![1.5; 40];
    xs[3] = 9.25;
    xs[21] = -7.125;
    tpl.update_args(&[Value::DoubleArray(xs.clone())]).unwrap();
    let before = tpl.to_bytes();

    tpl.inject_fault(Some(InjectedFault::PlanError));
    let err = tpl.plan().unwrap_err();
    assert!(matches!(err, EngineError::StructureMismatch { .. }));
    assert_eq!(
        tpl.to_bytes(),
        before,
        "a failed plan() must not move a template byte"
    );
    tpl.assert_invariants();

    // Clear the fault: the very same pending update flushes cleanly.
    tpl.inject_fault(None);
    let r = tpl.flush();
    assert_eq!(r.values_written, 2);
    let mut g = GSoapLike::new();
    let full = g
        .serialize(&op, &[Value::DoubleArray(xs)])
        .unwrap()
        .to_vec();
    assert_eq!(strip_pad(&tpl.to_bytes()), strip_pad(&full));
}

#[test]
fn executor_panic_leaves_template_bytes_untouched() {
    // An executor that dies before completing must not have mutated the
    // template: the injected panic fires at the execute seam, and the
    // pre-send bytes must survive the unwind intact.
    let op = doubles_op();
    let mut tpl = MessageTemplate::build(
        EngineConfig::paper_default().with_wire_format(bsoap::WireFormat::SoapXml),
        &op,
        &[Value::DoubleArray(vec![1.5; 40])],
    )
    .unwrap();
    let mut xs = vec![1.5; 40];
    xs[0] = 123.456;
    xs[39] = -0.0625;
    tpl.update_args(&[Value::DoubleArray(xs.clone())]).unwrap();
    let before = tpl.to_bytes();
    let plan = tpl.plan().unwrap();

    tpl.inject_fault(Some(InjectedFault::ExecutorPanic));
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // keep the expected panic quiet
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = tpl.flush_planned(&plan);
    }));
    std::panic::set_hook(hook);
    assert!(result.is_err(), "injected executor fault must panic");
    assert_eq!(
        tpl.to_bytes(),
        before,
        "a panicking executor must not leave partial mutations"
    );
    tpl.assert_invariants();

    // Recovery: the untouched plan is still valid against the untouched
    // template; applying it now produces the full-serialization bytes.
    tpl.inject_fault(None);
    let r = tpl.flush_planned(&plan).unwrap();
    assert_eq!(r.values_written, 2);
    let mut g = GSoapLike::new();
    let full = g
        .serialize(&op, &[Value::DoubleArray(xs)])
        .unwrap()
        .to_vec();
    assert_eq!(strip_pad(&tpl.to_bytes()), strip_pad(&full));
}

#[test]
fn stale_plan_is_rejected_without_mutation() {
    let op = doubles_op();
    let mut tpl = MessageTemplate::build(
        EngineConfig::paper_default().with_wire_format(bsoap::WireFormat::SoapXml),
        &op,
        &[Value::DoubleArray(vec![1.5; 20])],
    )
    .unwrap();
    let mut xs = vec![1.5; 20];
    xs[5] = 2.25;
    tpl.update_args(&[Value::DoubleArray(xs.clone())]).unwrap();
    let plan = tpl.plan().unwrap();

    // Mutate past the plan: more dirty values, then a resize.
    xs[6] = 3.25;
    xs.push(4.5);
    tpl.update_args(&[Value::DoubleArray(xs.clone())]).unwrap();
    let before = tpl.to_bytes();

    let err = tpl.flush_planned(&plan).unwrap_err();
    assert!(
        matches!(err, EngineError::PlanStale { .. }),
        "drifted stamp must be rejected: {err:?}"
    );
    assert_eq!(tpl.to_bytes(), before, "rejection must not move a byte");
    tpl.assert_invariants();

    // A fresh plan for the current state applies fine.
    let plan = tpl.plan().unwrap();
    tpl.flush_planned(&plan).unwrap();
    let mut g = GSoapLike::new();
    let full = g
        .serialize(&op, &[Value::DoubleArray(xs)])
        .unwrap()
        .to_vec();
    assert_eq!(strip_pad(&tpl.to_bytes()), strip_pad(&full));
}

#[test]
fn arity_and_type_errors_leave_no_partial_template() {
    let op = doubles_op();
    let mut client = Client::with_defaults();
    // Type error on the very first call: no template may be cached.
    assert!(client
        .call("ep", &op, &[Value::Int(1)], &mut Vec::new())
        .is_err());
    assert!(client.template_mut("ep", &op).is_none());
    // A valid call then builds normally.
    let r = client
        .call("ep", &op, &[Value::DoubleArray(vec![1.5])], &mut Vec::new())
        .unwrap();
    assert_eq!(r.tier, SendTier::FirstTime);
}
