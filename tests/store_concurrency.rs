//! Shared-store theorems, workspace level.
//!
//! 1. **Concurrency safety**: N threads hammering M tenants through one
//!    [`TemplateStore`] never corrupt the byte accounting — at quiescence
//!    the resident gauge equals a from-scratch recount, the global budget
//!    and per-tenant quotas hold, and the hit/miss counters reconcile
//!    exactly with the number of lookups issued.
//! 2. **Mode equivalence**: a client running `StoreMode::Shared` is
//!    byte-for-byte and tier-for-tier indistinguishable from the
//!    per-client oracle (`StoreMode::PerClient`) over any call schedule.

use bsoap::convert::ScalarKind;
use bsoap::obs::{Counter, EngineStats, Level, Metrics};
use bsoap::{
    Client, EngineConfig, MessageTemplate, OpDesc, StoreKey, StoreMode, TemplateKey, TemplateStore,
    TypeDesc, Value,
};
use proptest::prelude::*;
use std::sync::Arc;

fn arr_op() -> OpDesc {
    OpDesc::single(
        "send",
        "urn:store",
        "arr",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
    )
}

fn arr_tpl(n: usize) -> MessageTemplate {
    MessageTemplate::build(
        EngineConfig::paper_default(),
        &arr_op(),
        &[Value::DoubleArray(vec![0.5; n])],
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// N threads × M tenants × S steps of checkout/admit against one
    /// store. Every thread counts its own lookups; the store's counters
    /// must reconcile exactly, and every byte invariant must hold once
    /// the threads join.
    #[test]
    fn concurrent_store_accounting_holds(
        threads in 2usize..5,
        tenants in 1u64..5,
        steps in 4usize..24,
        budget_kb in prop_oneof![Just(0usize), 2usize..16],
        quota_kb in prop_oneof![Just(0usize), 1usize..8],
    ) {
        let budget = budget_kb * 1024;
        let quota = quota_kb * 1024;
        let store = TemplateStore::shared(budget, quota);
        let metrics = Metrics::shared();
        store.set_metrics(Arc::clone(&metrics));

        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    let mut lookups = 0u64;
                    for step in 0..steps {
                        // Deterministic per-thread schedule spread over
                        // tenants, keys, and template sizes.
                        let tenant = ((t + step) as u64) % tenants;
                        let ep = format!("ep{}", (t * 7 + step * 3) % 3);
                        let skey =
                            StoreKey::new(tenant, TemplateKey::new(&ep, &arr_op()));
                        let n = 4 + (t * 13 + step * 5) % 48;
                        let args = [Value::DoubleArray(vec![0.5; n])];
                        lookups += 1;
                        match store.checkout(&skey, &args, 2).hit() {
                            Some(tpl) if step % 5 == 4 => {
                                // Simulate a cost-gate fallback: discard
                                // the checked-out template, save a fresh
                                // one. Bytes must not strand.
                                store.note_discard(&tpl);
                                drop(tpl);
                                store.admit(skey, arr_tpl(n), 2);
                            }
                            Some(tpl) => {
                                store.admit(skey, tpl, 2);
                            }
                            None => {
                                store.admit(skey, arr_tpl(n), 2);
                            }
                        }
                    }
                    lookups
                })
            })
            .collect();
        let total_lookups: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();

        // Byte accounting: gauge == recount, budget and quotas hold.
        prop_assert_eq!(store.recount_bytes(), store.resident_bytes());
        if budget > 0 {
            prop_assert!(
                store.resident_bytes() <= budget as u64,
                "resident {} exceeds budget {}",
                store.resident_bytes(),
                budget
            );
        }
        if quota > 0 {
            for tenant in 0..tenants {
                prop_assert!(
                    store.tenant_resident_bytes(tenant) <= quota as u64,
                    "tenant {} resident {} exceeds quota {}",
                    tenant,
                    store.tenant_resident_bytes(tenant),
                    quota
                );
            }
        }

        // Exact reconciliation: each checkout ticked exactly one of
        // hits/misses, and the resident gauge mirrors the byte count.
        let s = EngineStats::snapshot(&metrics);
        prop_assert_eq!(
            s.get(Counter::TemplateHits) + s.get(Counter::TemplateMisses),
            total_lookups
        );
        prop_assert_eq!(s.level(Level::TemplateBytesResident), store.resident_bytes());
    }
}

#[derive(Clone, Debug)]
enum Step {
    /// Set element `i % len` to `v`.
    Set(usize, f64),
    /// Resize the array to `n` elements.
    Resize(usize),
    /// Repeat the previous arguments verbatim (content-match bait).
    Repeat,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0usize..64, -1e6f64..1e6).prop_map(|(i, v)| Step::Set(i, v)),
        (1usize..48).prop_map(Step::Resize),
        Just(Step::Repeat),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The shared store is a drop-in for the per-client cache: identical
    /// call schedules produce identical wire bytes per call, the same
    /// tier per call, and identical cumulative tier counters.
    #[test]
    fn shared_mode_matches_per_client_oracle(
        initial in prop::collection::vec(-1e6f64..1e6, 1..32),
        steps in prop::collection::vec(step_strategy(), 1..16),
        endpoints in 1usize..3,
    ) {
        let op = arr_op();
        let mut shared = Client::new(
            EngineConfig::paper_default().with_store_mode(StoreMode::Shared),
        );
        let mut oracle = Client::new(
            EngineConfig::paper_default().with_store_mode(StoreMode::PerClient),
        );

        let mut xs = initial;
        for (i, step) in steps.iter().enumerate() {
            match step {
                Step::Set(i, v) => {
                    let len = xs.len();
                    xs[i % len] = *v;
                }
                Step::Resize(n) => xs.resize(*n, 0.25),
                Step::Repeat => {}
            }
            let endpoint = format!("http://svc/{}", i % endpoints);
            let args = [Value::DoubleArray(xs.clone())];

            let mut wire_shared = Vec::new();
            let mut wire_oracle = Vec::new();
            let a = shared.call(&endpoint, &op, &args, &mut wire_shared).unwrap();
            let b = oracle.call(&endpoint, &op, &args, &mut wire_oracle).unwrap();

            prop_assert_eq!(
                &wire_shared, &wire_oracle,
                "wire bytes diverged at step {} ({:?})", i, step
            );
            prop_assert_eq!(a.tier, b.tier, "tier diverged at step {}", i);
            prop_assert_eq!(a.fell_back, b.fell_back);
        }
        prop_assert_eq!(shared.stats(), oracle.stats());
    }
}
