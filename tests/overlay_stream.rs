//! End-to-end streaming overlay: `Client::call_overlaid_via` feeding
//! `HttpPoolClient::post_streamed`, received by a server that never
//! buffers the envelope — `read_head` + `ChunkedBodyReader` +
//! `StreamingDeserializer` — with metrics reconciled across the wire.

use bsoap::convert::ScalarKind;
use bsoap::deser::StreamingDeserializer;
use bsoap::obs::{Counter, Gauge, Metrics};
use bsoap::transport::http::{parse_request_head, HttpVersion, RequestConfig};
use bsoap::transport::pool::PoolConfig;
use bsoap::transport::stream::{read_head, ChunkedBodyReader};
use bsoap::transport::HttpPoolClient;
use bsoap::{Client, EngineConfig, OpDesc, OverlaySender, SendTier, TypeDesc, Value};
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

fn doubles_op() -> OpDesc {
    OpDesc::single(
        "send",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
    )
}

/// One parsed request as seen by the streaming server.
struct Received {
    items: Vec<f64>,
    declared: usize,
    /// Largest number of body bytes ever held at once (reader buffer +
    /// deserializer carry): the server-side memory bound.
    peak_buffered: usize,
    body_bytes: usize,
}

/// A server that deserializes each chunked request incrementally: no
/// point in the pipeline ever holds the whole envelope.
fn spawn_streaming_server(op: OpDesc) -> (std::net::SocketAddr, mpsc::Receiver<Received>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        // One client pool → serial connections; handle until the harness
        // drops the sender side.
        for conn in listener.incoming() {
            let Ok(mut stream) = conn else { break };
            if !handle_conn(&mut stream, &op, &tx) {
                break;
            }
        }
    });
    (addr, rx)
}

/// Serve one connection until clean EOF. Returns false when the results
/// channel is gone (test finished).
fn handle_conn(stream: &mut TcpStream, op: &OpDesc, tx: &mpsc::Sender<Received>) -> bool {
    loop {
        let Ok(Some((head, leftover))) = read_head(&mut *stream, 1 << 16) else {
            return true; // clean close (or error): next connection
        };
        let parsed = parse_request_head(&head).unwrap();
        assert_eq!(
            parsed.header("transfer-encoding").map(str::to_owned),
            Some("chunked".to_owned()),
            "streamed sends must be chunked"
        );
        let mut reader =
            ChunkedBodyReader::with_capacity(&mut *stream, leftover, 64 * 1024, 1 << 30);
        let mut deser = StreamingDeserializer::new(op).unwrap();
        let mut items = Vec::new();
        while let Some(slice) = reader.next_slice().unwrap() {
            deser
                .push(slice, |_, v| {
                    match v {
                        Value::Double(x) => items.push(x),
                        other => panic!("expected double item, got {other:?}"),
                    }
                    Ok(())
                })
                .unwrap();
        }
        let body_bytes = reader.body_bytes();
        let peak_buffered = reader.capacity() + deser.peak_carry_bytes();
        let declared = deser.declared_len();
        let summary = deser.finish().unwrap();
        assert_eq!(summary.items, items.len());
        stream
            .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n")
            .unwrap();
        if tx
            .send(Received {
                items,
                declared,
                peak_buffered,
                body_bytes,
            })
            .is_err()
        {
            return false;
        }
    }
}

#[test]
fn overlaid_call_streams_end_to_end() {
    let op = doubles_op();
    let (addr, rx) = spawn_streaming_server(op.clone());

    let config = EngineConfig::stuffed_max()
        .with_wire_format(bsoap::WireFormat::SoapXml)
        .with_window_elems(128)
        .with_overlay_threshold(0); // always stream
    let mut client = Client::new(config);
    let metrics = Arc::new(Metrics::new());
    client.set_metrics(metrics.clone());

    let pool = HttpPoolClient::new(
        addr,
        RequestConfig::loopback(HttpVersion::Http11Chunked),
        PoolConfig::default(),
    );

    let n = 20_000usize;
    let mut expect_tiers = vec![SendTier::FirstTime, SendTier::PerfectStructural];
    for round in 0..2 {
        let vals: Vec<f64> = (0..n).map(|i| (i + round * 3) as f64 * 0.5).collect();
        let value = Value::DoubleArray(vals.clone());
        let (reply, report) = pool
            .post_streamed(|w| {
                client
                    .call_overlaid_via("http://svc", &op, std::slice::from_ref(&value), |slices| {
                        w.write_portion(slices)
                    })
                    .map_err(|e| std::io::Error::other(e.to_string()))
            })
            .unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(report.tier, expect_tiers.remove(0), "round {round}");
        assert_eq!(report.portions, n.div_ceil(128));

        let got = rx.recv().unwrap();
        assert_eq!(got.declared, n);
        assert_eq!(
            got.items, vals,
            "values corrupted in flight (round {round})"
        );
        assert_eq!(got.body_bytes, report.bytes, "body length mismatch");
        // Neither side ever held the message: the client's window and the
        // server's reader+carry both stay far below the body size.
        assert!(
            report.window_bytes * 4 < report.bytes,
            "client window {} not bounded vs body {}",
            report.window_bytes,
            report.bytes
        );
        assert!(
            got.peak_buffered * 4 < got.body_bytes,
            "server buffered {} of a {}-byte body",
            got.peak_buffered,
            got.body_bytes
        );
    }

    // Metrics reconcile with the reports: two sends of n elements each.
    let snap = metrics.snapshot();
    assert_eq!(
        snap.get(Counter::OverlayPortions),
        2 * (n as u64).div_ceil(128)
    );
    assert!(snap.get(Counter::OverlayBytesStreamed) > 0);
    assert!(snap.gauge(Gauge::OverlayWindowPeakBytes) > 0);
    assert_eq!(snap.get(Counter::SendFirstTime), 1);
    assert_eq!(snap.get(Counter::SendPerfectStructural), 1);

    let stats = client.stats();
    assert_eq!(stats.first_time, 1);
    assert_eq!(stats.perfect_structural, 1);
}

#[test]
fn small_calls_fall_through_to_buffered_tiers() {
    let op = doubles_op();
    // Threshold far above what three doubles serialize to.
    let config = EngineConfig::paper_default()
        .with_wire_format(bsoap::WireFormat::SoapXml)
        .with_overlay_threshold(1 << 20);
    let mut client = Client::new(config);
    let mut sink = Vec::new();
    let args = vec![Value::DoubleArray(vec![1.0, 2.0, 3.0])];
    assert!(!client.overlay_engages(&op, &args));
    match client
        .call_overlaid("http://svc", &op, &args, &mut sink)
        .unwrap()
    {
        bsoap::OverlaidOutcome::Buffered(r) => assert_eq!(r.tier, SendTier::FirstTime),
        bsoap::OverlaidOutcome::Streamed(_) => panic!("small call should not stream"),
    }
    assert!(!sink.is_empty());
}

#[test]
fn large_calls_auto_engage() {
    let op = doubles_op();
    let config = EngineConfig::stuffed_max().with_wire_format(bsoap::WireFormat::SoapXml); // paper-default 1 MiB threshold
    let mut client = Client::new(config);
    let n = 200_000usize; // ~ 4.8 MB serialized at max double width
    let args = vec![Value::DoubleArray((0..n).map(|i| i as f64).collect())];
    assert!(client.overlay_engages(&op, &args));
    let mut sink = Vec::new();
    match client
        .call_overlaid("http://svc", &op, &args, &mut sink)
        .unwrap()
    {
        bsoap::OverlaidOutcome::Streamed(r) => {
            assert_eq!(r.tier, SendTier::FirstTime);
            assert_eq!(r.bytes, sink.len());
            assert!(r.window_bytes * 8 < r.bytes);
        }
        bsoap::OverlaidOutcome::Buffered(_) => panic!("large call should stream"),
    }
}

#[test]
fn send_failure_demotes_overlay_window() {
    // Once failures cross the degradation threshold, the cached window is
    // dropped with the template so the next send rebuilds (FirstTime),
    // mirroring template-cache demotion.
    let op = doubles_op();
    let config = EngineConfig::stuffed_max()
        .with_wire_format(bsoap::WireFormat::SoapXml)
        .with_window_elems(32)
        .with_overlay_threshold(0)
        .with_degraded(1, 1);
    let mut client = Client::new(config);
    let value = Value::DoubleArray((0..320).map(|i| i as f64).collect());

    let r = client
        .call_overlaid_via("http://svc", &op, std::slice::from_ref(&value), |slices| {
            Ok(slices.iter().map(|s| s.len()).sum())
        })
        .unwrap();
    assert_eq!(r.tier, SendTier::FirstTime);

    // Fail after a few portions.
    let mut seen = 0usize;
    let err = client
        .call_overlaid_via("http://svc", &op, std::slice::from_ref(&value), |slices| {
            seen += 1;
            if seen > 3 {
                Err(std::io::Error::other("wire cut"))
            } else {
                Ok(slices.iter().map(|s| s.len()).sum())
            }
        })
        .unwrap_err();
    assert!(matches!(err, bsoap::EngineError::Io(_)));

    let r = client
        .call_overlaid_via("http://svc", &op, std::slice::from_ref(&value), |slices| {
            Ok(slices.iter().map(|s| s.len()).sum())
        })
        .unwrap();
    assert_eq!(r.tier, SendTier::FirstTime, "window survived a failed send");
}

/// The streamed wire bytes (sans HTTP framing) are byte-identical to the
/// non-overlay serialization — asserted over a real socket.
#[test]
fn wire_body_matches_full_serialization() {
    let op = doubles_op();
    let config = EngineConfig::stuffed_max().with_wire_format(bsoap::WireFormat::SoapXml);
    let n = 5_000usize;
    let value = Value::DoubleArray((0..n).map(|i| i as f64 * 0.25).collect());

    let mut sender = OverlaySender::new(config, &op, 256).unwrap();
    let mut streamed = Vec::new();
    sender.send(&value, &mut streamed).unwrap();

    let full = bsoap::MessageTemplate::build(config, &op, std::slice::from_ref(&value))
        .unwrap()
        .to_bytes()
        .to_vec();
    assert_eq!(streamed, full);
}
