//! Overlay streaming against the event-loop server core, over real
//! sockets: `Client::call_overlaid_via` chunks a huge array through a
//! bounded window, and the server's per-connection state machine decodes
//! the chunked body *natively* — each decoded slice flows through a
//! [`BodySink`] into a `StreamingDeserializer` as it arrives, so no
//! point on the server ever holds the envelope (ROADMAP item 2's
//! server-side accept integration).

use bsoap::convert::ScalarKind;
use bsoap::deser::StreamingDeserializer;
use bsoap::obs::{Counter, Metrics};
use bsoap::transport::http::{HttpVersion, RequestConfig};
use bsoap::transport::{
    BodySink, HttpPoolClient, PoolConfig, ServerCore, ServerMode, ServerOptions, TestServer,
};
use bsoap::{Client, EngineConfig, OpDesc, SendTier, TypeDesc, Value};
use std::io;
use std::sync::{Arc, Mutex};

fn doubles_op() -> OpDesc {
    OpDesc::single(
        "send",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
    )
}

/// One fully streamed request as the server-side sink saw it.
struct Received {
    items: Vec<f64>,
    declared: usize,
    body_bytes: usize,
    /// Largest single buffered quantum (decoded slice + deserializer
    /// carry): the server-side memory bound.
    peak_buffered: usize,
}

/// [`BodySink`] feeding each decoded chunk slice straight into a
/// [`StreamingDeserializer`]; nothing is retained but parsed values.
struct DeserSink {
    deser: Option<StreamingDeserializer>,
    items: Vec<f64>,
    body_bytes: usize,
    peak_slice: usize,
    results: Arc<Mutex<Vec<Received>>>,
}

impl BodySink for DeserSink {
    fn on_slice(&mut self, slice: &[u8]) -> io::Result<()> {
        self.body_bytes += slice.len();
        self.peak_slice = self.peak_slice.max(slice.len());
        let items = &mut self.items;
        self.deser
            .as_mut()
            .expect("slice after finish")
            .push(slice, |_, v| {
                match v {
                    Value::Double(x) => items.push(x),
                    other => panic!("expected double item, got {other:?}"),
                }
                Ok(())
            })
            .map_err(|e| io::Error::other(e.to_string()))
    }

    fn finish(&mut self) -> io::Result<()> {
        let deser = self.deser.take().expect("double finish");
        let declared = deser.declared_len();
        let peak_carry = deser.peak_carry_bytes();
        let summary = deser
            .finish()
            .map_err(|e| io::Error::other(e.to_string()))?;
        let items = std::mem::take(&mut self.items);
        assert_eq!(summary.items, items.len());
        self.results.lock().unwrap().push(Received {
            items,
            declared,
            body_bytes: self.body_bytes,
            peak_buffered: self.peak_slice + peak_carry,
        });
        Ok(())
    }
}

#[test]
fn overlaid_calls_stream_into_the_event_loop_server() {
    if !bsoap::transport::poller::supported() {
        return; // no epoll on this platform; the event-loop core is unavailable
    }
    let op = doubles_op();
    let metrics = Metrics::shared();
    let results: Arc<Mutex<Vec<Received>>> = Arc::new(Mutex::new(Vec::new()));

    let factory_op = op.clone();
    let factory_results = Arc::clone(&results);
    let server = TestServer::spawn_streaming(
        ServerMode::Ack,
        ServerOptions {
            core: ServerCore::EventLoop,
            ..ServerOptions::default()
        },
        Some(Arc::clone(&metrics)),
        Arc::new(move |head| {
            // Stream POST bodies; anything else (e.g. /metrics) buffers.
            if head.method != "POST" {
                return None;
            }
            Some(Box::new(DeserSink {
                deser: Some(StreamingDeserializer::new(&factory_op).unwrap()),
                items: Vec::new(),
                body_bytes: 0,
                peak_slice: 0,
                results: Arc::clone(&factory_results),
            }))
        }),
    )
    .unwrap();

    let config = EngineConfig::stuffed_max()
        .with_wire_format(bsoap::WireFormat::SoapXml)
        .with_window_elems(128)
        .with_overlay_threshold(0); // always stream
    let mut client = Client::new(config);
    client.set_metrics(Arc::clone(&metrics));
    let pool = HttpPoolClient::new(
        server.addr(),
        RequestConfig::loopback(HttpVersion::Http11Chunked),
        PoolConfig::default(),
    );

    let n = 20_000usize;
    let mut expect_tiers = vec![SendTier::FirstTime, SendTier::PerfectStructural];
    for round in 0..2 {
        let vals: Vec<f64> = (0..n).map(|i| (i + round * 3) as f64 * 0.5).collect();
        let value = Value::DoubleArray(vals.clone());
        let (reply, report) = pool
            .post_streamed(|w| {
                client
                    .call_overlaid_via("http://svc", &op, std::slice::from_ref(&value), |slices| {
                        w.write_portion(slices)
                    })
                    .map_err(|e| io::Error::other(e.to_string()))
            })
            .unwrap();
        assert_eq!(reply.status, 200, "round {round}");
        assert_eq!(report.tier, expect_tiers.remove(0), "round {round}");
        assert_eq!(report.portions, n.div_ceil(128));

        // The sink finished (and recorded) before the 200 was written.
        let got = results.lock().unwrap().pop().expect("sink never finished");
        assert_eq!(got.declared, n, "round {round}");
        assert_eq!(
            got.items, vals,
            "values corrupted in flight (round {round})"
        );
        assert_eq!(
            got.body_bytes, report.bytes,
            "server-side body length vs client report (round {round})"
        );
        // Bounded server memory: the largest decoded slice plus the
        // deserializer's carry stays far below the body size.
        assert!(
            got.peak_buffered * 4 < got.body_bytes,
            "server buffered {} of a {}-byte body",
            got.peak_buffered,
            got.body_bytes
        );
        // Client-side window is equally bounded.
        assert!(
            report.window_bytes * 4 < report.bytes,
            "client window {} not bounded vs body {}",
            report.window_bytes,
            report.bytes
        );
    }
    drop(pool);

    // Metrics reconcile across the wire: two streamed sends, each in
    // ceil(n/128) portions, served as exactly two requests.
    let snap = metrics.snapshot();
    assert_eq!(snap.get(Counter::ServerRequests), 2);
    assert_eq!(
        snap.get(Counter::OverlayPortions),
        2 * (n as u64).div_ceil(128)
    );
    assert!(snap.get(Counter::OverlayBytesStreamed) > 0);
    assert_eq!(snap.get(Counter::SendFirstTime), 1);
    assert_eq!(snap.get(Counter::SendPerfectStructural), 1);

    let stats = server.stop();
    assert_eq!(stats.requests, 2);
}

/// The buffered fallback on the same server: a request the factory
/// declines (no sink) still round-trips through the normal full-body
/// dispatch path on the event-loop core.
#[test]
fn non_streamed_requests_still_buffer_on_the_streaming_server() {
    if !bsoap::transport::poller::supported() {
        return;
    }
    let op = doubles_op();
    let results: Arc<Mutex<Vec<Received>>> = Arc::new(Mutex::new(Vec::new()));
    let server = TestServer::spawn_streaming(
        ServerMode::Collect,
        ServerOptions {
            core: ServerCore::EventLoop,
            ..ServerOptions::default()
        },
        None,
        Arc::new(move |_head| None), // decline every request: buffer all
    )
    .unwrap();

    let cfg = RequestConfig::loopback(HttpVersion::Http11Length);
    let pool = HttpPoolClient::new(server.addr(), cfg, PoolConfig::default());
    let mut client =
        Client::new(EngineConfig::paper_default().with_wire_format(bsoap::WireFormat::SoapXml));
    let xs = vec![1.5, 2.5, 3.5];
    client
        .call_via(
            "http://svc",
            &op,
            &[Value::DoubleArray(xs.clone())],
            |slices| {
                let reply = pool.call(slices)?;
                assert_eq!(reply.status, 200);
                Ok(reply.wire_bytes)
            },
        )
        .unwrap();
    drop(pool);

    let requests = server.stop_collecting();
    assert_eq!(requests.len(), 1);
    assert_eq!(
        bsoap::deser::parse_envelope(&requests[0].body, &op).unwrap(),
        vec![Value::DoubleArray(xs)]
    );
    assert!(results.lock().unwrap().is_empty());
}
