//! Cross-format differential suite: THE proof obligation for the
//! negotiated compact binary lane.
//!
//! Two clients — one pinned to the SOAP/XML lane, one to the compact
//! binary lane — are driven in lockstep through randomized schedules of
//! value updates, array resizes, string churn, injected transport
//! faults (the degraded-mode ladder), endpoint switches (§6 sharing),
//! under both store modes and both flush modes. After every successful
//! send the two wire images must decode to exactly the model arguments,
//! the tier trajectories must agree exactly (tiers are decided by value
//! dirtiness and structural change, which are format-independent), the
//! binary lane must realize every numeric rewrite with *zero* shift
//! work — the tier-3 shifting machinery collapses into plain tier-2
//! overwrites because fixed-width binary numerics never grow — and at
//! the end each lane's `ClientStats` must reconcile exactly against the
//! reports it actually produced.

use bsoap::convert::ScalarKind;
use bsoap::deser::{parse_binary_envelope, parse_envelope};
use bsoap::{
    mio, ChunkConfig, Client, ClientStats, EngineConfig, EngineError, FlushMode, OpDesc, ParamDesc,
    SendReport, SendTier, StoreMode, TypeDesc, Value, WidthPolicy, WireFormat,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::io;

/// A mixed-shape operation: fixed-width scalars, a double array, a MIO
/// struct array, and an unbounded string — every leaf family the two
/// serializers treat differently.
fn mesh_op() -> OpDesc {
    OpDesc::new(
        "meshUpdate",
        "urn:mesh",
        vec![
            ParamDesc {
                name: "step".into(),
                desc: TypeDesc::Scalar(ScalarKind::Int),
            },
            ParamDesc {
                name: "xs".into(),
                desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
            },
            ParamDesc {
                name: "mios".into(),
                desc: TypeDesc::array_of(TypeDesc::mio()),
            },
            ParamDesc {
                name: "tag".into(),
                desc: TypeDesc::Scalar(ScalarKind::Str),
            },
        ],
    )
}

#[derive(Clone, Debug)]
struct Model {
    step: i32,
    xs: Vec<f64>,
    mios: Vec<(i32, i32, f64)>,
    tag: String,
}

impl Model {
    fn args(&self) -> Vec<Value> {
        vec![
            Value::Int(self.step),
            Value::DoubleArray(self.xs.clone()),
            Value::Array(self.mios.iter().map(|&(x, y, v)| mio(x, y, v)).collect()),
            Value::Str(self.tag.clone()),
        ]
    }
}

#[derive(Clone, Debug)]
enum Step {
    /// Change the scalar counter (numeric overwrite).
    Bump(i32),
    /// Change one double in the array (numeric overwrite).
    SetDouble(usize, f64),
    /// Change one MIO's coordinate and value (numeric overwrites).
    SetMio(usize, i32, f64),
    /// Grow or shrink the double array (structural, both lanes).
    ResizeXs(usize),
    /// Grow or shrink the MIO array (structural, both lanes).
    ResizeMios(usize),
    /// Replace the tag string: `(letter, repeat)` — length changes shift
    /// bytes in *both* formats.
    SetTag(usize, usize),
    /// Send the same arguments again (content match, both lanes).
    Repeat,
    /// The transport fails this call in both lanes — drives the
    /// degraded-mode ladder identically.
    FailSend,
    /// Switch to the other endpoint (§6 cross-endpoint sharing).
    SwitchEndpoint,
}

impl Step {
    /// Steps whose only effect is rewriting fixed-width numerics — the
    /// binary lane must realize these with zero shifts/steals/splits.
    fn numeric_only(&self) -> bool {
        matches!(
            self,
            Step::Bump(_) | Step::SetDouble(..) | Step::SetMio(..) | Step::Repeat
        )
    }
}

fn small_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        any::<i32>().prop_map(|i| i as f64),
        (any::<i32>(), 1i32..1000).prop_map(|(a, b)| a as f64 / b as f64),
        any::<u64>()
            .prop_map(f64::from_bits)
            .prop_filter("finite", |x| x.is_finite()),
    ]
}

fn model_strategy() -> impl Strategy<Value = Model> {
    (
        any::<i32>(),
        prop::collection::vec(small_f64(), 0..16),
        prop::collection::vec((any::<i32>(), any::<i32>(), small_f64()), 0..8),
        (0usize..26, 0usize..8),
    )
        .prop_map(|(step, xs, mios, (c, n))| Model {
            step,
            xs,
            mios,
            tag: letter(c).repeat(n),
        })
}

fn letter(c: usize) -> String {
    char::from(b'a' + (c % 26) as u8).to_string()
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        any::<i32>().prop_map(Step::Bump),
        (0usize..32, small_f64()).prop_map(|(i, v)| Step::SetDouble(i, v)),
        (0usize..16, any::<i32>(), small_f64()).prop_map(|(i, x, v)| Step::SetMio(i, x, v)),
        (0usize..24).prop_map(Step::ResizeXs),
        (0usize..12).prop_map(Step::ResizeMios),
        (0usize..26, 0usize..10).prop_map(|(c, n)| Step::SetTag(c, n)),
        Just(Step::Repeat),
        Just(Step::FailSend),
        Just(Step::SwitchEndpoint),
    ]
}

fn config_strategy() -> impl Strategy<Value = EngineConfig> {
    let chunk = prop_oneof![
        Just(ChunkConfig::k32()),
        Just(ChunkConfig {
            initial_size: 192,
            split_threshold: 384,
            reserve: 16
        }),
    ];
    let width = prop_oneof![Just(WidthPolicy::Exact), Just(WidthPolicy::Max)];
    let flush = prop_oneof![Just(FlushMode::Legacy), Just(FlushMode::Planned)];
    let store = prop_oneof![Just(StoreMode::PerClient), Just(StoreMode::Shared)];
    (chunk, width, flush, store, any::<bool>()).prop_map(|(chunk, width, flush, store, steal)| {
        EngineConfig::paper_default()
            .with_chunk(chunk)
            .with_width(width)
            .with_flush_mode(flush)
            .with_store_mode(store)
            .with_steal(steal)
            .with_degraded(2, 2)
    })
}

/// Apply `step` to the model; returns `false` for steps that do not
/// change the model (Repeat/FailSend/SwitchEndpoint).
fn apply(model: &mut Model, step: &Step) {
    match step {
        Step::Bump(d) => model.step = model.step.wrapping_add(*d),
        Step::SetDouble(i, v) => {
            if !model.xs.is_empty() {
                let i = i % model.xs.len();
                model.xs[i] = *v;
            }
        }
        Step::SetMio(i, x, v) => {
            if !model.mios.is_empty() {
                let i = i % model.mios.len();
                model.mios[i].0 = *x;
                model.mios[i].2 = *v;
            }
        }
        Step::ResizeXs(n) => {
            let n = *n;
            if n > model.xs.len() {
                model
                    .xs
                    .extend((model.xs.len()..n).map(|k| k as f64 * 0.25));
            } else {
                model.xs.truncate(n);
            }
        }
        Step::ResizeMios(n) => {
            let n = *n;
            if n > model.mios.len() {
                model
                    .mios
                    .extend((model.mios.len()..n).map(|k| (k as i32, -(k as i32), 0.5)));
            } else {
                model.mios.truncate(n);
            }
        }
        Step::SetTag(c, n) => model.tag = letter(*c).repeat(*n),
        Step::Repeat | Step::FailSend | Step::SwitchEndpoint => {}
    }
}

/// One call through a lane: captures the wire image, optionally injects
/// a transport fault, and reports whether the endpoint was degraded
/// going in.
fn send_once(
    client: &mut Client,
    endpoint: &str,
    op: &OpDesc,
    args: &[Value],
    fail: bool,
) -> (Result<SendReport, EngineError>, Vec<u8>, bool) {
    let was_degraded = client.is_degraded(endpoint);
    let mut wire = Vec::new();
    let out = client.call_via(endpoint, op, args, |slices| {
        if fail {
            return Err(io::Error::other("injected transport fault"));
        }
        let mut n = 0;
        for s in slices {
            wire.extend_from_slice(s);
            n += s.len();
        }
        Ok(n)
    });
    (out, wire, was_degraded)
}

/// The tier trajectories the lane actually produced, accumulated the
/// same way `ClientStats::record` does — the reconciliation oracle.
#[derive(Default)]
struct Observed {
    first_time: u64,
    content_match: u64,
    perfect: u64,
    partial: u64,
    degraded: u64,
    bytes: u64,
}

impl Observed {
    fn absorb(&mut self, r: &SendReport, was_degraded: bool) {
        match r.tier {
            SendTier::FirstTime => self.first_time += 1,
            SendTier::ContentMatch => self.content_match += 1,
            SendTier::PerfectStructural => self.perfect += 1,
            SendTier::PartialStructural => self.partial += 1,
        }
        if was_degraded {
            self.degraded += 1;
        }
        self.bytes += r.bytes as u64;
    }

    fn reconcile(&self, stats: &ClientStats, lane: &str) -> Result<(), TestCaseError> {
        prop_assert_eq!(stats.first_time, self.first_time, "{} first_time", lane);
        prop_assert_eq!(
            stats.content_match,
            self.content_match,
            "{} content_match",
            lane
        );
        prop_assert_eq!(stats.perfect_structural, self.perfect, "{} perfect", lane);
        prop_assert_eq!(stats.partial_structural, self.partial, "{} partial", lane);
        prop_assert_eq!(stats.degraded_sends, self.degraded, "{} degraded", lane);
        prop_assert_eq!(stats.bytes_sent, self.bytes, "{} bytes", lane);
        Ok(())
    }
}

const ENDPOINTS: [&str; 2] = ["http://mesh/a", "http://mesh/b"];

fn run_schedule(
    mut model: Model,
    steps: &[Step],
    config: EngineConfig,
    sharing: bool,
) -> Result<(), TestCaseError> {
    let op = mesh_op();
    let mut xml = Client::new(config.with_wire_format(WireFormat::SoapXml));
    let mut bin = Client::new(config.with_wire_format(WireFormat::CompactBinary));
    xml.set_endpoint_sharing(sharing);
    bin.set_endpoint_sharing(sharing);

    let mut xml_obs = Observed::default();
    let mut bin_obs = Observed::default();
    let mut ep = 0usize;

    for step in steps {
        if matches!(step, Step::SwitchEndpoint) {
            ep = 1 - ep;
        }
        apply(&mut model, step);
        let args = model.args();
        let fail = matches!(step, Step::FailSend);

        let (xml_out, xml_wire, xml_deg) = send_once(&mut xml, ENDPOINTS[ep], &op, &args, fail);
        let (bin_out, bin_wire, bin_deg) = send_once(&mut bin, ENDPOINTS[ep], &op, &args, fail);

        if fail {
            prop_assert!(
                matches!(xml_out, Err(EngineError::Io(_))),
                "xml lane swallowed the injected fault after {:?}",
                step
            );
            prop_assert!(
                matches!(bin_out, Err(EngineError::Io(_))),
                "binary lane swallowed the injected fault after {:?}",
                step
            );
            continue;
        }

        let xml_r = xml_out.unwrap();
        let bin_r = bin_out.unwrap();
        // The degraded-mode ladders must track each other exactly.
        prop_assert_eq!(xml_deg, bin_deg, "degradation diverged after {:?}", step);
        xml_obs.absorb(&xml_r, xml_deg);
        bin_obs.absorb(&bin_r, bin_deg);
        if xml_deg {
            prop_assert_eq!(xml_r.tier, SendTier::FirstTime);
            prop_assert_eq!(bin_r.tier, SendTier::FirstTime);
        }

        // Equal meaning: both wire images decode to exactly the model.
        let xml_vals = parse_envelope(&xml_wire, &op).unwrap();
        let bin_vals = parse_binary_envelope(&bin_wire, &op).unwrap();
        prop_assert_eq!(&xml_vals, &args, "xml decode drifted after {:?}", step);
        prop_assert_eq!(&bin_vals, &args, "binary decode drifted after {:?}", step);
        let (Value::DoubleArray(xa), Value::DoubleArray(ba)) = (&xml_vals[1], &bin_vals[1]) else {
            panic!("xs variant");
        };
        for ((a, b), m) in xa.iter().zip(ba).zip(&model.xs) {
            prop_assert_eq!(a.to_bits(), m.to_bits());
            prop_assert_eq!(b.to_bits(), m.to_bits());
        }

        // Tier trajectories agree exactly: the tier is decided by value
        // dirtiness and structural change, both format-independent. The
        // tier-3 collapse shows up below as the *shift work* vanishing,
        // not as a different label.
        prop_assert_eq!(bin_r.tier, xml_r.tier, "tier divergence after {:?}", step);

        // Numeric rewrites are same-length overwrites in the binary
        // format: never a shift, steal, or split.
        if step.numeric_only() {
            prop_assert_eq!(bin_r.shifts, 0, "binary shift on numeric {:?}", step);
            prop_assert_eq!(bin_r.steals, 0, "binary steal on numeric {:?}", step);
            prop_assert_eq!(bin_r.splits, 0, "binary split on numeric {:?}", step);
        }

        // The compact lane earns its name on every single message.
        prop_assert!(
            bin_wire.len() < xml_wire.len(),
            "binary image ({}B) not smaller than XML ({}B) after {:?}",
            bin_wire.len(),
            xml_wire.len(),
            step
        );
    }

    // Exact per-lane reconciliation: stats must equal the trajectories
    // the lane actually reported — nothing double-counted, nothing lost.
    let xs = xml.stats();
    let bs = bin.stats();
    xml_obs.reconcile(&xs, "xml")?;
    bin_obs.reconcile(&bs, "bin")?;

    // Cross-lane: every aggregate agrees except the Partial→Perfect
    // redistribution the collapse rule allows.
    prop_assert_eq!(xs.first_time, bs.first_time);
    prop_assert_eq!(xs.content_match, bs.content_match);
    prop_assert_eq!(xs.degraded_sends, bs.degraded_sends);
    prop_assert_eq!(xs.shared_clones, bs.shared_clones);
    prop_assert_eq!(
        xs.perfect_structural + xs.partial_structural,
        bs.perfect_structural + bs.partial_structural
    );
    prop_assert!(bs.perfect_structural >= xs.perfect_structural);
    prop_assert_eq!(xs.calls(), bs.calls());
    if xs.calls() > 0 {
        prop_assert!(bs.bytes_sent < xs.bytes_sent);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// ≥256 randomized schedules over dirty fractions, resizes, string
    /// churn, degradation, §6 sharing, both store modes, both flush
    /// modes: the binary lane is a faithful compact image of the XML
    /// lane.
    #[test]
    fn binary_lane_mirrors_xml_lane(
        initial in model_strategy(),
        steps in prop::collection::vec(step_strategy(), 1..14),
        config in config_strategy(),
        sharing in any::<bool>(),
    ) {
        run_schedule(initial, &steps, config, sharing)?;
    }
}

/// Deterministic witness of the collapse itself: a width-growth-only
/// schedule is tier-3 (PartialStructural) on the XML lane and tier-2
/// (PerfectStructural) on the binary lane, with zero shift work.
#[test]
fn numeric_width_growth_collapses_tier3_to_tier2() {
    let op = OpDesc::single(
        "grow",
        "urn:mesh",
        "xs",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
    );
    let config = EngineConfig::paper_default().with_width(WidthPolicy::Exact);
    let mut xml = Client::new(config.with_wire_format(WireFormat::SoapXml));
    let mut bin = Client::new(config.with_wire_format(WireFormat::CompactBinary));

    // Short decimal images first, long ones second: every element's
    // XML width grows; its binary width (8 bytes) cannot.
    let first = vec![0.5_f64; 64];
    let second: Vec<f64> = (0..64)
        .map(|i| 0.123456789012345 + i as f64 * 1e-7)
        .collect();

    for c in [&mut xml, &mut bin] {
        let r = c
            .call_via("ep", &op, &[Value::DoubleArray(first.clone())], |s| {
                Ok(s.iter().map(|x| x.len()).sum())
            })
            .unwrap();
        assert_eq!(r.tier, SendTier::FirstTime);
    }
    let xml_r = xml
        .call_via("ep", &op, &[Value::DoubleArray(second.clone())], |s| {
            Ok(s.iter().map(|x| x.len()).sum())
        })
        .unwrap();
    let bin_r = bin
        .call_via("ep", &op, &[Value::DoubleArray(second.clone())], |s| {
            Ok(s.iter().map(|x| x.len()).sum())
        })
        .unwrap();

    // Same tier label both sides — but the XML lane pays shift passes
    // for the wider decimal images while the binary lane overwrites
    // 8-byte slots in place. That elimination of tier-3 *work* from a
    // tier-2 send is the collapse the compact format buys.
    assert_eq!(xml_r.tier, SendTier::PerfectStructural);
    assert!(
        xml_r.shifts > 0,
        "exact-width XML lane must shift on width growth"
    );
    assert_eq!(
        bin_r.tier,
        SendTier::PerfectStructural,
        "binary lane must absorb width growth in place"
    );
    assert_eq!(bin_r.shifts, 0);
    assert_eq!(bin_r.steals, 0);
    assert_eq!(bin_r.splits, 0);
    assert_eq!(bin_r.values_written, 64);
}

/// End-to-end leg of the differential suite: the same call schedule
/// through a negotiated-binary RPC client and an XML-pinned one, against
/// live HTTP servers on *both* server cores, must produce identical
/// decoded responses — and the binary client must actually settle on
/// the binary lane.
#[test]
fn cross_format_schedules_agree_end_to_end_on_both_cores() {
    use bsoap::rpc::RpcClient;
    use bsoap::server::{HttpServer, Service};
    use bsoap::transport::NegotiationState;
    use bsoap::wsdl::ServiceDesc;

    let cores = if bsoap::transport::poller::supported() {
        vec![
            bsoap_core::ServerCore::WorkerPool,
            bsoap_core::ServerCore::EventLoop,
        ]
    } else {
        vec![bsoap_core::ServerCore::WorkerPool]
    };

    for core in cores {
        let op = OpDesc::single(
            "scale",
            "urn:vec",
            "xs",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        );
        let desc = ServiceDesc {
            name: "Vec".into(),
            namespace: "urn:vec".into(),
            endpoint: "http://svc/vec".into(),
            operations: vec![op.clone()],
        };
        let mut svc = Service::new(
            "urn:vec",
            EngineConfig::paper_default().with_server_core(core),
        );
        svc.register(
            op,
            vec![ParamDesc {
                name: "ys".into(),
                desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
            }],
            |args| {
                let Value::DoubleArray(v) = &args[0] else {
                    return Err("type".into());
                };
                Ok(vec![Value::DoubleArray(
                    v.iter().map(|x| x * 2.0).collect(),
                )])
            },
        );
        let server = HttpServer::spawn(svc).unwrap();

        let mut bin_rpc = RpcClient::connect(
            desc.clone(),
            server.addr(),
            EngineConfig::paper_default().with_wire_format(WireFormat::CompactBinary),
        )
        .unwrap();
        let mut xml_rpc = RpcClient::connect(
            desc,
            server.addr(),
            EngineConfig::paper_default().with_wire_format(WireFormat::SoapXml),
        )
        .unwrap();
        for rpc in [&mut bin_rpc, &mut xml_rpc] {
            rpc.declare_response(
                "scale",
                vec![ParamDesc {
                    name: "ys".into(),
                    desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
                }],
            );
        }

        // A schedule with content matches, in-place rewrites, and a
        // resize — the same one on both lanes.
        let schedule: Vec<Vec<f64>> = vec![
            vec![0.5; 8],
            vec![0.5; 8],
            {
                let mut v = vec![0.5; 8];
                v[3] = 0.123456789;
                v
            },
            vec![1.25; 13],
        ];
        for (i, xs) in schedule.iter().enumerate() {
            let (bin_vals, bin_r) = bin_rpc
                .call_op(
                    &bin_rpc.service().operations[0].clone(),
                    &[Value::DoubleArray(xs.clone())],
                )
                .unwrap();
            let (xml_vals, xml_r) = xml_rpc
                .call_op(
                    &xml_rpc.service().operations[0].clone(),
                    &[Value::DoubleArray(xs.clone())],
                )
                .unwrap();
            assert_eq!(
                bin_vals, xml_vals,
                "core {core:?}: responses diverged at call {i}"
            );
            let Value::DoubleArray(ys) = &bin_vals[0] else {
                panic!("variant")
            };
            assert_eq!(ys.len(), xs.len());
            for (y, x) in ys.iter().zip(xs) {
                assert_eq!(y.to_bits(), (x * 2.0).to_bits());
            }
            // Call 0 rides XML in both clients (the offer is still out).
            // Call 1 is where the negotiated client switches lanes, so it
            // rebuilds FirstTime on the binary lane while the XML client
            // content-matches; from call 2 on the trajectories realign.
            let expect_xml = [
                SendTier::FirstTime,
                SendTier::ContentMatch,
                SendTier::PerfectStructural,
                SendTier::PartialStructural,
            ];
            let expect_bin = [
                SendTier::FirstTime,
                SendTier::FirstTime,
                SendTier::PerfectStructural,
                SendTier::PartialStructural,
            ];
            assert_eq!(
                xml_r.tier, expect_xml[i],
                "core {core:?}: xml tier at call {i}"
            );
            assert_eq!(
                bin_r.tier, expect_bin[i],
                "core {core:?}: bin tier at call {i}"
            );
        }
        assert_eq!(bin_rpc.negotiation_state(), NegotiationState::Binary);
        assert_eq!(xml_rpc.negotiation_state(), NegotiationState::Xml);
        // Request lane settled binary after call 1, so the last three
        // requests rode the compact lane end to end.
        assert!(bin_rpc.stats().bytes_sent < xml_rpc.stats().bytes_sent);
        server.stop();
    }
}

/// Deterministic degradation twin-run: the ladder trips and recovers at
/// the same calls in both lanes, and the stats agree exactly.
#[test]
fn degradation_ladder_is_format_blind() {
    let op = mesh_op();
    let config = EngineConfig::paper_default().with_degraded(2, 1);
    let mut xml = Client::new(config.with_wire_format(WireFormat::SoapXml));
    let mut bin = Client::new(config.with_wire_format(WireFormat::CompactBinary));
    let model = Model {
        step: 7,
        xs: vec![1.5, 2.5],
        mios: vec![(1, 2, 3.0)],
        tag: "t".into(),
    };
    let args = model.args();

    // ok, fail, fail → degraded; ok (degraded, recovers); ok (tiered again).
    let script = [false, true, true, false, false, false];
    for (i, &fail) in script.iter().enumerate() {
        let (xml_out, _, xml_deg) = send_once(&mut xml, "ep", &op, &args, fail);
        let (bin_out, _, bin_deg) = send_once(&mut bin, "ep", &op, &args, fail);
        assert_eq!(xml_deg, bin_deg, "ladder diverged at call {i}");
        assert_eq!(
            xml_out.is_ok(),
            bin_out.is_ok(),
            "outcome diverged at call {i}"
        );
    }
    assert!(!xml.is_degraded("ep"));
    assert!(!bin.is_degraded("ep"));

    let (xs, bs) = (xml.stats(), bin.stats());
    assert_eq!(xs.degraded_sends, 1);
    assert_eq!(bs.degraded_sends, 1);
    // call 0 FirstTime; call 3 degraded FirstTime (template was purged);
    // call 4 FirstTime (nothing retained while degraded); call 5 ContentMatch.
    assert_eq!(xs.first_time, 3);
    assert_eq!(bs.first_time, 3);
    assert_eq!(xs.content_match, 1);
    assert_eq!(bs.content_match, 1);
    assert!(bs.bytes_sent < xs.bytes_sent);
}
