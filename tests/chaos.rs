//! Chaos proptest suite: the fault-tolerance layer's headline proof.
//!
//! Randomized schedules of partial writes, injected transport errors,
//! EINTR storms, and stalls past the deadline are driven through the
//! differential client, with every send routed through the production
//! [`Resilience`] layer under a bounded policy deadline — the layer that
//! detects expiry, counts `DeadlinesExceeded`, and mints the marker
//! error the client maps to a typed `DeadlineExceeded`. For every
//! schedule, three things must hold:
//!
//! 1. **Wire fidelity or typed failure** — each call either puts bytes on
//!    the wire that are pad-equivalent to a from-scratch full
//!    serialization of the same arguments, or surfaces a *typed* error
//!    ([`EngineError::Io`] with the injected kind, or
//!    [`EngineError::DeadlineExceeded`] for timeout kinds — under a
//!    bounded deadline every socket timeout is sized to the remaining
//!    budget, so `TimedOut`/`WouldBlock` from an attempt IS expiry). No
//!    wrong bytes, no untyped panics.
//! 2. **State integrity** — the saved template (when one survives) passes
//!    its structural invariants after every step, the degraded-mode
//!    ladder demotes/recovers exactly as specified, and a clean send
//!    after the schedule always succeeds with oracle-identical bytes.
//! 3. **Exact observability** — tier counters, values written, bytes
//!    sent, plan counts, deadline expiries, degraded sends, latency
//!    histogram observation counts, and Degraded/DeadlineExceeded trace
//!    events all reconcile against a reference model, after every single
//!    call.
//!
//! Everything runs on a [`VirtualClock`]: stalls "past the deadline"
//! advance virtual time, so the whole suite performs zero real sleeps.
//!
//! Every schedule runs on both wire lanes (DESIGN §3.15). The XML lane
//! proves fidelity against the gSOAP-style full-serialization oracle;
//! the compact-binary lane — whose frames the pad-stripping oracle
//! cannot read — proves it by *decoding* the captured wire with
//! [`parse_binary_envelope`] and demanding bit-exact argument recovery.
//! Fault taxonomy, typed errors, the degraded ladder, and the counter
//! model are format-blind; only the fidelity oracle and the
//! `SendsXml`/`SendsBinary` lane counters switch.

use std::io::{self, IoSlice, Write};
use std::sync::Arc;
use std::time::Duration;

use bsoap::baseline::GSoapLike;
use bsoap::convert::ScalarKind;
use bsoap::deser::parse_binary_envelope;
use bsoap::obs::{Clock, Counter, EngineStats, HistId, Metrics, Tier, TraceKind, VirtualClock};
use bsoap::xml::strip_pad;
use bsoap::{
    write_all_vectored, AttemptFailure, Client, EngineConfig, EngineError, FaultPolicy, OpDesc,
    Resilience, SendTier, TypeDesc, Value, WidthPolicy, WireFormat,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Per-call budget the resilience policy grants each send.
const BUDGET: Duration = Duration::from_secs(5);

/// Virtual nanoseconds a stalled write burns before erroring — larger
/// than [`BUDGET`], so a stall always spends the whole budget.
const STALL_NS: u64 = 10_000_000_000;

fn doubles_op() -> OpDesc {
    OpDesc::single(
        "send",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
    )
}

// ---------------------------------------------------------------------
// Fault injection: a Write shim with one scheduled fault per call.
// ---------------------------------------------------------------------

/// Injected transport error kinds (the taxonomy the resilience layer
/// classifies: stale-socket kinds, hard kinds, and timeout kinds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ErrKind {
    Reset,
    BrokenPipe,
    Aborted,
    /// Injected as a zero-byte write; the vectored-send loop converts it.
    WriteZero,
    TimedOut,
    WouldBlock,
}

impl ErrKind {
    fn io(self) -> io::ErrorKind {
        match self {
            ErrKind::Reset => io::ErrorKind::ConnectionReset,
            ErrKind::BrokenPipe => io::ErrorKind::BrokenPipe,
            ErrKind::Aborted => io::ErrorKind::ConnectionAborted,
            ErrKind::WriteZero => io::ErrorKind::WriteZero,
            ErrKind::TimedOut => io::ErrorKind::TimedOut,
            ErrKind::WouldBlock => io::ErrorKind::WouldBlock,
        }
    }
}

/// One call's fault plan.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Fault {
    /// Accept everything.
    Clean,
    /// Accept at most `cap` bytes per write call (partial writes); the
    /// send loop must resume and complete.
    Dribble { cap: usize },
    /// Return `Interrupted` for the first `hiccups` write calls, then
    /// accept everything — must NOT fail the call (EINTR is retried).
    EintrThenClean { hiccups: u8 },
    /// Accept `accept` bytes, then fail with `kind`. If the message is
    /// shorter than `accept` the fault never fires and the call succeeds.
    ErrorAfter { accept: usize, kind: ErrKind },
    /// Accept `accept` bytes, then stall past the deadline: advance the
    /// virtual clock and fail with `TimedOut`.
    StallPastDeadline { accept: usize },
}

/// What error kind the wire surfaces if this fault fires.
fn injected_kind(f: Fault) -> Option<io::ErrorKind> {
    match f {
        Fault::ErrorAfter { kind, .. } => Some(kind.io()),
        Fault::StallPastDeadline { .. } => Some(io::ErrorKind::TimedOut),
        _ => None,
    }
}

/// Whether this fault, if it fires, must be classified as deadline
/// expiry by the resilience layer: under a bounded policy deadline,
/// both timeout spellings (`TimedOut` from `connect_timeout`,
/// `WouldBlock` from `SO_RCVTIMEO`/`SO_SNDTIMEO`) mean the budget is
/// spent.
fn is_timeout_fault(f: Fault) -> bool {
    matches!(
        f,
        Fault::ErrorAfter {
            kind: ErrKind::TimedOut | ErrKind::WouldBlock,
            ..
        } | Fault::StallPastDeadline { .. }
    )
}

/// Write shim executing one [`Fault`] per call; collects the bytes it
/// accepted so successful sends can be checked against the oracle.
struct FaultyStream {
    /// Bytes accepted during the current call.
    wire: Vec<u8>,
    fault: Fault,
    taken: usize,
    hiccups_left: u8,
    /// Whether the scheduled fault actually fired this call.
    fired: bool,
    clock: Arc<VirtualClock>,
}

impl FaultyStream {
    fn new(clock: Arc<VirtualClock>) -> Self {
        FaultyStream {
            wire: Vec::new(),
            fault: Fault::Clean,
            taken: 0,
            hiccups_left: 0,
            fired: false,
            clock,
        }
    }

    fn begin_call(&mut self, fault: Fault) {
        self.wire.clear();
        self.taken = 0;
        self.fired = false;
        self.fault = fault;
        self.hiccups_left = match fault {
            Fault::EintrThenClean { hiccups } => hiccups,
            _ => 0,
        };
    }

    fn accept(&mut self, bufs: &[IoSlice<'_>], room: usize) -> usize {
        let mut n = 0;
        for b in bufs {
            if n == room {
                break;
            }
            let take = b.len().min(room - n);
            self.wire.extend_from_slice(&b[..take]);
            n += take;
        }
        self.taken += n;
        n
    }
}

impl Write for FaultyStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.write_vectored(&[IoSlice::new(buf)])
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        let total: usize = bufs.iter().map(|b| b.len()).sum();
        match self.fault {
            Fault::Clean => Ok(self.accept(bufs, total)),
            Fault::Dribble { cap } => Ok(self.accept(bufs, cap.max(1).min(total))),
            Fault::EintrThenClean { .. } => {
                if self.hiccups_left > 0 {
                    self.hiccups_left -= 1;
                    return Err(io::Error::new(io::ErrorKind::Interrupted, "injected EINTR"));
                }
                Ok(self.accept(bufs, total))
            }
            Fault::ErrorAfter { accept, kind } => {
                if self.taken >= accept {
                    self.fired = true;
                    if kind == ErrKind::WriteZero {
                        return Ok(0);
                    }
                    return Err(io::Error::new(kind.io(), "injected fault"));
                }
                Ok(self.accept(bufs, (accept - self.taken).min(total)))
            }
            Fault::StallPastDeadline { accept } => {
                if self.taken >= accept {
                    self.fired = true;
                    self.clock.advance(STALL_NS);
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "stalled past deadline",
                    ));
                }
                Ok(self.accept(bufs, (accept - self.taken).min(total)))
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Reference model: the four-tier hierarchy plus the fault-tolerance
// counters (deadline expiries, degraded-mode ladder, failure-aware
// counter attribution).
// ---------------------------------------------------------------------

/// How one call ended on the wire.
enum Outcome {
    Success { wire: u64 },
    Fail { deadline: bool },
}

/// Extends the tier reference model (`tests/tier_state_machine.rs`) with
/// failure semantics: a differential flush counts its tier and values
/// even when the subsequent wire write fails (the flush completed and
/// the template holds the new bytes), while `BytesSent` and the latency
/// histograms record only sends that reached the wire. First-time and
/// degraded sends count nothing on failure (they error before their
/// counter sites).
struct ChaosModel {
    /// Bit patterns of the template contents; `None` = no template.
    saved: Option<Vec<u64>>,
    tiers: [u64; 4],
    /// Successful sends per tier (= latency histogram observations).
    hist: [u64; 4],
    values_written: u64,
    bytes_sent: u64,
    plans: u64,
    /// Differential flushes (each emits one `SendSpan` trace).
    diff_flushes: u64,
    /// Sends landed on the negotiated lane's `SendsXml`/`SendsBinary`
    /// counter. Diff-tier sends tick at flush time (before the wire
    /// write, so a failed wire still counts); first-time and degraded
    /// sends tick only after a successful send.
    format_sends: u64,
    deadlines: u64,
    degraded_sends: u64,
    demotions: u64,
    recoveries: u64,
    // Degraded-ladder state, mirroring the client's per-endpoint health.
    degrade_after: u32,
    recover_after: u32,
    fails: u32,
    degraded: bool,
    degraded_successes: u32,
}

impl ChaosModel {
    fn new(degrade_after: u32, recover_after: u32) -> Self {
        ChaosModel {
            saved: None,
            tiers: [0; 4],
            hist: [0; 4],
            values_written: 0,
            bytes_sent: 0,
            plans: 0,
            diff_flushes: 0,
            format_sends: 0,
            deadlines: 0,
            degraded_sends: 0,
            demotions: 0,
            recoveries: 0,
            degrade_after,
            recover_after: recover_after.max(1),
            fails: 0,
            degraded: false,
            degraded_successes: 0,
        }
    }

    fn on_success_health(&mut self) {
        if self.degrade_after == 0 {
            return;
        }
        self.fails = 0;
        if self.degraded {
            self.degraded_successes += 1;
            if self.degraded_successes >= self.recover_after {
                self.degraded = false;
                self.degraded_successes = 0;
                self.recoveries += 1;
            }
        }
    }

    fn on_fail(&mut self, deadline: bool) {
        if deadline {
            self.deadlines += 1;
        }
        if self.degrade_after == 0 {
            return;
        }
        self.fails += 1;
        if !self.degraded && self.fails >= self.degrade_after {
            // Demotion evicts the template: stateless mode keeps nothing.
            self.degraded = true;
            self.degraded_successes = 0;
            self.demotions += 1;
            self.saved = None;
        }
    }

    /// Fold one call into the model; returns the tier a successful send
    /// must report.
    fn step(&mut self, xs: &[f64], outcome: &Outcome) -> Option<SendTier> {
        let bits: Vec<u64> = xs.iter().map(|x| x.to_bits()).collect();
        let first_time_leaves = bits.len() as u64 + 1;

        if self.degrade_after > 0 && self.degraded {
            // Stateless full-serialization send; template stays evicted.
            return match outcome {
                Outcome::Success { wire } => {
                    self.tiers[Tier::FirstTime.index()] += 1;
                    self.hist[Tier::FirstTime.index()] += 1;
                    self.values_written += first_time_leaves;
                    self.bytes_sent += wire;
                    self.degraded_sends += 1;
                    self.format_sends += 1;
                    self.on_success_health();
                    Some(SendTier::FirstTime)
                }
                Outcome::Fail { deadline } => {
                    self.on_fail(*deadline);
                    None
                }
            };
        }

        match self.saved.take() {
            None => match outcome {
                Outcome::Success { wire } => {
                    self.tiers[Tier::FirstTime.index()] += 1;
                    self.hist[Tier::FirstTime.index()] += 1;
                    self.values_written += first_time_leaves;
                    self.bytes_sent += wire;
                    self.saved = Some(bits);
                    self.format_sends += 1;
                    self.on_success_health();
                    Some(SendTier::FirstTime)
                }
                Outcome::Fail { deadline } => {
                    // Failed before the template was saved: no counters.
                    self.on_fail(*deadline);
                    None
                }
            },
            Some(old) => {
                // The flush runs before the wire write: tier, values,
                // and plan count regardless of the wire outcome, and the
                // template now holds the new bytes.
                self.plans += 1;
                self.diff_flushes += 1;
                self.format_sends += 1;
                let changed = old.iter().zip(&bits).filter(|(o, n)| *o != *n).count() as u64;
                let (tier, written) = if old.len() != bits.len() {
                    (SendTier::PartialStructural, changed + 1)
                } else if changed > 0 {
                    (SendTier::PerfectStructural, changed)
                } else {
                    (SendTier::ContentMatch, 0)
                };
                self.tiers[tier.obs().index()] += 1;
                self.values_written += written;
                self.saved = Some(bits);
                match outcome {
                    Outcome::Success { wire } => {
                        self.hist[tier.obs().index()] += 1;
                        self.bytes_sent += wire;
                        self.on_success_health();
                        Some(tier)
                    }
                    Outcome::Fail { deadline } => {
                        self.on_fail(*deadline);
                        None
                    }
                }
            }
        }
    }

    /// Assert a registry snapshot agrees with the model exactly.
    fn check(&self, snap: &EngineStats, format: WireFormat) -> Result<(), TestCaseError> {
        prop_assert_eq!(snap.tier_counts(), self.tiers, "tier counters");
        prop_assert_eq!(
            snap.total_sends(),
            self.tiers.iter().sum::<u64>(),
            "total sends"
        );
        prop_assert_eq!(
            snap.get(Counter::ValuesWritten),
            self.values_written,
            "values written"
        );
        prop_assert_eq!(snap.get(Counter::BytesSent), self.bytes_sent, "bytes sent");
        prop_assert_eq!(snap.get(Counter::PlansComputed), self.plans, "plans");
        prop_assert_eq!(snap.get(Counter::CostFallbacks), 0u64, "cost fallbacks");
        prop_assert_eq!(
            snap.get(Counter::DeadlinesExceeded),
            self.deadlines,
            "deadline expiries"
        );
        prop_assert_eq!(
            snap.get(Counter::DegradedSends),
            self.degraded_sends,
            "degraded sends"
        );
        // Zero shift/steal/split work on both lanes — via Max-width
        // stuffing on XML, and intrinsically on binary, whose
        // fixed-width numeric slots can never outgrow their region.
        prop_assert_eq!(snap.get(Counter::Shifts), 0u64);
        prop_assert_eq!(snap.get(Counter::Steals), 0u64);
        prop_assert_eq!(snap.get(Counter::Splits), 0u64);
        // Every send lands on the negotiated lane's counter and never
        // the other lane's.
        let (own, other) = match format {
            WireFormat::SoapXml => (Counter::SendsXml, Counter::SendsBinary),
            WireFormat::CompactBinary => (Counter::SendsBinary, Counter::SendsXml),
        };
        prop_assert_eq!(snap.get(own), self.format_sends, "own-lane sends");
        prop_assert_eq!(snap.get(other), 0u64, "wrong-lane sends");
        // Latency observations exist only for sends that reached the
        // wire — a failed differential send counts its tier but never
        // observes a latency.
        for t in Tier::ALL {
            prop_assert_eq!(
                snap.hist(HistId::send(t)).count(),
                self.hist[t.index()],
                "latency observations for {:?}",
                t
            );
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Schedule driver.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Update {
    Set(usize, f64),
    Resize(usize),
    Resend,
}

fn apply(xs: &mut Vec<f64>, u: &Update) {
    match u {
        Update::Set(i, v) => {
            if !xs.is_empty() {
                let i = i % xs.len();
                xs[i] = *v;
            }
        }
        Update::Resize(n) => {
            let n = *n;
            if n > xs.len() {
                let start = xs.len();
                xs.extend((start..n).map(|k| k as f64 * 0.5));
            } else {
                xs.truncate(n);
            }
        }
        Update::Resend => {}
    }
}

/// Run one fault schedule end to end, checking every property after
/// every call. A final clean send is appended to every schedule: after
/// arbitrary chaos, the next healthy call must succeed with bytes
/// identical to a fresh full serialization.
fn run_schedule(
    init: Vec<f64>,
    steps: &[(Update, Fault)],
    degrade_after: u32,
    format: WireFormat,
) -> Result<(), TestCaseError> {
    let op = doubles_op();
    let clock = Arc::new(VirtualClock::new());
    let metrics = Arc::new(Metrics::with_clock(Arc::clone(&clock) as Arc<dyn Clock>));
    let cfg = EngineConfig::paper_default()
        .with_width(WidthPolicy::Max)
        .with_wire_format(format)
        .with_degraded(degrade_after, 2);
    let mut client = Client::new(cfg);
    client.set_metrics(Arc::clone(&metrics));
    // Sends go through the production resilience layer: it opens the
    // per-call deadline, classifies timeout kinds as expiry, counts and
    // traces `DeadlinesExceeded` (the client deliberately does not — one
    // expired call must read as one on the shared registry), and mints
    // the marker error the client maps to `DeadlineExceeded`. No policy
    // retries and no breaker: each injected fault fires exactly once.
    let resilience = {
        let mut r = Resilience::with_clock(
            FaultPolicy {
                deadline: Some(BUDGET),
                ..FaultPolicy::default()
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        r.set_metrics(Arc::clone(&metrics));
        r
    };
    let mut faulty = FaultyStream::new(Arc::clone(&clock));
    let mut model = ChaosModel::new(degrade_after, 2);
    let mut oracle = GSoapLike::new();
    let mut xs = init;

    let mut all_steps: Vec<(Update, Fault)> = steps.to_vec();
    all_steps.push((Update::Resend, Fault::Clean));
    let last = all_steps.len() - 1;

    for (i, (u, fault)) in all_steps.iter().enumerate() {
        apply(&mut xs, u);
        faulty.begin_call(*fault);
        let args = [Value::DoubleArray(xs.clone())];
        let res = client.call_via("ep", &op, &args, |slices| {
            resilience
                .run(|_, _| write_all_vectored(&mut faulty, slices).map_err(AttemptFailure::hard))
        });

        if i == last {
            prop_assert!(
                res.is_ok(),
                "clean send after the schedule must succeed, got {:?}",
                res.as_ref().err()
            );
        }

        let outcome = match &res {
            Ok(report) => {
                prop_assert!(
                    !faulty.fired,
                    "step {}: fault {:?} fired but the call succeeded",
                    i,
                    fault
                );
                prop_assert_eq!(
                    report.bytes,
                    faulty.wire.len(),
                    "step {}: reported bytes vs wire bytes",
                    i
                );
                let full = oracle.serialize(&op, &args).unwrap().to_vec();
                match format {
                    WireFormat::SoapXml => {
                        prop_assert_eq!(
                            strip_pad(&faulty.wire),
                            strip_pad(&full),
                            "step {}: wire bytes diverge from full serialization",
                            i
                        );
                    }
                    WireFormat::CompactBinary => {
                        // The pad-stripping oracle can't read binary
                        // frames; fidelity means the wire *decodes* back
                        // to the arguments, bit-exactly.
                        let decoded = parse_binary_envelope(&faulty.wire, &op).map_err(|e| {
                            TestCaseError::Fail(format!(
                                "step {i}: binary wire does not decode: {e}"
                            ))
                        })?;
                        prop_assert_eq!(decoded.len(), 1, "step {}: param count", i);
                        let Value::DoubleArray(ds) = &decoded[0] else {
                            return Err(TestCaseError::Fail(format!(
                                "step {i}: decoded param is not a double array"
                            )));
                        };
                        let got: Vec<u64> = ds.iter().map(|x| x.to_bits()).collect();
                        let want: Vec<u64> = xs.iter().map(|x| x.to_bits()).collect();
                        prop_assert_eq!(
                            got,
                            want,
                            "step {}: decoded doubles diverge from the arguments",
                            i
                        );
                        // The compact frame always undercuts the XML
                        // envelope the same send would have cost.
                        prop_assert!(
                            faulty.wire.len() < full.len(),
                            "step {}: binary frame ({}B) not smaller than XML ({}B)",
                            i,
                            faulty.wire.len(),
                            full.len()
                        );
                    }
                }
                Outcome::Success {
                    wire: report.bytes as u64,
                }
            }
            Err(EngineError::DeadlineExceeded) => {
                prop_assert!(faulty.fired, "step {}: phantom deadline error", i);
                prop_assert!(
                    is_timeout_fault(*fault),
                    "step {}: DeadlineExceeded from a non-timeout fault {:?}",
                    i,
                    fault
                );
                Outcome::Fail { deadline: true }
            }
            Err(EngineError::Io(e)) => {
                prop_assert!(faulty.fired, "step {}: phantom I/O error {:?}", i, e);
                prop_assert!(
                    !is_timeout_fault(*fault),
                    "step {}: timeout fault under a bounded deadline must surface \
                     as DeadlineExceeded, got Io({:?})",
                    i,
                    e.kind()
                );
                prop_assert_eq!(
                    Some(e.kind()),
                    injected_kind(*fault),
                    "step {}: error kind vs injected fault {:?}",
                    i,
                    fault
                );
                Outcome::Fail { deadline: false }
            }
            Err(other) => {
                return Err(TestCaseError::Fail(format!(
                    "step {i}: untyped error escaped: {other:?}"
                )));
            }
        };

        let want_tier = model.step(&xs, &outcome);
        if let Ok(report) = &res {
            prop_assert_eq!(Some(report.tier), want_tier, "tier at step {}", i);
        }

        // Whatever the outcome, a surviving template must be internally
        // consistent, and its existence must match the model (failures
        // before first save keep none; demotion evicts).
        if let Some(tpl) = client.template_mut("ep", &op) {
            tpl.assert_invariants();
        }
        prop_assert_eq!(
            client.template_mut("ep", &op).is_some(),
            model.saved.is_some(),
            "template presence at step {}",
            i
        );

        model.check(&metrics.snapshot(), format)?;
    }

    // Trace-event reconciliation: deadline expiries, degraded-mode
    // transitions, and one SendSpan per differential flush, with nothing
    // evicted from the ring.
    let (events, dropped) = metrics.trace_ring().snapshot();
    prop_assert_eq!(dropped, 0u64, "trace ring overflowed");
    let count =
        |pred: &dyn Fn(&TraceKind) -> bool| events.iter().filter(|e| pred(&e.kind)).count() as u64;
    prop_assert_eq!(
        count(&|k| matches!(k, TraceKind::DeadlineExceeded)),
        model.deadlines,
        "DeadlineExceeded trace events"
    );
    prop_assert_eq!(
        count(&|k| matches!(k, TraceKind::Degraded { on: true })),
        model.demotions,
        "demotion trace events"
    );
    prop_assert_eq!(
        count(&|k| matches!(k, TraceKind::Degraded { on: false })),
        model.recoveries,
        "recovery trace events"
    );
    prop_assert_eq!(
        count(&|k| matches!(k, TraceKind::SendSpan { .. })),
        model.diff_flushes,
        "SendSpan trace events"
    );
    Ok(())
}

// ---------------------------------------------------------------------
// Strategies.
// ---------------------------------------------------------------------

fn small_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        any::<i32>().prop_map(|i| i as f64),
        (any::<i32>(), 1i32..1000).prop_map(|(a, b)| a as f64 / b as f64),
        any::<u64>()
            .prop_map(f64::from_bits)
            .prop_filter("finite", |x| x.is_finite()),
    ]
}

fn update_strategy() -> impl Strategy<Value = Update> {
    prop_oneof![
        (0usize..64, small_f64()).prop_map(|(i, v)| Update::Set(i, v)),
        (0usize..32).prop_map(Update::Resize),
        Just(Update::Resend),
    ]
}

fn err_kind_strategy() -> impl Strategy<Value = ErrKind> {
    prop_oneof![
        Just(ErrKind::Reset),
        Just(ErrKind::BrokenPipe),
        Just(ErrKind::Aborted),
        Just(ErrKind::WriteZero),
        Just(ErrKind::TimedOut),
        Just(ErrKind::WouldBlock),
    ]
}

fn fault_strategy() -> impl Strategy<Value = Fault> {
    prop_oneof![
        Just(Fault::Clean),
        (1usize..96).prop_map(|cap| Fault::Dribble { cap }),
        (1u8..4).prop_map(|hiccups| Fault::EintrThenClean { hiccups }),
        // Small accepts fail early (often before the first-time template
        // is saved); large accepts may never fire and the call succeeds.
        (0usize..64, err_kind_strategy())
            .prop_map(|(accept, kind)| Fault::ErrorAfter { accept, kind }),
        (0usize..4096, err_kind_strategy())
            .prop_map(|(accept, kind)| Fault::ErrorAfter { accept, kind }),
        (0usize..2048).prop_map(|accept| Fault::StallPastDeadline { accept }),
    ]
}

// ---------------------------------------------------------------------
// The chaos properties. 192 + 96 = 288 randomized fault schedules per
// default run (PROPTEST_CASES scales both).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Default policy (no degraded mode): every schedule keeps wire
    /// fidelity, typed errors, template invariants, and exact counters.
    #[test]
    fn chaos_schedules_default_policy(
        init in prop::collection::vec(small_f64(), 0..12),
        steps in prop::collection::vec((update_strategy(), fault_strategy()), 1..16),
        binary in any::<bool>(),
    ) {
        let format = if binary { WireFormat::CompactBinary } else { WireFormat::SoapXml };
        run_schedule(init, &steps, 0, format)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// With the degraded-mode ladder armed: demotion to stateless sends,
    /// recovery, and the DegradedSends/Degraded-trace accounting must
    /// track the reference ladder exactly.
    #[test]
    fn chaos_schedules_degraded_ladder(
        init in prop::collection::vec(small_f64(), 0..12),
        steps in prop::collection::vec((update_strategy(), fault_strategy()), 1..16),
        degrade_after in 1u32..4,
        binary in any::<bool>(),
    ) {
        let format = if binary { WireFormat::CompactBinary } else { WireFormat::SoapXml };
        run_schedule(init, &steps, degrade_after, format)?;
    }
}

/// Fixed-seed smoke schedule visiting every fault kind, run on both
/// wire lanes with the ladder both armed and off — the deterministic
/// anchor for CI.
#[test]
fn chaos_smoke_fixed_schedule() {
    let steps = vec![
        (Update::Resend, Fault::Clean),
        (Update::Set(1, 9.5), Fault::Dribble { cap: 7 }),
        (Update::Set(2, -3.25), Fault::EintrThenClean { hiccups: 2 }),
        (
            Update::Resend,
            Fault::ErrorAfter {
                accept: 11,
                kind: ErrKind::Reset,
            },
        ),
        (
            Update::Resize(6),
            Fault::ErrorAfter {
                accept: 0,
                kind: ErrKind::WriteZero,
            },
        ),
        (Update::Set(0, 7.5), Fault::StallPastDeadline { accept: 5 }),
        (Update::Resend, Fault::Clean),
        (
            Update::Set(3, 1.0),
            Fault::ErrorAfter {
                accept: 3,
                kind: ErrKind::BrokenPipe,
            },
        ),
        (Update::Resend, Fault::Clean),
        (Update::Resend, Fault::Clean),
    ];
    for format in [WireFormat::SoapXml, WireFormat::CompactBinary] {
        for degrade_after in [0, 2] {
            run_schedule(vec![1.5, 2.5, 3.5, 4.5], &steps, degrade_after, format).unwrap_or_else(
                |e| panic!("{} degrade_after {degrade_after}: {e:?}", format.name()),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Server-backed chaos: the same fault taxonomy the write shim injects
// (partial writes, EINTR storms) driven over *real* sockets against both
// server cores. Every dribbled, interrupted send must reassemble
// byte-perfectly on the server — on the worker pool's blocking reader
// and on the event loop's incremental per-connection state machine alike.
// ---------------------------------------------------------------------

/// Every server core available on this platform.
fn cores() -> Vec<bsoap::transport::ServerCore> {
    use bsoap::transport::ServerCore;
    if bsoap::transport::poller::supported() {
        vec![ServerCore::WorkerPool, ServerCore::EventLoop]
    } else {
        vec![ServerCore::WorkerPool]
    }
}

#[test]
fn fragmented_chaos_sends_round_trip_on_both_cores() {
    use bsoap::transport::http::{
        post_gather_vectored, read_response, HttpVersion, PostScratch, RequestConfig,
    };
    use bsoap::transport::{ServerMode, ServerOptions, TestServer};
    use std::net::TcpStream;

    /// Write shim over a real socket: at most `cap` bytes per call, with
    /// periodic injected EINTR — the worst fragmentation a client socket
    /// can legally exhibit, now hitting a live server.
    struct FragShim<'a> {
        inner: &'a TcpStream,
        cap: usize,
        calls: usize,
        eintr_every: usize,
    }
    impl Write for FragShim<'_> {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.calls += 1;
            if self.eintr_every != 0 && self.calls.is_multiple_of(self.eintr_every) {
                return Err(io::ErrorKind::Interrupted.into());
            }
            let n = buf.len().min(self.cap);
            (&mut self.inner).write(&buf[..n])
        }
        fn flush(&mut self) -> io::Result<()> {
            (&mut self.inner).flush()
        }
    }

    for (core, format) in cores()
        .into_iter()
        .flat_map(|c| [WireFormat::SoapXml, WireFormat::CompactBinary].map(move |f| (c, f)))
    {
        let server = TestServer::spawn_with(
            ServerMode::Collect,
            ServerOptions {
                core,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut read_half = stream.try_clone().unwrap();
        let cfg = RequestConfig::loopback(HttpVersion::Http11Length);
        let op = doubles_op();
        let mut client = Client::new(
            EngineConfig::paper_default()
                .with_width(WidthPolicy::Max)
                .with_wire_format(format),
        );
        let mut xs: Vec<f64> = (0..24).map(|i| i as f64 * 0.25).collect();
        let mut sent: Vec<Vec<f64>> = Vec::new();

        // (update, fragment cap, EINTR period): every tier of the
        // differential hierarchy crosses the wire in fragments, over one
        // keep-alive connection.
        let steps: [(Update, usize, usize); 8] = [
            (Update::Resend, 3, 0),
            (Update::Set(1, 99.5), 1, 2),
            (Update::Set(5, -0.125), 7, 3),
            (Update::Resize(40), 2, 0),
            (Update::Resend, 5, 4),
            (Update::Resize(9), 1, 3),
            (Update::Set(0, 1234.5), 4, 0),
            (Update::Resend, 6, 2),
        ];
        for (u, cap, eintr_every) in steps {
            apply(&mut xs, &u);
            let mut shim = FragShim {
                inner: &stream,
                cap,
                calls: 0,
                eintr_every,
            };
            let mut scratch = PostScratch::default();
            client
                .call_via("http://svc", &op, &[Value::DoubleArray(xs.clone())], |s| {
                    post_gather_vectored(&mut shim, &cfg, s, &mut scratch)
                })
                .unwrap();
            let (status, _) = read_response(&mut read_half).unwrap();
            assert_eq!(status, 200, "core {core:?}");
            sent.push(xs.clone());
        }
        drop(stream);
        drop(read_half);

        let requests = server.stop_collecting();
        assert_eq!(requests.len(), sent.len(), "core {core:?}");
        let mut oracle = GSoapLike::new();
        for (req, xs) in requests.iter().zip(&sent) {
            match format {
                WireFormat::SoapXml => {
                    let full = oracle
                        .serialize(&op, &[Value::DoubleArray(xs.clone())])
                        .unwrap()
                        .to_vec();
                    assert_eq!(
                        strip_pad(&req.body),
                        strip_pad(&full),
                        "core {core:?}: reassembled body diverges from full serialization"
                    );
                }
                WireFormat::CompactBinary => {
                    // Binary frames carry arbitrary bytes (raw double
                    // bits), the harshest payload for fragmented
                    // reassembly; fidelity is decode-exactness.
                    let decoded = parse_binary_envelope(&req.body, &op)
                        .unwrap_or_else(|e| panic!("core {core:?}: body does not decode: {e}"));
                    let Value::DoubleArray(ds) = &decoded[0] else {
                        panic!("core {core:?}: decoded param is not a double array");
                    };
                    let got: Vec<u64> = ds.iter().map(|x| x.to_bits()).collect();
                    let want: Vec<u64> = xs.iter().map(|x| x.to_bits()).collect();
                    assert_eq!(
                        got, want,
                        "core {core:?}: reassembled binary body diverges from the arguments"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Response-side chaos: garbage and mutated HTTP responses fed to the
// client's response reader must yield Ok or a typed io::Error — never a
// panic, never a runaway allocation.
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum RespMutation {
    None,
    /// Mid-response hangup: the peer closes after `keep` bytes.
    Truncate(usize),
    /// Flip bits somewhere in the response.
    Flip {
        pos: usize,
        xor: u8,
    },
    /// Garbage bytes where the status line should be.
    GarbagePrefix(Vec<u8>),
}

fn render_response(style: usize, status: u16, body: &[u8]) -> Vec<u8> {
    match style % 3 {
        0 => {
            let mut out = format!(
                "HTTP/1.1 {status} X\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .into_bytes();
            out.extend_from_slice(body);
            out
        }
        1 => {
            let mut out = format!(
                "HTTP/1.0 {status} X\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .into_bytes();
            out.extend_from_slice(body);
            out
        }
        // No Content-Length: a framing the reader must reject, typed.
        _ => {
            let mut out = format!("HTTP/1.1 {status} X\r\n\r\n").into_bytes();
            out.extend_from_slice(body);
            out
        }
    }
}

fn mutation_strategy() -> impl Strategy<Value = RespMutation> {
    prop_oneof![
        Just(RespMutation::None),
        (0usize..512).prop_map(RespMutation::Truncate),
        (0usize..512, 1u8..=255).prop_map(|(pos, xor)| RespMutation::Flip { pos, xor }),
        prop::collection::vec(any::<u8>(), 1..64).prop_map(RespMutation::GarbagePrefix),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Mid-response hangups, flipped bytes, and pure garbage: the
    /// response reader returns Ok or a typed error and, for untouched
    /// well-framed responses, round-trips status and body exactly.
    #[test]
    fn garbage_responses_are_typed_never_fatal(
        style in 0usize..3,
        status in 100u16..600,
        body in prop::collection::vec(any::<u8>(), 0..160),
        mutation in mutation_strategy(),
    ) {
        let mut bytes = render_response(style, status, &body);
        match &mutation {
            RespMutation::None => {}
            RespMutation::Truncate(keep) => bytes.truncate(*keep % (bytes.len() + 1)),
            RespMutation::Flip { pos, xor } => {
                let n = bytes.len();
                if n > 0 {
                    bytes[pos % n] ^= xor;
                }
            }
            RespMutation::GarbagePrefix(g) => {
                let mut out = g.clone();
                out.extend_from_slice(&bytes);
                bytes = out;
            }
        }
        let input_len = bytes.len();
        let mut cursor = io::Cursor::new(bytes);
        let res = bsoap::transport::http::read_response(&mut cursor);
        match (&mutation, style % 3) {
            // Untouched, length-framed responses must round-trip.
            (RespMutation::None, 0) | (RespMutation::None, 1) => {
                let (got_status, got_body) = res.expect("well-formed response");
                prop_assert_eq!(got_status, status);
                prop_assert_eq!(got_body, body);
            }
            // Untouched but missing Content-Length: typed rejection.
            (RespMutation::None, _) => {
                prop_assert!(res.is_err());
            }
            // Mutated: anything goes except a panic or a wrong shape —
            // reaching this point at all is the property. A forged
            // Content-Length can only deliver bytes that exist: the body
            // is bounded by the input (no runaway allocation).
            _ => {
                if let Ok((_, b)) = res {
                    prop_assert!(b.len() <= input_len, "body larger than the input");
                }
            }
        }
    }
}
