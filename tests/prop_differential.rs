//! Workspace-wide property test: THE correctness theorem.
//!
//! For any operation shape, any starting arguments, any sequence of
//! updates (value changes *and* resizes), and any engine configuration:
//! the differential client's wire bytes are pad-equivalent to a
//! from-scratch full serialization of the same arguments, and parse back
//! to exactly those arguments.

use bsoap::baseline::GSoapLike;
use bsoap::convert::ScalarKind;
use bsoap::deser::parse_envelope;
use bsoap::xml::strip_pad;
use bsoap::{
    mio, ChunkConfig, Client, EngineConfig, FlushMode, MessageTemplate, OpDesc, TypeDesc, Value,
    WidthPolicy,
};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Update {
    SetDouble(usize, f64),
    Resize(usize),
}

fn small_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        any::<i32>().prop_map(|i| i as f64),
        (any::<i32>(), 1i32..1000).prop_map(|(a, b)| a as f64 / b as f64),
        any::<u64>()
            .prop_map(f64::from_bits)
            .prop_filter("finite", |x| x.is_finite()),
    ]
}

fn update_strategy() -> impl Strategy<Value = Update> {
    prop_oneof![
        (0usize..64, small_f64()).prop_map(|(i, v)| Update::SetDouble(i, v)),
        (0usize..48).prop_map(Update::Resize),
    ]
}

fn config_strategy() -> impl Strategy<Value = EngineConfig> {
    let chunk = prop_oneof![
        Just(ChunkConfig::k32()),
        Just(ChunkConfig::k8()),
        Just(ChunkConfig {
            initial_size: 192,
            split_threshold: 384,
            reserve: 16
        }),
    ];
    let width = prop_oneof![
        Just(WidthPolicy::Exact),
        Just(WidthPolicy::Max),
        Just(WidthPolicy::Fixed {
            double: 18,
            int: 6,
            long: 12
        }),
    ];
    (chunk, width, any::<bool>()).prop_map(|(chunk, width, steal)| {
        EngineConfig::paper_default()
            .with_wire_format(bsoap::WireFormat::SoapXml)
            .with_chunk(chunk)
            .with_width(width)
            .with_steal(steal)
    })
}

fn apply(xs: &mut Vec<f64>, u: &Update) {
    match u {
        Update::SetDouble(i, v) => {
            if !xs.is_empty() {
                let i = i % xs.len();
                xs[i] = *v;
            }
        }
        Update::Resize(n) => {
            let n = *n;
            if n > xs.len() {
                xs.extend((xs.len()..n).map(|k| k as f64 * 0.5));
            } else {
                xs.truncate(n);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn differential_equals_full_serialization(
        initial in prop::collection::vec(small_f64(), 0..40),
        updates in prop::collection::vec(update_strategy(), 1..12),
        config in config_strategy(),
    ) {
        let op = OpDesc::single(
            "send", "urn:bench", "arr",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        );
        let mut xs = initial;
        let mut tpl =
            MessageTemplate::build(config, &op, &[Value::DoubleArray(xs.clone())]).unwrap();
        let mut baseline = GSoapLike::new();

        for u in &updates {
            apply(&mut xs, u);
            tpl.update_args(&[Value::DoubleArray(xs.clone())]).unwrap();
            tpl.flush();
            tpl.assert_invariants();

            let differential = tpl.to_bytes();
            let full = baseline
                .serialize(&op, &[Value::DoubleArray(xs.clone())])
                .unwrap()
                .to_vec();
            prop_assert_eq!(
                strip_pad(&differential),
                strip_pad(&full),
                "differential bytes drifted from full serialization after {:?}",
                u
            );
            // And the wire bytes parse back to the in-memory arguments.
            let parsed = parse_envelope(&differential, &op).unwrap();
            let Value::DoubleArray(back) = &parsed[0] else { panic!("variant") };
            prop_assert_eq!(back.len(), xs.len());
            for (a, b) in back.iter().zip(&xs) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn mio_differential_equals_full(
        initial in prop::collection::vec((any::<i32>(), any::<i32>(), small_f64()), 0..20),
        updates in prop::collection::vec(
            (0usize..32, any::<i32>(), small_f64()), 1..10
        ),
        config in config_strategy(),
    ) {
        let op = OpDesc::single("m", "urn:x", "a", TypeDesc::array_of(TypeDesc::mio()));
        let mut elems = initial;
        let mut tpl = MessageTemplate::build(
            config,
            &op,
            &[Value::Array(elems.iter().map(|&(x, y, v)| mio(x, y, v)).collect())],
        )
        .unwrap();
        let mut baseline = GSoapLike::new();

        for (i, x, v) in &updates {
            if !elems.is_empty() {
                let i = i % elems.len();
                elems[i].0 = *x;
                elems[i].2 = *v;
            }
            let value = Value::Array(elems.iter().map(|&(x, y, v)| mio(x, y, v)).collect());
            tpl.update_args(std::slice::from_ref(&value)).unwrap();
            tpl.flush();
            tpl.assert_invariants();
            let full = baseline.serialize(&op, std::slice::from_ref(&value)).unwrap().to_vec();
            prop_assert_eq!(strip_pad(&tpl.to_bytes()), strip_pad(&full));
            prop_assert_eq!(parse_envelope(&tpl.to_bytes(), &op).unwrap(), vec![value]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Plan/execute split theorem: for any update sequence (dirty
    /// fractions, width growth, array resizes) and any engine
    /// configuration, plan-then-apply produces bytes identical — padding
    /// included — to the legacy sequential flush of a twin template, and
    /// pad-equivalent to a from-scratch full serialization.
    #[test]
    fn planned_flush_equals_legacy_and_full(
        initial in prop::collection::vec(small_f64(), 0..40),
        updates in prop::collection::vec(update_strategy(), 1..10),
        config in config_strategy(),
    ) {
        let op = OpDesc::single(
            "send", "urn:bench", "arr",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        );
        let mut xs = initial;
        let args = [Value::DoubleArray(xs.clone())];
        let mut planned = MessageTemplate::build(
            config.with_flush_mode(FlushMode::Planned), &op, &args).unwrap();
        let mut legacy = MessageTemplate::build(
            config.with_flush_mode(FlushMode::Legacy), &op, &args).unwrap();
        let mut baseline = GSoapLike::new();

        for u in &updates {
            apply(&mut xs, u);
            let args = [Value::DoubleArray(xs.clone())];
            planned.update_args(&args).unwrap();
            legacy.update_args(&args).unwrap();
            // Drive the public plan/execute seam explicitly rather than
            // through flush(), so a stale or mis-costed plan shows up here.
            let plan = planned.plan().unwrap();
            let rp = planned.flush_planned(&plan).unwrap();
            let rl = legacy.flush();
            planned.assert_invariants();
            legacy.assert_invariants();
            prop_assert_eq!(rp.tier, rl.tier, "tier diverged after {:?}", u);
            prop_assert_eq!(
                planned.to_bytes(),
                legacy.to_bytes(),
                "planned executor bytes diverged from legacy flush after {:?}",
                u
            );
            let full = baseline.serialize(&op, &args).unwrap().to_vec();
            prop_assert_eq!(strip_pad(&planned.to_bytes()), strip_pad(&full));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The §5 cost gate may reroute any send to the FirstTime path, but it
    /// must never change the wire bytes: whatever `fallback_ratio` is in
    /// force, the client's output stays pad-equivalent to a full
    /// serialization and parses back to the arguments.
    #[test]
    fn cost_fallback_never_changes_wire_bytes(
        initial in prop::collection::vec(small_f64(), 0..32),
        updates in prop::collection::vec(update_strategy(), 1..8),
        config in config_strategy(),
        ratio in prop_oneof![Just(0.0), Just(0.05), Just(0.5), Just(10.0)],
    ) {
        let op = OpDesc::single(
            "send", "urn:bench", "arr",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        );
        let mut client = Client::new(
            config.with_cost_fallback(true).with_fallback_ratio(ratio));
        let mut baseline = GSoapLike::new();
        let mut xs = initial;
        client
            .call("ep", &op, &[Value::DoubleArray(xs.clone())], &mut Vec::new())
            .unwrap();

        for u in &updates {
            apply(&mut xs, u);
            let args = [Value::DoubleArray(xs.clone())];
            let mut wire = Vec::new();
            let report = client.call("ep", &op, &args, &mut wire).unwrap();
            if report.fell_back {
                prop_assert_eq!(report.tier, bsoap::SendTier::FirstTime);
            }
            let full = baseline.serialize(&op, &args).unwrap().to_vec();
            prop_assert_eq!(strip_pad(&wire), strip_pad(&full));
            let parsed = parse_envelope(&wire, &op).unwrap();
            let Value::DoubleArray(back) = &parsed[0] else { panic!("variant") };
            prop_assert_eq!(back.len(), xs.len());
            for (a, b) in back.iter().zip(&xs) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
