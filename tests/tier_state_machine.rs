//! The four-tier matching logic as a state machine (paper §3).
//!
//! Drives a client through crafted call sequences and asserts the exact
//! tier each send takes, that tier costs are ordered the way the paper
//! claims (content ≤ perfect ≤ partial ≤ first in values written), and
//! that statistics account for every call.

use std::sync::Arc;

use bsoap::convert::ScalarKind;
use bsoap::obs::{Counter, EngineStats, HistId, Metrics, Tier, VirtualClock};
use bsoap::transport::SinkTransport;
use bsoap::{
    mio, Client, EngineConfig, OpDesc, SendTier, TypeDesc, Value, WidthPolicy, WireFormat,
};

fn doubles_op() -> OpDesc {
    OpDesc::single(
        "send",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
    )
}

fn call(
    client: &mut Client,
    sink: &mut SinkTransport,
    op: &OpDesc,
    xs: &[f64],
) -> bsoap::SendReport {
    client
        .call("ep", op, &[Value::DoubleArray(xs.to_vec())], sink)
        .expect("call")
}

#[test]
fn canonical_tier_sequence() {
    let op = doubles_op();
    let mut client = Client::with_defaults();
    let mut sink = SinkTransport::new();

    let r = call(&mut client, &mut sink, &op, &[1.5, 2.5, 3.5]);
    assert_eq!(r.tier, SendTier::FirstTime);

    let r = call(&mut client, &mut sink, &op, &[1.5, 2.5, 3.5]);
    assert_eq!(r.tier, SendTier::ContentMatch);
    assert_eq!(r.values_written, 0, "content match writes nothing");

    let r = call(&mut client, &mut sink, &op, &[1.5, 9.5, 3.5]);
    assert_eq!(r.tier, SendTier::PerfectStructural);
    assert_eq!(r.values_written, 1, "only the changed value is written");

    let r = call(&mut client, &mut sink, &op, &[1.5, 9.5, 3.5, 4.5]);
    assert_eq!(r.tier, SendTier::PartialStructural);

    let r = call(&mut client, &mut sink, &op, &[1.5, 9.5, 3.5, 4.5]);
    assert_eq!(
        r.tier,
        SendTier::ContentMatch,
        "resize settles back to content matches"
    );

    let stats = client.stats();
    assert_eq!(stats.calls(), 5);
    assert_eq!(
        (
            stats.first_time,
            stats.content_match,
            stats.perfect_structural,
            stats.partial_structural
        ),
        (1, 2, 1, 1)
    );
}

#[test]
fn same_bits_rewrite_is_content_match() {
    // Writing the same f64 bits must not dirty the leaf (the DUT's
    // bitwise comparison), including the NaN == NaN case.
    let op = doubles_op();
    let mut client = Client::with_defaults();
    let mut sink = SinkTransport::new();
    call(&mut client, &mut sink, &op, &[f64::NAN, 1.5]);
    let r = call(&mut client, &mut sink, &op, &[f64::NAN, 1.5]);
    assert_eq!(r.tier, SendTier::ContentMatch);

    // 0.0 vs -0.0 have different bits AND different lexical forms.
    let r = call(&mut client, &mut sink, &op, &[f64::NAN, -0.0]);
    assert_eq!(r.tier, SendTier::PerfectStructural);
    assert_eq!(r.values_written, 1);
}

#[test]
fn zero_length_boundary_cases() {
    let op = doubles_op();
    let mut client = Client::with_defaults();
    let mut sink = SinkTransport::new();

    let r = call(&mut client, &mut sink, &op, &[]);
    assert_eq!(r.tier, SendTier::FirstTime);
    let r = call(&mut client, &mut sink, &op, &[]);
    assert_eq!(r.tier, SendTier::ContentMatch);
    let r = call(&mut client, &mut sink, &op, &[1.5]);
    assert_eq!(r.tier, SendTier::PartialStructural);
    let r = call(&mut client, &mut sink, &op, &[]);
    assert_eq!(r.tier, SendTier::PartialStructural);
    let r = call(&mut client, &mut sink, &op, &[]);
    assert_eq!(r.tier, SendTier::ContentMatch);
}

#[test]
fn multi_param_dirty_tracking_spans_params() {
    let op = OpDesc::new(
        "f",
        "urn:x",
        vec![
            bsoap::ParamDesc {
                name: "id".into(),
                desc: TypeDesc::Scalar(ScalarKind::Int),
            },
            bsoap::ParamDesc {
                name: "xs".into(),
                desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
            },
            bsoap::ParamDesc {
                name: "tag".into(),
                desc: TypeDesc::Scalar(ScalarKind::Str),
            },
        ],
    );
    let mut client = Client::with_defaults();
    let mut sink = SinkTransport::new();
    let args = |id: i32, xs: Vec<f64>, s: &str| {
        vec![Value::Int(id), Value::DoubleArray(xs), Value::Str(s.into())]
    };

    client
        .call("ep", &op, &args(1, vec![1.5, 2.5], "abc"), &mut sink)
        .unwrap();
    // Change only the trailing string (same length → no shift).
    let r = client
        .call("ep", &op, &args(1, vec![1.5, 2.5], "xyz"), &mut sink)
        .unwrap();
    assert_eq!(r.tier, SendTier::PerfectStructural);
    assert_eq!(r.values_written, 1);
    // Change the leading int and one array element.
    let r = client
        .call("ep", &op, &args(2, vec![9.5, 2.5], "xyz"), &mut sink)
        .unwrap();
    assert_eq!(r.tier, SendTier::PerfectStructural);
    assert_eq!(r.values_written, 2);
}

#[test]
fn mio_partial_dirty_percentages() {
    // The Figure 4 setup: vary what fraction of MIO doubles are dirty and
    // confirm values_written tracks it exactly.
    let op = OpDesc::single("m", "urn:x", "a", TypeDesc::array_of(TypeDesc::mio()));
    let mut client = Client::with_defaults();
    let mut sink = SinkTransport::new();
    let n = 100usize;
    let build = |bump: usize, round: f64| {
        Value::Array(
            (0..n)
                .map(|i| mio(i as i32, -(i as i32), if i < bump { round } else { 0.5 }))
                .collect(),
        )
    };

    client.call("ep", &op, &[build(0, 0.5)], &mut sink).unwrap();
    for (frac, expect) in [(25usize, 25usize), (50, 50), (75, 75), (100, 100)] {
        // Use a fresh value per round so exactly `frac` doubles change.
        let round = frac as f64 + 0.25;
        let r = client
            .call("ep", &op, &[build(frac, round)], &mut sink)
            .unwrap();
        assert_eq!(r.tier, SendTier::PerfectStructural);
        assert_eq!(r.values_written, expect, "at {frac}%");
    }
}

#[test]
fn shift_and_steal_counters_surface() {
    // Exact widths + growing values: expansion must happen and be counted.
    let op = doubles_op();
    let config = EngineConfig::paper_default()
        .with_width(WidthPolicy::Exact)
        .with_wire_format(WireFormat::SoapXml);
    let mut client = Client::new(config);
    let mut sink = SinkTransport::new();

    call(&mut client, &mut sink, &op, &[1.0, 2.0, 3.0]);
    // Every value grows from 1 char to many chars.
    let r = call(&mut client, &mut sink, &op, &[1.0625, 2.0625, 3.0625]);
    assert_eq!(r.tier, SendTier::PerfectStructural);
    assert_eq!(r.values_written, 3);
    assert!(
        r.shifts + r.steals > 0,
        "growth beyond exact width must shift or steal (got {r:?})"
    );

    // With max stuffing the same growth is free of both.
    let mut client = Client::new(config.with_width(WidthPolicy::Max));
    call(&mut client, &mut sink, &op, &[1.0, 2.0, 3.0]);
    let r = call(&mut client, &mut sink, &op, &[1.0625, 2.0625, 3.0625]);
    assert_eq!(r.shifts, 0);
    assert_eq!(r.steals, 0);
}

#[test]
fn evicting_forgets_the_template() {
    let op = doubles_op();
    let mut client = Client::with_defaults();
    let mut sink = SinkTransport::new();
    call(&mut client, &mut sink, &op, &[1.5]);
    assert!(client.evict("ep", &op));
    assert!(!client.evict("ep", &op), "double evict is a no-op");
    let r = call(&mut client, &mut sink, &op, &[1.5]);
    assert_eq!(
        r.tier,
        SendTier::FirstTime,
        "evicted template forces re-serialization"
    );
}

// ---------------------------------------------------------------------
// Model-checked metrics: a reference model of the matching hierarchy
// predicts the tier, the values written, and the full metrics snapshot
// after every single send.
// ---------------------------------------------------------------------

/// Reference model of the four-tier hierarchy (paper §3) plus the
/// counters the obs layer must accumulate for a doubles-array operation.
/// The DUT compares bit patterns, so the model tracks `f64::to_bits`.
///
/// The model carries the wire format because the counters are per-lane:
/// every send must land on its own format's counter and never the
/// other's — and because the collapse prediction differs. On the XML
/// lane, zero shift work requires `WidthPolicy::Max` stuffing; on the
/// binary lane the same prediction holds under *exact* widths, since
/// fixed-width numerics cannot grow (tier-3 machinery collapses into
/// tier-2 overwrites, DESIGN §3.15).
struct TierModel {
    /// The lane the modeled client sends on.
    format: WireFormat,
    /// Sends expected on this lane's per-format counter. Differential
    /// flushes count at flush time (even if the wire write then fails);
    /// first-time and degraded builds count only after a successful
    /// write.
    format_sends: u64,
    /// Bit patterns of the last-sent array; `None` = no template saved.
    saved: Option<Vec<u64>>,
    tiers: [u64; 4],
    /// Successful sends per tier — the latency histograms observe only
    /// sends that reached the wire, while the tier counters also include
    /// differential flushes whose wire write then failed.
    hist: [u64; 4],
    values_written: u64,
    bytes_sent: u64,
    sends: u64,
    /// Sends that priced a differential plan: every send served by a
    /// saved template plans exactly once (even a content match — the
    /// planner is how the flush learns nothing is dirty). FirstTime
    /// builds never plan.
    plans: u64,
    /// Cost-gate rejections. Zero unless `cost_fallback` is on.
    fallbacks: u64,
    /// Calls that ran out of deadline budget (`TimedOut` on the wire).
    deadlines: u64,
    /// Stateless full sends made while the endpoint was degraded.
    degraded_sends: u64,
}

impl TierModel {
    fn new(format: WireFormat) -> Self {
        TierModel {
            format,
            format_sends: 0,
            saved: None,
            tiers: [0; 4],
            hist: [0; 4],
            values_written: 0,
            bytes_sent: 0,
            sends: 0,
            plans: 0,
            fallbacks: 0,
            deadlines: 0,
            degraded_sends: 0,
        }
    }

    /// Predict the tier and values written for sending `xs`, then fold
    /// the prediction into the model's expected counter state.
    fn step(&mut self, xs: &[f64]) -> (SendTier, u64) {
        let bits: Vec<u64> = xs.iter().map(|x| x.to_bits()).collect();
        if self.saved.is_some() {
            self.plans += 1;
        }
        let (tier, written) = match &self.saved {
            // First-time build serializes every element leaf plus the
            // array-length leaf.
            None => (SendTier::FirstTime, bits.len() as u64 + 1),
            Some(old) => {
                let changed = old.iter().zip(&bits).filter(|(o, n)| **o != **n).count() as u64;
                if old.len() != bits.len() {
                    // Resize rewrites the length leaf too; appended
                    // elements are built, not rewritten.
                    (SendTier::PartialStructural, changed + 1)
                } else if changed > 0 {
                    (SendTier::PerfectStructural, changed)
                } else {
                    (SendTier::ContentMatch, 0)
                }
            }
        };
        self.saved = Some(bits);
        self.tiers[tier.obs().index()] += 1;
        self.hist[tier.obs().index()] += 1;
        self.values_written += written;
        self.sends += 1;
        self.format_sends += 1;
        (tier, written)
    }

    /// Fold in a call whose wire write failed. A differential flush
    /// completes before the transport write, so it still counts its tier,
    /// values, and plan — but never a byte or a latency observation. A
    /// first-time build (no saved template) errors before its counter
    /// sites and records nothing.
    fn step_wire_failed(&mut self, xs: &[f64], deadline: bool) {
        if deadline {
            self.deadlines += 1;
        }
        let bits: Vec<u64> = xs.iter().map(|x| x.to_bits()).collect();
        if let Some(old) = self.saved.take() {
            self.plans += 1;
            let changed = old.iter().zip(&bits).filter(|(o, n)| **o != **n).count() as u64;
            let (tier, written) = if old.len() != bits.len() {
                (SendTier::PartialStructural, changed + 1)
            } else if changed > 0 {
                (SendTier::PerfectStructural, changed)
            } else {
                (SendTier::ContentMatch, 0)
            };
            self.tiers[tier.obs().index()] += 1;
            self.values_written += written;
            self.sends += 1;
            self.format_sends += 1;
            // The flush already applied the new values.
            self.saved = Some(bits);
        }
    }

    /// Fold in a successful degraded-mode send: counted as a first-time
    /// send plus `DegradedSends`, template discarded immediately.
    fn step_degraded(&mut self, xs: &[f64]) {
        self.tiers[Tier::FirstTime.index()] += 1;
        self.hist[Tier::FirstTime.index()] += 1;
        self.values_written += xs.len() as u64 + 1;
        self.sends += 1;
        self.format_sends += 1;
        self.degraded_sends += 1;
        self.saved = None;
    }

    fn evict(&mut self) {
        self.saved = None;
    }

    /// Assert a registry snapshot agrees with the model exactly.
    fn check(&self, snap: &EngineStats) {
        assert_eq!(snap.tier_counts(), self.tiers, "tier counters");
        assert_eq!(snap.total_sends(), self.sends, "total sends");
        // Every send lands on its own lane's counter, never the other's.
        let (own, other) = match self.format {
            WireFormat::SoapXml => (Counter::SendsXml, Counter::SendsBinary),
            WireFormat::CompactBinary => (Counter::SendsBinary, Counter::SendsXml),
        };
        assert_eq!(snap.get(own), self.format_sends, "own-lane sends");
        assert_eq!(snap.get(other), 0, "wrong-lane sends");
        assert_eq!(
            snap.get(Counter::ValuesWritten),
            self.values_written,
            "values written"
        );
        assert_eq!(snap.get(Counter::BytesSent), self.bytes_sent, "bytes sent");
        // Nothing ever shifts, steals, or splits: on the XML lane
        // because max-width stuffing leaves room for any double, on the
        // binary lane because fixed-width numerics cannot grow even at
        // exact widths — the tier-3 collapse.
        assert_eq!(snap.get(Counter::Shifts), 0);
        assert_eq!(snap.get(Counter::Steals), 0);
        assert_eq!(snap.get(Counter::Splits), 0);
        assert_eq!(snap.get(Counter::ShiftedBytes), 0);
        // Plan/execute accounting: one plan per template-served send, and
        // with no shifts there is never a coalesced pass to count.
        assert_eq!(snap.get(Counter::PlansComputed), self.plans, "plans");
        assert_eq!(
            snap.get(Counter::CostFallbacks),
            self.fallbacks,
            "cost fallbacks"
        );
        assert_eq!(snap.get(Counter::CoalescedShiftPasses), 0);
        // Fault-tolerance accounting: deadline expiries and degraded
        // (stateless) sends.
        assert_eq!(
            snap.get(Counter::DeadlinesExceeded),
            self.deadlines,
            "deadline expiries"
        );
        assert_eq!(
            snap.get(Counter::DegradedSends),
            self.degraded_sends,
            "degraded sends"
        );
        // Exactly one latency observation per send that reached the
        // wire, in the histogram of the tier the send took.
        for t in Tier::ALL {
            assert_eq!(
                snap.hist(HistId::send(t)).count(),
                self.hist[t.index()],
                "latency observations for {t:?}"
            );
        }
    }
}

#[test]
fn metrics_snapshot_matches_reference_model() {
    // XML lane: shift-free only because max-width stuffing absorbs any
    // double's lexical growth.
    run_reference_model_walk(WireFormat::SoapXml, WidthPolicy::Max);
}

#[test]
fn binary_lane_matches_reference_model_at_exact_widths() {
    // Binary lane, *exact* widths: the model predicts the identical tier
    // trajectory AND the same zero-shift counters — the prediction that
    // would be false on the XML lane without stuffing. Tier-3 patch work
    // collapses into tier-2 in the format itself, not in a width policy.
    run_reference_model_walk(WireFormat::CompactBinary, WidthPolicy::Exact);
}

fn run_reference_model_walk(format: WireFormat, width: WidthPolicy) {
    let op = doubles_op();
    let metrics = Arc::new(Metrics::with_clock(Arc::new(VirtualClock::new())));
    let mut client = Client::new(
        EngineConfig::paper_default()
            .with_width(width)
            .with_wire_format(format),
    );
    client.set_metrics(Arc::clone(&metrics));
    let mut sink = SinkTransport::new();
    let mut model = TierModel::new(format);

    let mut send = |client: &mut Client, model: &mut TierModel, xs: &[f64]| {
        let (want_tier, want_written) = model.step(xs);
        let r = call(client, &mut sink, &op, xs);
        assert_eq!(r.tier, want_tier, "tier for {xs:?}");
        assert_eq!(
            r.values_written as u64, want_written,
            "values written for {xs:?}"
        );
        // Wire bytes come from the engine (the model doesn't re-derive
        // the serialized form); the counter must still track them 1:1.
        model.bytes_sent += r.bytes as u64;
        model.check(&metrics.snapshot());
    };

    // Scripted opening: visit every tier once.
    send(&mut client, &mut model, &[1.5, 2.5, 3.5]); // first time
    send(&mut client, &mut model, &[1.5, 2.5, 3.5]); // content match
    send(&mut client, &mut model, &[1.5, 9.5, 3.5]); // perfect structural
    send(&mut client, &mut model, &[1.5, 9.5, 3.5, 4.5]); // partial (grow)
    send(&mut client, &mut model, &[1.5, 9.5]); // partial (shrink)
    send(&mut client, &mut model, &[1.5, 9.5]); // content match again

    // Eviction forgets the template; the model forgets with it.
    assert!(client.evict("ep", &op));
    model.evict();
    send(&mut client, &mut model, &[1.5, 9.5]); // first time again

    // Long pseudo-random walk (fixed-seed LCG, fully reproducible):
    // resends, single- and multi-value mutations, resizes, evictions.
    let mut state = 0x2545_F491_4F6C_DD1D_u64;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut xs: Vec<f64> = (0..8).map(|i| i as f64 + 0.5).collect();
    for _ in 0..200 {
        match rng() % 10 {
            0 => {} // resend unchanged
            1 => {
                // Resize (possibly to the same length) and rewrite.
                let n = 1 + rng() % 12;
                xs = (0..n)
                    .map(|i| (rng() % 64) as f64 * 0.25 + i as f64)
                    .collect();
            }
            2 => {
                if client.evict("ep", &op) {
                    model.evict();
                }
            }
            k => {
                // Mutate up to 7 positions; collisions and writing the
                // same bits back are part of the point.
                for _ in 0..(k - 2) {
                    let i = rng() % xs.len();
                    xs[i] = (rng() % 256) as f64 * 0.125;
                }
            }
        }
        let step = xs.clone();
        send(&mut client, &mut model, &step);
    }
}

#[test]
fn shift_counters_match_reports_exactly() {
    // Exact widths force expansion work on every growth step; the obs
    // counters must agree with the per-send reports, send after send.
    let op = doubles_op();
    let metrics = Arc::new(Metrics::new());
    let mut client = Client::new(
        EngineConfig::paper_default()
            .with_width(WidthPolicy::Exact)
            .with_wire_format(WireFormat::SoapXml),
    );
    client.set_metrics(Arc::clone(&metrics));
    let mut sink = SinkTransport::new();

    let mut xs = vec![1.0, 2.0, 3.0, 4.0];
    let first = call(&mut client, &mut sink, &op, &xs);
    let (mut shifts, mut steals, mut splits) = (0u64, 0u64, 0u64);
    let mut written = first.values_written as u64;

    for _ in 0..6 {
        // Every value's text representation grows.
        for x in xs.iter_mut() {
            *x = *x * 2.0 + 0.0625;
        }
        let before = metrics.snapshot();
        let r = call(&mut client, &mut sink, &op, &xs);
        let snap = metrics.snapshot();

        assert_eq!(r.tier, SendTier::PerfectStructural);
        assert!(
            r.shifts + r.steals > 0,
            "growth beyond exact width must shift or steal (got {r:?})"
        );
        shifts += r.shifts as u64;
        steals += r.steals as u64;
        splits += r.splits as u64;
        written += r.values_written as u64;

        assert_eq!(snap.get(Counter::Shifts), shifts);
        assert_eq!(snap.get(Counter::Steals), steals);
        assert_eq!(snap.get(Counter::Splits), splits);
        assert_eq!(snap.get(Counter::ValuesWritten), written);
        if r.shifts > 0 {
            assert!(
                snap.get(Counter::ShiftedBytes) > before.get(Counter::ShiftedBytes),
                "shifts moved no bytes?"
            );
        }
    }
}

#[test]
fn cost_gate_fallback_is_counted_and_exact() {
    // fallback_ratio = 0.0 makes the §5 gate maximally strict: any plan
    // with nonzero cost is rejected in favor of a rebuild, while a
    // zero-cost plan (content match) still passes (`0 > 0` is false).
    let op = doubles_op();
    let metrics = Arc::new(Metrics::with_clock(Arc::new(VirtualClock::new())));
    let mut client = Client::new(
        EngineConfig::paper_default()
            .with_cost_fallback(true)
            .with_fallback_ratio(0.0),
    );
    client.set_metrics(Arc::clone(&metrics));
    let mut sink = SinkTransport::new();

    let r = call(&mut client, &mut sink, &op, &[1.5, 2.5, 3.5]);
    assert_eq!(r.tier, SendTier::FirstTime);
    assert!(!r.fell_back, "first-time builds never consult the gate");

    let r = call(&mut client, &mut sink, &op, &[1.5, 2.5, 3.5]);
    assert_eq!(r.tier, SendTier::ContentMatch);
    assert!(!r.fell_back);
    let snap = metrics.snapshot();
    assert_eq!(snap.get(Counter::PlansComputed), 1);
    assert_eq!(snap.get(Counter::CostFallbacks), 0);

    // One dirty value → plan cost ≥ 1 → rejected at ratio 0.0: the send
    // rebuilds from scratch and reports the fallback.
    let r = call(&mut client, &mut sink, &op, &[1.5, 9.5, 3.5]);
    assert_eq!(r.tier, SendTier::FirstTime);
    assert!(r.fell_back);
    let snap = metrics.snapshot();
    assert_eq!(snap.get(Counter::PlansComputed), 2);
    assert_eq!(snap.get(Counter::CostFallbacks), 1);

    // A resize also prices nonzero → fallback again, from the template
    // the previous fallback freshly saved.
    let r = call(&mut client, &mut sink, &op, &[1.5, 9.5, 3.5, 4.5]);
    assert_eq!(r.tier, SendTier::FirstTime);
    assert!(r.fell_back);
    let snap = metrics.snapshot();
    assert_eq!(snap.get(Counter::PlansComputed), 3);
    assert_eq!(snap.get(Counter::CostFallbacks), 2);

    // The discarded-and-rebuilt template keeps serving: an unchanged
    // resend is a content match, not another rebuild.
    let r = call(&mut client, &mut sink, &op, &[1.5, 9.5, 3.5, 4.5]);
    assert_eq!(r.tier, SendTier::ContentMatch);
    assert!(!r.fell_back);

    // With a generous ratio the same kind of update patches in place.
    let mut client = Client::new(
        EngineConfig::paper_default()
            .with_cost_fallback(true)
            .with_fallback_ratio(10.0),
    );
    call(&mut client, &mut sink, &op, &[1.5, 2.5, 3.5]);
    let r = call(&mut client, &mut sink, &op, &[1.5, 9.5, 3.5]);
    assert_eq!(r.tier, SendTier::PerfectStructural);
    assert!(!r.fell_back);
}

/// Writer that always fails with a fixed error kind.
struct AlwaysFail(std::io::ErrorKind);

impl std::io::Write for AlwaysFail {
    fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
        Err(std::io::Error::new(self.0, "injected"))
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Writer that always fails with the canonical deadline-expiry error —
/// the marker-carrying `TimedOut` a transport-layer `Resilience` returns
/// once a call's budget is spent.
struct DeadlineFail;

impl std::io::Write for DeadlineFail {
    fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
        Err(bsoap::Deadline::timed_out())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn degraded_ladder_walk_matches_reference_model() {
    use bsoap::obs::TraceKind;
    use bsoap::EngineError;

    let op = doubles_op();
    let metrics = Arc::new(Metrics::with_clock(Arc::new(VirtualClock::new())));
    // Demote after 2 consecutive transport failures; recover after 2
    // successes while degraded.
    let mut client = Client::new(
        EngineConfig::paper_default()
            .with_width(WidthPolicy::Max)
            .with_wire_format(WireFormat::SoapXml)
            .with_degraded(2, 2),
    );
    client.set_metrics(Arc::clone(&metrics));
    let mut sink = SinkTransport::new();
    let mut model = TierModel::new(WireFormat::SoapXml);
    let args = |xs: &[f64]| vec![Value::DoubleArray(xs.to_vec())];

    // Healthy opening: first time, then a content match.
    let xs = [1.5, 2.5, 3.5];
    for _ in 0..2 {
        let (want_tier, _) = model.step(&xs);
        let r = call(&mut client, &mut sink, &op, &xs);
        assert_eq!(r.tier, want_tier);
        model.bytes_sent += r.bytes as u64;
        model.check(&metrics.snapshot());
    }

    // First failure: the differential flush completed (content match
    // counted), the wire write did not. Not yet demoted.
    let err = client
        .call(
            "ep",
            &op,
            &args(&xs),
            &mut AlwaysFail(std::io::ErrorKind::ConnectionReset),
        )
        .unwrap_err();
    assert!(matches!(err, EngineError::Io(_)));
    model.step_wire_failed(&xs, false);
    model.check(&metrics.snapshot());
    assert!(!client.is_degraded("ep"), "one failure must not demote");

    // Second consecutive failure (a dirty value this time): demoted, and
    // the template is evicted with the demotion.
    let dirty = [1.5, 9.5, 3.5];
    let err = client
        .call(
            "ep",
            &op,
            &args(&dirty),
            &mut AlwaysFail(std::io::ErrorKind::BrokenPipe),
        )
        .unwrap_err();
    assert!(matches!(err, EngineError::Io(_)));
    model.step_wire_failed(&dirty, false);
    model.evict();
    model.check(&metrics.snapshot());
    assert!(client.is_degraded("ep"), "two consecutive failures demote");
    assert!(
        client.template_mut("ep", &op).is_none(),
        "demotion evicts the template"
    );

    // Degraded sends: stateless first-time serialization every call.
    let r = call(&mut client, &mut sink, &op, &dirty);
    assert_eq!(r.tier, SendTier::FirstTime);
    model.step_degraded(&dirty);
    model.bytes_sent += r.bytes as u64;
    model.check(&metrics.snapshot());

    // A bare OS-level timeout while degraded: with no deadline policy in
    // the path there is no budget to have spent — the error stays a
    // typed `Io(TimedOut)` (no `DeadlineExceeded` mapping without the
    // marker) and nothing counts.
    let err = client
        .call(
            "ep",
            &op,
            &args(&dirty),
            &mut AlwaysFail(std::io::ErrorKind::TimedOut),
        )
        .unwrap_err();
    assert!(
        matches!(&err, EngineError::Io(e) if e.kind() == std::io::ErrorKind::TimedOut),
        "bare TimedOut must stay Io, got {err:?}"
    );
    model.step_wire_failed(&dirty, false); // no template: nothing counts
    model.check(&metrics.snapshot());

    // A genuine expiry (the marker error a transport-layer `Resilience`
    // mints) maps to the typed `DeadlineExceeded` — but the client never
    // counts or traces it: that belongs to the layer that *detected* the
    // expiry, which already spoke on its own registry. Recovery progress
    // survives both failures.
    let err = client
        .call("ep", &op, &args(&dirty), &mut DeadlineFail)
        .unwrap_err();
    assert!(matches!(err, EngineError::DeadlineExceeded));
    model.step_wire_failed(&dirty, false); // counted upstream, not here
    model.check(&metrics.snapshot());

    // Second degraded success completes recovery.
    let r = call(&mut client, &mut sink, &op, &dirty);
    assert_eq!(r.tier, SendTier::FirstTime);
    model.step_degraded(&dirty);
    model.bytes_sent += r.bytes as u64;
    model.check(&metrics.snapshot());
    assert!(!client.is_degraded("ep"), "two successes recover");

    // Recovered: the next call is a normal first-time send that saves a
    // template again, and the one after that is differential.
    for want in [SendTier::FirstTime, SendTier::ContentMatch] {
        let (want_tier, _) = model.step(&dirty);
        assert_eq!(want_tier, want);
        let r = call(&mut client, &mut sink, &op, &dirty);
        assert_eq!(r.tier, want);
        model.bytes_sent += r.bytes as u64;
        model.check(&metrics.snapshot());
    }

    // Trace reconciliation: one demotion, one recovery, and no deadline
    // traces — the client propagates expiry but only the detecting
    // transport layer traces it.
    let (events, dropped) = metrics.trace_ring().snapshot();
    assert_eq!(dropped, 0);
    let count = |want: &TraceKind| events.iter().filter(|e| &e.kind == want).count();
    assert_eq!(count(&TraceKind::Degraded { on: true }), 1, "demotions");
    assert_eq!(count(&TraceKind::Degraded { on: false }), 1, "recoveries");
    assert_eq!(count(&TraceKind::DeadlineExceeded), 0, "deadline traces");
}

#[test]
fn errors_do_not_poison_the_template() {
    let op = doubles_op();
    let mut client = Client::with_defaults();
    let mut sink = SinkTransport::new();
    call(&mut client, &mut sink, &op, &[1.5, 2.5]);
    // Wrong arity errors out…
    assert!(client.call("ep", &op, &[], &mut sink).is_err());
    // …but the saved template still serves content matches.
    let r = call(&mut client, &mut sink, &op, &[1.5, 2.5]);
    assert_eq!(r.tier, SendTier::ContentMatch);
}
