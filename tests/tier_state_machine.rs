//! The four-tier matching logic as a state machine (paper §3).
//!
//! Drives a client through crafted call sequences and asserts the exact
//! tier each send takes, that tier costs are ordered the way the paper
//! claims (content ≤ perfect ≤ partial ≤ first in values written), and
//! that statistics account for every call.

use bsoap::convert::ScalarKind;
use bsoap::transport::SinkTransport;
use bsoap::{mio, Client, EngineConfig, OpDesc, SendTier, TypeDesc, Value, WidthPolicy};

fn doubles_op() -> OpDesc {
    OpDesc::single(
        "send",
        "urn:bench",
        "arr",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
    )
}

fn call(
    client: &mut Client,
    sink: &mut SinkTransport,
    op: &OpDesc,
    xs: &[f64],
) -> bsoap::SendReport {
    client
        .call("ep", op, &[Value::DoubleArray(xs.to_vec())], sink)
        .expect("call")
}

#[test]
fn canonical_tier_sequence() {
    let op = doubles_op();
    let mut client = Client::with_defaults();
    let mut sink = SinkTransport::new();

    let r = call(&mut client, &mut sink, &op, &[1.5, 2.5, 3.5]);
    assert_eq!(r.tier, SendTier::FirstTime);

    let r = call(&mut client, &mut sink, &op, &[1.5, 2.5, 3.5]);
    assert_eq!(r.tier, SendTier::ContentMatch);
    assert_eq!(r.values_written, 0, "content match writes nothing");

    let r = call(&mut client, &mut sink, &op, &[1.5, 9.5, 3.5]);
    assert_eq!(r.tier, SendTier::PerfectStructural);
    assert_eq!(r.values_written, 1, "only the changed value is written");

    let r = call(&mut client, &mut sink, &op, &[1.5, 9.5, 3.5, 4.5]);
    assert_eq!(r.tier, SendTier::PartialStructural);

    let r = call(&mut client, &mut sink, &op, &[1.5, 9.5, 3.5, 4.5]);
    assert_eq!(
        r.tier,
        SendTier::ContentMatch,
        "resize settles back to content matches"
    );

    let stats = client.stats();
    assert_eq!(stats.calls(), 5);
    assert_eq!(
        (
            stats.first_time,
            stats.content_match,
            stats.perfect_structural,
            stats.partial_structural
        ),
        (1, 2, 1, 1)
    );
}

#[test]
fn same_bits_rewrite_is_content_match() {
    // Writing the same f64 bits must not dirty the leaf (the DUT's
    // bitwise comparison), including the NaN == NaN case.
    let op = doubles_op();
    let mut client = Client::with_defaults();
    let mut sink = SinkTransport::new();
    call(&mut client, &mut sink, &op, &[f64::NAN, 1.5]);
    let r = call(&mut client, &mut sink, &op, &[f64::NAN, 1.5]);
    assert_eq!(r.tier, SendTier::ContentMatch);

    // 0.0 vs -0.0 have different bits AND different lexical forms.
    let r = call(&mut client, &mut sink, &op, &[f64::NAN, -0.0]);
    assert_eq!(r.tier, SendTier::PerfectStructural);
    assert_eq!(r.values_written, 1);
}

#[test]
fn zero_length_boundary_cases() {
    let op = doubles_op();
    let mut client = Client::with_defaults();
    let mut sink = SinkTransport::new();

    let r = call(&mut client, &mut sink, &op, &[]);
    assert_eq!(r.tier, SendTier::FirstTime);
    let r = call(&mut client, &mut sink, &op, &[]);
    assert_eq!(r.tier, SendTier::ContentMatch);
    let r = call(&mut client, &mut sink, &op, &[1.5]);
    assert_eq!(r.tier, SendTier::PartialStructural);
    let r = call(&mut client, &mut sink, &op, &[]);
    assert_eq!(r.tier, SendTier::PartialStructural);
    let r = call(&mut client, &mut sink, &op, &[]);
    assert_eq!(r.tier, SendTier::ContentMatch);
}

#[test]
fn multi_param_dirty_tracking_spans_params() {
    let op = OpDesc::new(
        "f",
        "urn:x",
        vec![
            bsoap::ParamDesc {
                name: "id".into(),
                desc: TypeDesc::Scalar(ScalarKind::Int),
            },
            bsoap::ParamDesc {
                name: "xs".into(),
                desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
            },
            bsoap::ParamDesc {
                name: "tag".into(),
                desc: TypeDesc::Scalar(ScalarKind::Str),
            },
        ],
    );
    let mut client = Client::with_defaults();
    let mut sink = SinkTransport::new();
    let args = |id: i32, xs: Vec<f64>, s: &str| {
        vec![Value::Int(id), Value::DoubleArray(xs), Value::Str(s.into())]
    };

    client
        .call("ep", &op, &args(1, vec![1.5, 2.5], "abc"), &mut sink)
        .unwrap();
    // Change only the trailing string (same length → no shift).
    let r = client
        .call("ep", &op, &args(1, vec![1.5, 2.5], "xyz"), &mut sink)
        .unwrap();
    assert_eq!(r.tier, SendTier::PerfectStructural);
    assert_eq!(r.values_written, 1);
    // Change the leading int and one array element.
    let r = client
        .call("ep", &op, &args(2, vec![9.5, 2.5], "xyz"), &mut sink)
        .unwrap();
    assert_eq!(r.tier, SendTier::PerfectStructural);
    assert_eq!(r.values_written, 2);
}

#[test]
fn mio_partial_dirty_percentages() {
    // The Figure 4 setup: vary what fraction of MIO doubles are dirty and
    // confirm values_written tracks it exactly.
    let op = OpDesc::single("m", "urn:x", "a", TypeDesc::array_of(TypeDesc::mio()));
    let mut client = Client::with_defaults();
    let mut sink = SinkTransport::new();
    let n = 100usize;
    let build = |bump: usize, round: f64| {
        Value::Array(
            (0..n)
                .map(|i| mio(i as i32, -(i as i32), if i < bump { round } else { 0.5 }))
                .collect(),
        )
    };

    client.call("ep", &op, &[build(0, 0.5)], &mut sink).unwrap();
    for (frac, expect) in [(25usize, 25usize), (50, 50), (75, 75), (100, 100)] {
        // Use a fresh value per round so exactly `frac` doubles change.
        let round = frac as f64 + 0.25;
        let r = client
            .call("ep", &op, &[build(frac, round)], &mut sink)
            .unwrap();
        assert_eq!(r.tier, SendTier::PerfectStructural);
        assert_eq!(r.values_written, expect, "at {frac}%");
    }
}

#[test]
fn shift_and_steal_counters_surface() {
    // Exact widths + growing values: expansion must happen and be counted.
    let op = doubles_op();
    let config = EngineConfig::paper_default().with_width(WidthPolicy::Exact);
    let mut client = Client::new(config);
    let mut sink = SinkTransport::new();

    call(&mut client, &mut sink, &op, &[1.0, 2.0, 3.0]);
    // Every value grows from 1 char to many chars.
    let r = call(&mut client, &mut sink, &op, &[1.0625, 2.0625, 3.0625]);
    assert_eq!(r.tier, SendTier::PerfectStructural);
    assert_eq!(r.values_written, 3);
    assert!(
        r.shifts + r.steals > 0,
        "growth beyond exact width must shift or steal (got {r:?})"
    );

    // With max stuffing the same growth is free of both.
    let mut client = Client::new(config.with_width(WidthPolicy::Max));
    call(&mut client, &mut sink, &op, &[1.0, 2.0, 3.0]);
    let r = call(&mut client, &mut sink, &op, &[1.0625, 2.0625, 3.0625]);
    assert_eq!(r.shifts, 0);
    assert_eq!(r.steals, 0);
}

#[test]
fn evicting_forgets_the_template() {
    let op = doubles_op();
    let mut client = Client::with_defaults();
    let mut sink = SinkTransport::new();
    call(&mut client, &mut sink, &op, &[1.5]);
    assert!(client.evict("ep", &op));
    assert!(!client.evict("ep", &op), "double evict is a no-op");
    let r = call(&mut client, &mut sink, &op, &[1.5]);
    assert_eq!(
        r.tier,
        SendTier::FirstTime,
        "evicted template forces re-serialization"
    );
}

#[test]
fn errors_do_not_poison_the_template() {
    let op = doubles_op();
    let mut client = Client::with_defaults();
    let mut sink = SinkTransport::new();
    call(&mut client, &mut sink, &op, &[1.5, 2.5]);
    // Wrong arity errors out…
    assert!(client.call("ep", &op, &[], &mut sink).is_err());
    // …but the saved template still serves content matches.
    let r = call(&mut client, &mut sink, &op, &[1.5, 2.5]);
    assert_eq!(r.tier, SendTier::ContentMatch);
}
