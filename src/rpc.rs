//! High-level RPC: the whole stack behind one call.
//!
//! [`RpcClient`] connects the pieces a downstream user would otherwise
//! wire by hand: a WSDL-derived service description, the differential
//! serialization client, HTTP framing over TCP, and response
//! deserialization. Every request rides the cheapest matching tier; every
//! response is parsed against the operation's `{name}Response` schema.

use crate::deser::{parse_binary_envelope, parse_envelope, DeserError};
use crate::transport::http::{read_response_headers_limited, HttpVersion, RequestConfig};
use crate::transport::negotiate::{Negotiator, HDR_FORMAT_LOWER, TOKEN_BINARY};
use crate::transport::tcp::{Framing, TcpTransport};
use crate::transport::Transport;
use crate::wsdl::ServiceDesc;
use crate::{Client, EngineConfig, EngineError, OpDesc, ParamDesc, SendReport, Value, WireFormat};
use std::fmt;
use std::net::SocketAddr;

/// RPC-level error.
#[derive(Debug)]
pub enum RpcError {
    /// The service description has no such operation.
    UnknownOperation(String),
    /// Request serialization or transport failure.
    Send(EngineError),
    /// Transport-level response failure.
    Io(std::io::Error),
    /// The server answered with a non-200 status (body included).
    Status(u16, Vec<u8>),
    /// The response body did not match the expected schema.
    Response(DeserError),
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::UnknownOperation(n) => write!(f, "unknown operation {n}"),
            RpcError::Send(e) => write!(f, "send failed: {e}"),
            RpcError::Io(e) => write!(f, "response I/O failed: {e}"),
            RpcError::Status(s, _) => write!(f, "server returned HTTP {s}"),
            RpcError::Response(e) => write!(f, "response parse failed: {e}"),
        }
    }
}

impl std::error::Error for RpcError {}

/// A connected RPC client for one service.
pub struct RpcClient {
    service: ServiceDesc,
    client: Client,
    transport: TcpTransport,
    /// Response descriptors supplied per operation (the WSDL subset in
    /// this stack describes requests; responses follow the
    /// `{op}Response` convention and are registered explicitly).
    response_descs: Vec<OpDesc>,
    /// Per-connection wire-format negotiation. Seeded from the config's
    /// `wire_format`: an XML config never offers, a binary config starts
    /// offering `bin1` and upgrades once the server adverts back.
    negotiator: Negotiator,
}

impl RpcClient {
    /// Connect to `addr` and speak `service`'s operations over
    /// HTTP/1.1 (`Content-Length` framing, persistent connection).
    ///
    /// `config.wire_format` is the *desired* lane, not the opening one:
    /// when it asks for compact binary the client still sends its first
    /// request as XML with an `X-BSOAP-Accept: bin1` offer, switching to
    /// binary bodies only after the server adverts the lane back — and
    /// dropping back to XML (with one transparent resend) if the server
    /// answers a binary body with HTTP 415.
    pub fn connect(
        service: ServiceDesc,
        addr: SocketAddr,
        config: EngineConfig,
    ) -> std::io::Result<Self> {
        let cfg = RequestConfig {
            path: "/".to_owned(),
            host: addr.ip().to_string(),
            // Rewritten per call with the operation's action.
            soap_action: String::new(),
            version: HttpVersion::Http11Length,
            extra_headers: Vec::new(),
        };
        let transport = TcpTransport::connect(addr, Framing::Http(cfg))?;
        let offer_binary = config.wire_format == WireFormat::CompactBinary;
        // The engine's base lane stays XML; the negotiator upgrades the
        // endpoint via `set_endpoint_format` once the server agrees.
        Ok(RpcClient {
            service,
            client: Client::new(config.with_wire_format(WireFormat::SoapXml)),
            transport,
            response_descs: Vec::new(),
            negotiator: Negotiator::new(offer_binary),
        })
    }

    /// Where this endpoint's format negotiation currently stands.
    pub fn negotiation_state(&self) -> crate::transport::NegotiationState {
        self.negotiator.state()
    }

    /// Declare the response parameters of `op` so [`RpcClient::call`] can
    /// parse replies (defaults to an empty response otherwise).
    pub fn declare_response(&mut self, op: &str, params: Vec<ParamDesc>) {
        let desc = OpDesc::new(&format!("{op}Response"), &self.service.namespace, params);
        self.response_descs.retain(|d| d.name != desc.name);
        self.response_descs.push(desc);
    }

    /// The differential client's statistics (tier histogram).
    pub fn stats(&self) -> crate::ClientStats {
        self.client.stats()
    }

    /// The service description this client was built from.
    pub fn service(&self) -> &ServiceDesc {
        &self.service
    }

    /// Invoke `op_name(args)` and parse the response.
    pub fn call(&mut self, op_name: &str, args: &[Value]) -> Result<Vec<Value>, RpcError> {
        let op = self
            .service
            .operation(op_name)
            .ok_or_else(|| RpcError::UnknownOperation(op_name.to_owned()))?
            .clone();
        self.call_op(&op, args).map(|(values, _)| values)
    }

    /// Invoke with the full send report (tier, bytes, patch counters).
    pub fn call_op(
        &mut self,
        op: &OpDesc,
        args: &[Value],
    ) -> Result<(Vec<Value>, SendReport), RpcError> {
        let (status, headers, body, report) = self.exchange(op, args)?;
        let (status, headers, body, report) = if status == 415 && self.negotiator.on_unsupported() {
            // The server disabled the binary lane mid-keep-alive: the
            // negotiator is now settled on XML, so resend the same call
            // on the XML lane — exactly once, and no request is lost.
            self.client
                .set_endpoint_format(&self.service.endpoint, WireFormat::SoapXml);
            self.exchange(op, args)?
        } else {
            (status, headers, body, report)
        };
        self.negotiator.observe_response(&headers);
        self.sync_endpoint_format();
        if status != 200 {
            return Err(RpcError::Status(status, body));
        }
        let resp_name = format!("{}Response", op.name);
        let resp_binary = headers
            .iter()
            .any(|(n, v)| n == HDR_FORMAT_LOWER && v.eq_ignore_ascii_case(TOKEN_BINARY));
        let values = match self.response_descs.iter().find(|d| d.name == resp_name) {
            Some(desc) if resp_binary => {
                parse_binary_envelope(&body, desc).map_err(RpcError::Response)?
            }
            Some(desc) => parse_envelope(&body, desc).map_err(RpcError::Response)?,
            None => Vec::new(),
        };
        Ok((values, report))
    }

    /// One request/response exchange on the lane the negotiator
    /// currently prescribes.
    #[allow(clippy::type_complexity)]
    fn exchange(
        &mut self,
        op: &OpDesc,
        args: &[Value],
    ) -> Result<(u16, Vec<(String, String)>, Vec<u8>, SendReport), RpcError> {
        self.sync_endpoint_format();
        let action = self.service.soap_action(&op.name);
        let endpoint = self.service.endpoint.clone();
        let transport = &mut self.transport;
        transport.set_soap_action(&action);
        transport.set_extra_headers(self.negotiator.request_headers());
        let report = self
            .client
            .call_via(&endpoint, op, args, |slices| transport.send_message(slices))
            .map_err(RpcError::Send)?;
        let (status, headers, body) =
            read_response_headers_limited(self.transport.stream(), usize::MAX, usize::MAX)
                .map_err(RpcError::Io)?;
        Ok((status, headers, body, report))
    }

    /// Keep the engine's per-endpoint lane in lockstep with the
    /// negotiator's verdict.
    fn sync_endpoint_format(&mut self) {
        let format = match self.negotiator.body_token() {
            t if t == TOKEN_BINARY => WireFormat::CompactBinary,
            _ => WireFormat::SoapXml,
        };
        self.client
            .set_endpoint_format(&self.service.endpoint, format);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::ScalarKind;
    use crate::server::{HttpServer, Service};
    use crate::wsdl::{parse_wsdl, write_wsdl};
    use crate::{SendTier, TypeDesc};

    /// Server cores to exercise: both when the platform has epoll, else
    /// just the worker pool.
    fn cores() -> Vec<bsoap_core::ServerCore> {
        if crate::transport::poller::supported() {
            vec![
                bsoap_core::ServerCore::WorkerPool,
                bsoap_core::ServerCore::EventLoop,
            ]
        } else {
            vec![bsoap_core::ServerCore::WorkerPool]
        }
    }

    fn scale_service() -> (ServiceDesc, Service) {
        scale_service_on(bsoap_core::ServerCore::WorkerPool)
    }

    fn scale_service_on(core: bsoap_core::ServerCore) -> (ServiceDesc, Service) {
        let op = OpDesc::single(
            "scale",
            "urn:vec",
            "xs",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        );
        let desc = ServiceDesc {
            name: "Vec".into(),
            namespace: "urn:vec".into(),
            endpoint: "http://svc/vec".into(),
            operations: vec![op.clone()],
        };
        let mut svc = Service::new(
            "urn:vec",
            EngineConfig::paper_default().with_server_core(core),
        );
        svc.register(
            op,
            vec![ParamDesc {
                name: "ys".into(),
                desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
            }],
            |args| {
                let Value::DoubleArray(v) = &args[0] else {
                    return Err("type".into());
                };
                Ok(vec![Value::DoubleArray(
                    v.iter().map(|x| x * 2.0).collect(),
                )])
            },
        );
        (desc, svc)
    }

    #[test]
    fn end_to_end_rpc_round_trip() {
        let (desc, svc) = scale_service();
        let server = HttpServer::spawn(svc).unwrap();
        // The client side bootstraps from the published WSDL document.
        let parsed = parse_wsdl(write_wsdl(&desc).as_bytes()).unwrap();
        // Pinned to the XML lane: the tier trajectory below narrates the
        // non-negotiating flow (a binary-default client's second call is
        // the lane upgrade, a FirstTime rebuild).
        let mut rpc = RpcClient::connect(
            parsed,
            server.addr(),
            EngineConfig::paper_default().with_wire_format(WireFormat::SoapXml),
        )
        .unwrap();
        rpc.declare_response(
            "scale",
            vec![ParamDesc {
                name: "ys".into(),
                desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
            }],
        );

        let got = rpc
            .call("scale", &[Value::DoubleArray(vec![1.5, 2.5])])
            .unwrap();
        assert_eq!(got, vec![Value::DoubleArray(vec![3.0, 5.0])]);

        // Second identical call: content match on the wire.
        let (got, report) = rpc
            .call_op(
                &rpc.service().operation("scale").unwrap().clone(),
                &[Value::DoubleArray(vec![1.5, 2.5])],
            )
            .unwrap();
        assert_eq!(got, vec![Value::DoubleArray(vec![3.0, 5.0])]);
        assert_eq!(report.tier, SendTier::ContentMatch);
        let stats = rpc.stats();
        assert_eq!(stats.first_time, 1);
        assert_eq!(stats.content_match, 1);
        server.stop();
    }

    #[test]
    fn negotiated_binary_upgrade_round_trip() {
        use crate::transport::NegotiationState;
        for core in cores() {
            let (desc, svc) = scale_service_on(core);
            let server = HttpServer::spawn(svc).unwrap();
            let mut rpc = RpcClient::connect(
                desc,
                server.addr(),
                EngineConfig::paper_default().with_wire_format(WireFormat::CompactBinary),
            )
            .unwrap();
            rpc.declare_response(
                "scale",
                vec![ParamDesc {
                    name: "ys".into(),
                    desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
                }],
            );
            assert_eq!(rpc.negotiation_state(), NegotiationState::Undecided);

            // Call 1 goes out as XML with the offer; the server's advert
            // upgrades the endpoint.
            let got = rpc
                .call("scale", &[Value::DoubleArray(vec![1.5, 2.5])])
                .unwrap();
            assert_eq!(
                got,
                vec![Value::DoubleArray(vec![3.0, 5.0])],
                "core {core:?}"
            );
            assert_eq!(rpc.negotiation_state(), NegotiationState::Binary);

            // Call 2 is the binary lane's first-time build; call 3
            // content-matches against the binary template. Values
            // survive both hops.
            let op = rpc.service().operation("scale").unwrap().clone();
            let (got, report) = rpc
                .call_op(&op, &[Value::DoubleArray(vec![4.0, 0.5])])
                .unwrap();
            assert_eq!(
                got,
                vec![Value::DoubleArray(vec![8.0, 1.0])],
                "core {core:?}"
            );
            assert_eq!(report.tier, SendTier::FirstTime, "core {core:?}");
            let (got, report) = rpc
                .call_op(&op, &[Value::DoubleArray(vec![4.0, 0.5])])
                .unwrap();
            assert_eq!(
                got,
                vec![Value::DoubleArray(vec![8.0, 1.0])],
                "core {core:?}"
            );
            assert_eq!(report.tier, SendTier::ContentMatch, "core {core:?}");
            server.stop();
        }
    }

    #[test]
    fn xml_config_never_offers_binary() {
        use crate::transport::NegotiationState;
        let (desc, svc) = scale_service();
        let server = HttpServer::spawn(svc).unwrap();
        let mut rpc = RpcClient::connect(
            desc,
            server.addr(),
            EngineConfig::paper_default().with_wire_format(WireFormat::SoapXml),
        )
        .unwrap();
        rpc.call("scale", &[Value::DoubleArray(vec![1.0])]).unwrap();
        // The server adverts bin1, but a client that never offered
        // stays on XML.
        assert_eq!(rpc.negotiation_state(), NegotiationState::Xml);
        server.stop();
    }

    #[test]
    fn mid_keepalive_downgrade_loses_no_request() {
        use crate::transport::NegotiationState;
        for core in cores() {
            let (desc, svc) = scale_service_on(core);
            let server = HttpServer::spawn(svc).unwrap();
            let mut rpc = RpcClient::connect(
                desc,
                server.addr(),
                EngineConfig::paper_default().with_wire_format(WireFormat::CompactBinary),
            )
            .unwrap();
            rpc.declare_response(
                "scale",
                vec![ParamDesc {
                    name: "ys".into(),
                    desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
                }],
            );
            // Upgrade, then send one binary call so the lane is live.
            rpc.call("scale", &[Value::DoubleArray(vec![1.0])]).unwrap();
            rpc.call("scale", &[Value::DoubleArray(vec![2.0])]).unwrap();
            assert_eq!(rpc.negotiation_state(), NegotiationState::Binary);

            // The server turns the lane off mid-keep-alive. The next
            // binary body draws a 415; the client must downgrade and
            // transparently resend the SAME request as XML — the caller
            // just sees values.
            server.service().set_binary_enabled(false);
            let got = rpc
                .call("scale", &[Value::DoubleArray(vec![5.0, 6.0])])
                .unwrap();
            assert_eq!(
                got,
                vec![Value::DoubleArray(vec![10.0, 12.0])],
                "core {core:?}"
            );
            assert_eq!(rpc.negotiation_state(), NegotiationState::Xml);

            // Settled: later calls stay on XML and keep answering.
            let got = rpc.call("scale", &[Value::DoubleArray(vec![7.0])]).unwrap();
            assert_eq!(got, vec![Value::DoubleArray(vec![14.0])], "core {core:?}");
            assert_eq!(rpc.negotiation_state(), NegotiationState::Xml);
            let stats = server.stop();
            assert_eq!(
                stats.requests, 4,
                "core {core:?}: four successful dispatches (the bounced binary body is not one)"
            );
        }
    }

    #[test]
    fn unknown_operation_rejected_client_side() {
        let (desc, svc) = scale_service();
        let server = HttpServer::spawn(svc).unwrap();
        let mut rpc =
            RpcClient::connect(desc, server.addr(), EngineConfig::paper_default()).unwrap();
        assert!(matches!(
            rpc.call("ghost", &[]),
            Err(RpcError::UnknownOperation(_))
        ));
        server.stop();
    }

    #[test]
    fn handler_fault_becomes_status_error() {
        let op = OpDesc::single("f", "urn:x", "v", TypeDesc::Scalar(ScalarKind::Int));
        let desc = ServiceDesc {
            name: "F".into(),
            namespace: "urn:x".into(),
            endpoint: "http://svc/f".into(),
            operations: vec![op.clone()],
        };
        let mut svc = Service::new("urn:x", EngineConfig::paper_default());
        svc.register(
            op,
            vec![ParamDesc {
                name: "r".into(),
                desc: TypeDesc::Scalar(ScalarKind::Int),
            }],
            |_| Err("boom".into()),
        );
        let server = HttpServer::spawn(svc).unwrap();
        let mut rpc =
            RpcClient::connect(desc, server.addr(), EngineConfig::paper_default()).unwrap();
        match rpc.call("f", &[Value::Int(1)]) {
            Err(RpcError::Status(500, body)) => {
                assert!(String::from_utf8(body).unwrap().contains("boom"));
            }
            other => panic!("expected 500 fault, got {other:?}"),
        }
        server.stop();
    }

    #[test]
    fn missing_response_decl_yields_empty_values() {
        let (desc, svc) = scale_service();
        let server = HttpServer::spawn(svc).unwrap();
        let mut rpc =
            RpcClient::connect(desc, server.addr(), EngineConfig::paper_default()).unwrap();
        let got = rpc.call("scale", &[Value::DoubleArray(vec![1.0])]).unwrap();
        assert!(
            got.is_empty(),
            "no declared response schema → values skipped"
        );
        server.stop();
    }
}
