//! High-level RPC: the whole stack behind one call.
//!
//! [`RpcClient`] connects the pieces a downstream user would otherwise
//! wire by hand: a WSDL-derived service description, the differential
//! serialization client, HTTP framing over TCP, and response
//! deserialization. Every request rides the cheapest matching tier; every
//! response is parsed against the operation's `{name}Response` schema.

use crate::deser::{parse_envelope, DeserError};
use crate::transport::http::{read_response, HttpVersion, RequestConfig};
use crate::transport::tcp::{Framing, TcpTransport};
use crate::transport::Transport;
use crate::wsdl::ServiceDesc;
use crate::{Client, EngineConfig, EngineError, OpDesc, ParamDesc, SendReport, Value};
use std::fmt;
use std::net::SocketAddr;

/// RPC-level error.
#[derive(Debug)]
pub enum RpcError {
    /// The service description has no such operation.
    UnknownOperation(String),
    /// Request serialization or transport failure.
    Send(EngineError),
    /// Transport-level response failure.
    Io(std::io::Error),
    /// The server answered with a non-200 status (body included).
    Status(u16, Vec<u8>),
    /// The response body did not match the expected schema.
    Response(DeserError),
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::UnknownOperation(n) => write!(f, "unknown operation {n}"),
            RpcError::Send(e) => write!(f, "send failed: {e}"),
            RpcError::Io(e) => write!(f, "response I/O failed: {e}"),
            RpcError::Status(s, _) => write!(f, "server returned HTTP {s}"),
            RpcError::Response(e) => write!(f, "response parse failed: {e}"),
        }
    }
}

impl std::error::Error for RpcError {}

/// A connected RPC client for one service.
pub struct RpcClient {
    service: ServiceDesc,
    client: Client,
    transport: TcpTransport,
    /// Response descriptors supplied per operation (the WSDL subset in
    /// this stack describes requests; responses follow the
    /// `{op}Response` convention and are registered explicitly).
    response_descs: Vec<OpDesc>,
}

impl RpcClient {
    /// Connect to `addr` and speak `service`'s operations over
    /// HTTP/1.1 (`Content-Length` framing, persistent connection).
    pub fn connect(
        service: ServiceDesc,
        addr: SocketAddr,
        config: EngineConfig,
    ) -> std::io::Result<Self> {
        let cfg = RequestConfig {
            path: "/".to_owned(),
            host: addr.ip().to_string(),
            // Rewritten per call with the operation's action.
            soap_action: String::new(),
            version: HttpVersion::Http11Length,
        };
        let transport = TcpTransport::connect(addr, Framing::Http(cfg))?;
        Ok(RpcClient {
            service,
            client: Client::new(config),
            transport,
            response_descs: Vec::new(),
        })
    }

    /// Declare the response parameters of `op` so [`RpcClient::call`] can
    /// parse replies (defaults to an empty response otherwise).
    pub fn declare_response(&mut self, op: &str, params: Vec<ParamDesc>) {
        let desc = OpDesc::new(&format!("{op}Response"), &self.service.namespace, params);
        self.response_descs.retain(|d| d.name != desc.name);
        self.response_descs.push(desc);
    }

    /// The differential client's statistics (tier histogram).
    pub fn stats(&self) -> crate::ClientStats {
        self.client.stats()
    }

    /// The service description this client was built from.
    pub fn service(&self) -> &ServiceDesc {
        &self.service
    }

    /// Invoke `op_name(args)` and parse the response.
    pub fn call(&mut self, op_name: &str, args: &[Value]) -> Result<Vec<Value>, RpcError> {
        let op = self
            .service
            .operation(op_name)
            .ok_or_else(|| RpcError::UnknownOperation(op_name.to_owned()))?
            .clone();
        self.call_op(&op, args).map(|(values, _)| values)
    }

    /// Invoke with the full send report (tier, bytes, patch counters).
    pub fn call_op(
        &mut self,
        op: &OpDesc,
        args: &[Value],
    ) -> Result<(Vec<Value>, SendReport), RpcError> {
        let action = self.service.soap_action(&op.name);
        let endpoint = self.service.endpoint.clone();
        let transport = &mut self.transport;
        transport.set_soap_action(&action);
        let report = self
            .client
            .call_via(&endpoint, op, args, |slices| transport.send_message(slices))
            .map_err(RpcError::Send)?;
        let (status, body) = read_response(self.transport.stream()).map_err(RpcError::Io)?;
        if status != 200 {
            return Err(RpcError::Status(status, body));
        }
        let resp_name = format!("{}Response", op.name);
        let values = match self.response_descs.iter().find(|d| d.name == resp_name) {
            Some(desc) => parse_envelope(&body, desc).map_err(RpcError::Response)?,
            None => Vec::new(),
        };
        Ok((values, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::ScalarKind;
    use crate::server::{HttpServer, Service};
    use crate::wsdl::{parse_wsdl, write_wsdl};
    use crate::{SendTier, TypeDesc};

    fn scale_service() -> (ServiceDesc, Service) {
        let op = OpDesc::single(
            "scale",
            "urn:vec",
            "xs",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        );
        let desc = ServiceDesc {
            name: "Vec".into(),
            namespace: "urn:vec".into(),
            endpoint: "http://svc/vec".into(),
            operations: vec![op.clone()],
        };
        let mut svc = Service::new("urn:vec", EngineConfig::paper_default());
        svc.register(
            op,
            vec![ParamDesc {
                name: "ys".into(),
                desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
            }],
            |args| {
                let Value::DoubleArray(v) = &args[0] else {
                    return Err("type".into());
                };
                Ok(vec![Value::DoubleArray(
                    v.iter().map(|x| x * 2.0).collect(),
                )])
            },
        );
        (desc, svc)
    }

    #[test]
    fn end_to_end_rpc_round_trip() {
        let (desc, svc) = scale_service();
        let server = HttpServer::spawn(svc).unwrap();
        // The client side bootstraps from the published WSDL document.
        let parsed = parse_wsdl(write_wsdl(&desc).as_bytes()).unwrap();
        let mut rpc =
            RpcClient::connect(parsed, server.addr(), EngineConfig::paper_default()).unwrap();
        rpc.declare_response(
            "scale",
            vec![ParamDesc {
                name: "ys".into(),
                desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
            }],
        );

        let got = rpc
            .call("scale", &[Value::DoubleArray(vec![1.5, 2.5])])
            .unwrap();
        assert_eq!(got, vec![Value::DoubleArray(vec![3.0, 5.0])]);

        // Second identical call: content match on the wire.
        let (got, report) = rpc
            .call_op(
                &rpc.service().operation("scale").unwrap().clone(),
                &[Value::DoubleArray(vec![1.5, 2.5])],
            )
            .unwrap();
        assert_eq!(got, vec![Value::DoubleArray(vec![3.0, 5.0])]);
        assert_eq!(report.tier, SendTier::ContentMatch);
        let stats = rpc.stats();
        assert_eq!(stats.first_time, 1);
        assert_eq!(stats.content_match, 1);
        server.stop();
    }

    #[test]
    fn unknown_operation_rejected_client_side() {
        let (desc, svc) = scale_service();
        let server = HttpServer::spawn(svc).unwrap();
        let mut rpc =
            RpcClient::connect(desc, server.addr(), EngineConfig::paper_default()).unwrap();
        assert!(matches!(
            rpc.call("ghost", &[]),
            Err(RpcError::UnknownOperation(_))
        ));
        server.stop();
    }

    #[test]
    fn handler_fault_becomes_status_error() {
        let op = OpDesc::single("f", "urn:x", "v", TypeDesc::Scalar(ScalarKind::Int));
        let desc = ServiceDesc {
            name: "F".into(),
            namespace: "urn:x".into(),
            endpoint: "http://svc/f".into(),
            operations: vec![op.clone()],
        };
        let mut svc = Service::new("urn:x", EngineConfig::paper_default());
        svc.register(
            op,
            vec![ParamDesc {
                name: "r".into(),
                desc: TypeDesc::Scalar(ScalarKind::Int),
            }],
            |_| Err("boom".into()),
        );
        let server = HttpServer::spawn(svc).unwrap();
        let mut rpc =
            RpcClient::connect(desc, server.addr(), EngineConfig::paper_default()).unwrap();
        match rpc.call("f", &[Value::Int(1)]) {
            Err(RpcError::Status(500, body)) => {
                assert!(String::from_utf8(body).unwrap().contains("boom"));
            }
            other => panic!("expected 500 fault, got {other:?}"),
        }
        server.stop();
    }

    #[test]
    fn missing_response_decl_yields_empty_values() {
        let (desc, svc) = scale_service();
        let server = HttpServer::spawn(svc).unwrap();
        let mut rpc =
            RpcClient::connect(desc, server.addr(), EngineConfig::paper_default()).unwrap();
        let got = rpc.call("scale", &[Value::DoubleArray(vec![1.0])]).unwrap();
        assert!(
            got.is_empty(),
            "no declared response schema → values skipped"
        );
        server.stop();
    }
}
