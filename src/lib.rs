//! # bsoap — differential serialization for SOAP, in Rust
//!
//! A from-scratch reproduction of *"Differential Serialization for
//! Optimized SOAP Performance"* (Abu-Ghazaleh, Lewis, Govindaraju —
//! HPDC 2004). Instead of re-serializing every outgoing SOAP message, a
//! client saves the serialized bytes of the first send as a **template**
//! and, for each later call, rewrites only what changed:
//!
//! * nothing changed → **message content match**: resend the bytes as-is;
//! * some values changed → **perfect structural match**: overwrite just
//!   those values in place, guided by a Data Update Tracking (DUT) table;
//! * array lengths changed → **partial structural match**: expand or
//!   contract the template in place;
//! * first call → **first-time send**: full serialization, template saved.
//!
//! ## Quick start
//!
//! ```
//! use bsoap::{Client, OpDesc, SendTier, TypeDesc, Value};
//! use bsoap::convert::ScalarKind;
//! use bsoap::transport::SinkTransport;
//!
//! let op = OpDesc::single(
//!     "sendVector", "urn:solver", "x",
//!     TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
//! );
//! let mut client = Client::with_defaults();
//! let mut sink = SinkTransport::new();
//!
//! // First call: full serialization.
//! let mut x = vec![0.5_f64; 1000];
//! let r = client.call("http://solver/svc", &op, &[Value::DoubleArray(x.clone())], &mut sink).unwrap();
//! assert_eq!(r.tier, SendTier::FirstTime);
//!
//! // Same data again: the saved bytes are resent verbatim.
//! let r = client.call("http://solver/svc", &op, &[Value::DoubleArray(x.clone())], &mut sink).unwrap();
//! assert_eq!(r.tier, SendTier::ContentMatch);
//!
//! // A few entries change: only those are re-serialized.
//! x[3] = 0.25;
//! let r = client.call("http://solver/svc", &op, &[Value::DoubleArray(x)], &mut sink).unwrap();
//! assert_eq!(r.tier, SendTier::PerfectStructural);
//! assert_eq!(r.values_written, 1);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |-------|------|
//! | [`convert`] | number ↔ ASCII conversion (the measured 90% bottleneck) |
//! | [`xml`] | escaping, names, streaming writer, pull tokenizer |
//! | [`chunks`] | the chunked message buffer (§3.2) |
//! | `core` (re-exported at the root) | templates, DUT table, four tiers, shifting/stuffing/stealing, chunk overlaying, client stub |
//! | [`transport`] | Send-Time measurement rig, HTTP/1.0 + 1.1 framing, loopback servers |
//! | [`baseline`] | gSOAP-like and XSOAP-like full serializers (the paper's comparison toolkits) |
//! | [`deser`] | server-side parsing, incl. differential deserialization (§6) |
//!
//! The benchmark harness that regenerates every figure of the paper lives
//! in the `bsoap-bench` crate (`cargo run -p bsoap-bench --bin figures`).

pub mod rpc;

pub use bsoap_core::{
    soap, Checkout, Client, ClientStats, DutEntry, DutTable, EngineConfig, EngineError,
    FloatFormatter, FlushMode, GrowthPolicy, InjectedFault, KernelPolicy, MessageTemplate, OpDesc,
    OverlaidOutcome, ParamDesc, PlanCost, Scalar, SendPlan, SendReport, SendTier, StoreKey,
    StoreMode, TemplateCache, TemplateKey, TemplateStore, TypeDesc, Value, WidthPolicy, WireFormat,
};

/// Fault-tolerance surface: retry/breaker policy, per-call deadlines,
/// deterministic backoff, breaker state machine.
pub use bsoap_obs::{
    Backoff, BreakerState, Clock, Deadline, DeadlineExpired, MonotonicClock, VirtualClock,
};
pub use bsoap_transport::{AttemptFailure, CircuitBreaker, FaultPolicy, Resilience};

/// Vectored write helper for custom transports (gather-writes a slice
/// list fully, retrying short writes).
pub use bsoap_core::sendv::write_all_vectored;

pub use bsoap_core::overlay::{OverlayReport, OverlaySender};
pub use bsoap_core::pipeline::{PipelineReport, PipelinedSender};
pub use bsoap_core::value::mio;

/// Number ↔ ASCII conversion substrate.
pub use bsoap_convert as convert;

/// XML substrate (escaping, names, writer, pull parser, canonicalizer).
pub use bsoap_xml as xml;

/// Chunked message buffers.
pub use bsoap_chunks as chunks;

/// Observability: counters, latency histograms, trace ring, /metrics.
pub use bsoap_obs as obs;

/// Transports, HTTP framing, loopback servers.
pub use bsoap_transport as transport;

/// Baseline (non-differential) serializers.
pub use bsoap_baseline as baseline;

/// Deserialization, full and differential.
pub use bsoap_deser as deser;

/// WSDL 1.1 service descriptions (rpc/encoded subset).
pub use bsoap_wsdl as wsdl;

/// SOAP service host (differential paths on both sides of the wire).
pub use bsoap_server as server;

/// Chunk store configuration re-export (used by `EngineConfig`).
pub use bsoap_chunks::ChunkConfig;
