#!/bin/sh
# restore placeholder lib.rs for crates not yet implemented so the workspace loads
cd /root/repo
for c in chunks core transport baseline deser bench; do
  [ -f crates/$c/src/lib.rs ] || echo "//! placeholder" > crates/$c/src/lib.rs
done
