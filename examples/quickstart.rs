//! 60-second tour of differential serialization.
//!
//! Builds a client, makes the same SOAP call four ways, and prints which
//! of the paper's four matching tiers each send used and what it cost.
//!
//! Run with: `cargo run --release --example quickstart`

use bsoap::convert::ScalarKind;
use bsoap::transport::SinkTransport;
use bsoap::{Client, OpDesc, TypeDesc, Value};
use std::time::Instant;

fn main() {
    let op = OpDesc::single(
        "sendVector",
        "urn:quickstart",
        "x",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
    );
    let endpoint = "http://localhost/quickstart";
    let mut client = Client::with_defaults();
    let mut sink = SinkTransport::new();

    let mut x: Vec<f64> = (0..10_000).map(|i| i as f64 * 0.25).collect();

    println!(
        "{:<28} {:>10} {:>14} {:>10}",
        "send", "tier", "values written", "time"
    );
    println!("{}", "-".repeat(68));

    // 1. First-time send: full serialization, template saved.
    let t = Instant::now();
    let r = client
        .call(endpoint, &op, &[Value::DoubleArray(x.clone())], &mut sink)
        .unwrap();
    report("first send", &r, t);

    // 2. Identical data: message content match — no serialization at all.
    let t = Instant::now();
    let r = client
        .call(endpoint, &op, &[Value::DoubleArray(x.clone())], &mut sink)
        .unwrap();
    report("unchanged resend", &r, t);

    // 3. A handful of values change: perfect structural match.
    for i in (0..x.len()).step_by(1000) {
        x[i] += 1.0;
    }
    let t = Instant::now();
    let r = client
        .call(endpoint, &op, &[Value::DoubleArray(x.clone())], &mut sink)
        .unwrap();
    report("10 values changed", &r, t);

    // 4. The array grows: partial structural match (in-place resize).
    x.extend_from_slice(&[1.0, 2.0, 3.0]);
    let t = Instant::now();
    let r = client
        .call(endpoint, &op, &[Value::DoubleArray(x)], &mut sink)
        .unwrap();
    report("array grew by 3", &r, t);

    let stats = client.stats();
    println!(
        "\nclient totals: {} calls, {} bytes shipped",
        stats.calls(),
        stats.bytes_sent
    );
    println!(
        "tiers: first={} content={} perfect={} partial={}",
        stats.first_time, stats.content_match, stats.perfect_structural, stats.partial_structural
    );
}

fn report(label: &str, r: &bsoap::SendReport, t: Instant) {
    println!(
        "{:<28} {:>10} {:>14} {:>9.2?}",
        label,
        tier_short(r.tier),
        r.values_written,
        t.elapsed()
    );
}

fn tier_short(t: bsoap::SendTier) -> &'static str {
    match t {
        bsoap::SendTier::FirstTime => "first",
        bsoap::SendTier::ContentMatch => "content",
        bsoap::SendTier::PerfectStructural => "perfect",
        bsoap::SendTier::PartialStructural => "partial",
    }
}
