//! PDE mesh-coupling scenario (paper §4.1): MIO arrays over real TCP.
//!
//! "An MIO is a structure of the form [int, int, double], where the first
//! two fields represent mesh coordinates, and the third represents a field
//! value. MIO's can be used, for example, for communication between two
//! partial differential equation (PDE) solvers on different domains."
//!
//! A 1-D heat-diffusion stencil runs on a strip of cells; after every step
//! the strip ships its mesh interface to the coupled solver through a
//! loopback TCP connection to the paper's dummy (discarding) server. Mesh
//! coordinates never change; only a subset of field values move each step,
//! so every send after the first is a perfect structural match with a
//! partial dirty set.
//!
//! Run with: `cargo run --release --example mesh_exchange`

use bsoap::transport::tcp::{Framing, TcpTransport};
use bsoap::transport::{ServerMode, TestServer};
use bsoap::{mio, Client, OpDesc, TypeDesc, Value};
use std::time::Instant;

const CELLS: usize = 5_000;
const STEPS: usize = 40;

fn main() {
    let server = TestServer::spawn(ServerMode::Discard).expect("bind loopback");
    println!("dummy server on {}", server.addr());
    let mut transport = TcpTransport::connect(server.addr(), Framing::Raw).expect("connect");

    let op = OpDesc::single(
        "exchangeBoundary",
        "urn:mesh",
        "interface",
        TypeDesc::array_of(TypeDesc::mio()),
    );
    let mut client = Client::with_defaults();

    // Initial field: a hot spot in the middle of the strip.
    let mut field = vec![0.0f64; CELLS];
    field[CELLS / 2] = 1000.0;
    let as_mios = |f: &[f64]| {
        Value::Array(
            f.iter()
                .enumerate()
                .map(|(i, &v)| mio(i as i32, (i / 64) as i32, v))
                .collect(),
        )
    };

    let t_total = Instant::now();
    let mut report_last = None;
    for step in 0..STEPS {
        // Heat diffusion: values spread outward; far cells stay exactly 0.0
        // so their leaves stay clean (partial dirty sets).
        let prev = field.clone();
        for i in 1..CELLS - 1 {
            let v = prev[i] + 0.25 * (prev[i - 1] - 2.0 * prev[i] + prev[i + 1]);
            field[i] = if v.abs() < 1e-9 { 0.0 } else { v };
        }
        let r = client
            .call("tcp://mesh-peer", &op, &[as_mios(&field)], &mut transport)
            .unwrap();
        if step % 10 == 0 || step == STEPS - 1 {
            println!(
                "step {:>3}: tier {:<24} {:>6} of {} values rewritten",
                step,
                r.tier.name(),
                r.values_written,
                3 * CELLS
            );
        }
        report_last = Some(r);
    }
    let elapsed = t_total.elapsed();

    transport.finish().unwrap();
    drop(transport);
    let server_stats = server.stop();
    let stats = client.stats();

    println!("\n{STEPS} exchanges of {CELLS} MIOs in {elapsed:.2?}");
    println!(
        "tiers: first={} content={} perfect={} partial={}",
        stats.first_time, stats.content_match, stats.perfect_structural, stats.partial_structural
    );
    println!(
        "bytes on the wire: {} (server drained {})",
        stats.bytes_sent, server_stats.bytes_received
    );
    assert_eq!(
        stats.bytes_sent, server_stats.bytes_received,
        "wire accounting must agree"
    );
    if let Some(r) = report_last {
        println!(
            "last message: {} bytes, {} values rewritten",
            r.bytes, r.values_written
        );
    }
}
