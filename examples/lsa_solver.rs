//! Linear System Analyzer scenario (paper §3.4).
//!
//! "Scientists can connect various components in a cycle to repeatedly
//! refine and re-calculate the solution vector until the required
//! convergence condition is met. Since the size and form of the array does
//! not change over different iterations, consecutive messages exhibit
//! perfect structural matches."
//!
//! This example runs a Jacobi iteration on a diagonally dominant system
//! `Ax = b` and ships the full solution vector to a (sink) component after
//! every sweep — once through bSOAP's differential client and once through
//! the gSOAP-like baseline — then compares cumulative Send Time.
//!
//! Run with: `cargo run --release --example lsa_solver`

use bsoap::baseline::GSoapLike;
use bsoap::convert::ScalarKind;
use bsoap::transport::SinkTransport;
use bsoap::{Client, EngineConfig, OpDesc, TypeDesc, Value, WidthPolicy};
use std::time::{Duration, Instant};

const N: usize = 4_000;
const SWEEPS: usize = 40;

/// Dense diagonally dominant test system.
struct System {
    a: Vec<f64>, // row-major N×N
    b: Vec<f64>,
}

fn build_system() -> System {
    // Deterministic pseudo-random entries; diagonal dominance guarantees
    // Jacobi convergence.
    let mut seed = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let mut a = vec![0.0; N * N];
    let mut b = vec![0.0; N];
    for i in 0..N {
        let mut row_sum = 0.0;
        for j in 0..N {
            if i != j {
                let v = next() * 0.001;
                a[i * N + j] = v;
                row_sum += v.abs();
            }
        }
        a[i * N + i] = row_sum + 1.0;
        b[i] = next();
    }
    System { a, b }
}

fn jacobi_sweep(sys: &System, x: &[f64], out: &mut [f64]) -> f64 {
    let mut max_delta = 0.0f64;
    for i in 0..N {
        let row = &sys.a[i * N..(i + 1) * N];
        let mut sigma = 0.0;
        for j in 0..N {
            if j != i {
                sigma += row[j] * x[j];
            }
        }
        let next = (sys.b[i] - sigma) / row[i];
        let delta = (next - x[i]).abs();
        // Component-wise convergence freeze: once an entry stops moving
        // beyond relative tolerance, keep its bits stable. This is what
        // iterative refinement looks like on the wire: the dirty set
        // shrinks sweep over sweep, and bSOAP re-serializes only the
        // entries still in motion.
        if delta <= 1e-10 * x[i].abs().max(1e-300) {
            out[i] = x[i];
        } else {
            out[i] = next;
            max_delta = max_delta.max(delta);
        }
    }
    max_delta
}

fn main() {
    println!("building {N}x{N} system…");
    let sys = build_system();
    let op = OpDesc::single(
        "updateSolution",
        "urn:lsa",
        "x",
        TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
    );

    // --- bSOAP run ---
    // Stuffed widths: Jacobi rewrites every value each sweep with varying
    // serialized lengths, so exact widths would shift constantly (§4.3's
    // worst case). Stuffing trades message size for shift-free updates —
    // exactly the operating point §4.4 recommends for this workload.
    let mut client = Client::new(EngineConfig::paper_default().with_width(WidthPolicy::Max));
    let mut sink = SinkTransport::new();
    let mut x = vec![0.0f64; N];
    let mut x_next = vec![0.0f64; N];
    let mut bsoap_send_time = Duration::ZERO;
    let mut converged_at = SWEEPS;
    let mut total_rewritten = 0u64;
    for sweep in 0..SWEEPS {
        let delta = jacobi_sweep(&sys, &x, &mut x_next);
        std::mem::swap(&mut x, &mut x_next);
        let t = Instant::now();
        let r = client
            .call(
                "http://lsa/solver",
                &op,
                &[Value::DoubleArray(x.clone())],
                &mut sink,
            )
            .unwrap();
        bsoap_send_time += t.elapsed();
        total_rewritten += r.values_written as u64;
        if sweep % 8 == 0 {
            println!(
                "  sweep {sweep:>3}: {:>6} of {N} entries re-serialized",
                r.values_written
            );
        }
        if delta < 1e-15 {
            converged_at = sweep + 1;
            break;
        }
    }
    let stats = client.stats();

    // --- gSOAP-like baseline run (same math, full serialization each time) ---
    let mut g = GSoapLike::new();
    let mut gsink = SinkTransport::new();
    let mut x = vec![0.0f64; N];
    let mut gsoap_send_time = Duration::ZERO;
    for _ in 0..converged_at {
        let delta = jacobi_sweep(&sys, &x, &mut x_next);
        std::mem::swap(&mut x, &mut x_next);
        let t = Instant::now();
        g.send(&op, &[Value::DoubleArray(x.clone())], &mut gsink)
            .unwrap();
        gsoap_send_time += t.elapsed();
        if delta < 1e-15 {
            break;
        }
    }

    println!("converged after {converged_at} sweeps (vector of {N} doubles per message)");
    println!(
        "entries re-serialized: {total_rewritten} of {}\n",
        converged_at as u64 * N as u64
    );
    println!(
        "tier histogram (bSOAP): first={} content={} perfect={} partial={}",
        stats.first_time, stats.content_match, stats.perfect_structural, stats.partial_structural
    );
    println!("cumulative Send Time, bSOAP differential: {bsoap_send_time:>10.2?}");
    println!("cumulative Send Time, gSOAP-like full:    {gsoap_send_time:>10.2?}");
    let speedup = gsoap_send_time.as_secs_f64() / bsoap_send_time.as_secs_f64().max(1e-12);
    println!("speedup: {speedup:.2}x");
    println!(
        "\nnote: early sweeps are ~100% dirty (differential ≈ full serialization);\n\
         as components converge the dirty set shrinks and differential sends\n\
         approach content-match cost — the paper's Figures 4-5 gradient, live."
    );
}
