//! The "heavily-used server" scenario (paper §3.4).
//!
//! "Google and Amazon.com provide a Web services interface. The XML
//! Schema used for the responses to user requests is always the same
//! (for a particular operation); only the values stored in the XML Schema
//! instance change … The optimizations in bSOAP for perfect structural
//! match could significantly reduce the time spent serializing response
//! messages from the heavily-used servers."
//!
//! A query service returns a fixed-schema page of results (ids + scores).
//! Many clients issue queries; because consecutive responses share the
//! schema — and often most of their content — the server's differential
//! response path turns full serializations into patches.
//!
//! Run with: `cargo run --release --example query_service`

use bsoap::convert::ScalarKind;
use bsoap::server::{HttpServer, Service};
use bsoap::transport::http::{post_gather, read_response, HttpVersion, RequestConfig};
use bsoap::{EngineConfig, MessageTemplate, OpDesc, ParamDesc, TypeDesc, Value, WidthPolicy};
use std::io::IoSlice;
use std::net::TcpStream;

const PAGE: usize = 25;
const CLIENTS: usize = 6;
const QUERIES_PER_CLIENT: usize = 30;

fn main() {
    // --- the service: query(term: string) -> (ids: int[], scores: double[]) ---
    let request_op = OpDesc::single(
        "query",
        "urn:search",
        "term",
        TypeDesc::Scalar(ScalarKind::Str),
    );
    let response_params = vec![
        ParamDesc {
            name: "ids".into(),
            desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Int)),
        },
        ParamDesc {
            name: "scores".into(),
            desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        },
    ];
    // Stuffed numeric fields: score changes never shift the response
    // template, keeping the perfect-structural path hot.
    let config = EngineConfig::paper_default().with_width(WidthPolicy::Max);
    let mut svc = Service::new("urn:search", config);
    svc.register(request_op.clone(), response_params, move |args| {
        let Value::Str(term) = &args[0] else {
            return Err("expected string".into());
        };
        // Deterministic "index": results depend weakly on the query, so
        // popular repeated queries produce identical pages and slightly
        // different queries overlap heavily.
        let h = term
            .bytes()
            .fold(0u64, |a, b| a.wrapping_mul(31).wrapping_add(b as u64));
        let ids: Vec<i32> = (0..PAGE)
            .map(|i| ((h as i32) & 0xFFFF) + i as i32)
            .collect();
        let scores: Vec<f64> = (0..PAGE)
            .map(|i| 1.0 - (i as f64) * 0.01 - ((h % 7) as f64) * 0.001)
            .collect();
        Ok(vec![Value::IntArray(ids), Value::DoubleArray(scores)])
    });

    let server = HttpServer::spawn(svc).expect("bind loopback");
    println!("query service on {}", server.addr());

    // --- clients: a few hot queries, a tail of variants ---
    let addr = server.addr();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let cfg = RequestConfig {
                    path: "/search".into(),
                    host: "localhost".into(),
                    soap_action: "urn:search#query".into(),
                    version: HttpVersion::Http11Length,
                    extra_headers: Vec::new(),
                };
                let mut conn = TcpStream::connect(addr).expect("connect");
                let mut scratch = Vec::new();
                let client_config = EngineConfig::paper_default();
                for q in 0..QUERIES_PER_CLIENT {
                    // 70% hot query, 30% variants.
                    let term = if q % 10 < 7 {
                        "grid computing".to_owned()
                    } else {
                        format!("grid computing {}", (c + q) % 4)
                    };
                    let body = MessageTemplate::build(
                        client_config,
                        &OpDesc::single(
                            "query",
                            "urn:search",
                            "term",
                            TypeDesc::Scalar(ScalarKind::Str),
                        ),
                        &[Value::Str(term)],
                    )
                    .expect("request build")
                    .to_bytes();
                    post_gather(&mut conn, &cfg, &[IoSlice::new(&body)], &mut scratch)
                        .expect("post");
                    let (status, _) = read_response(&mut conn).expect("response");
                    assert_eq!(status, 200);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let stats = server.stop();
    let total = stats.requests;
    println!("\n{total} queries served across {CLIENTS} clients");
    println!(
        "request parsing:   full={:<4} differential={:<4} identical={:<4}",
        stats.requests_full_parse, stats.requests_differential, stats.requests_identical
    );
    println!(
        "response serialization: first={:<4} content={:<4} perfect={:<4} partial={:<4}",
        stats.responses_first,
        stats.responses_content,
        stats.responses_perfect,
        stats.responses_partial
    );
    let patched = stats.responses_content + stats.responses_perfect;
    println!(
        "\n{:.0}% of responses avoided full serialization — the §3.4 claim for\n\
         heavily-used servers, realized by one shared response template.",
        100.0 * patched as f64 / total as f64
    );
}
