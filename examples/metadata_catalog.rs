//! Metadata Catalog Service scenario (paper §3.4), end to end over HTTP.
//!
//! "A general metadata schema is used to specify all the attributes
//! associated with each file. … Since each request sent by a user conforms
//! to the metadata schema, the format of the SOAP payload is the same for
//! each request. bSOAP perfect structural match can therefore be used to
//! improve the performance of MCS."
//!
//! The client registers a stream of file records against a fixed metadata
//! schema, POSTing each request over HTTP/1.1 to a collecting server. The
//! server runs **differential deserialization** (paper §6): identical
//! skeletons let it re-parse only the attribute values that changed.
//!
//! Run with: `cargo run --release --example metadata_catalog`

use bsoap::convert::ScalarKind;
use bsoap::deser::{DiffDeserializer, DiffOutcome};
use bsoap::transport::http::{HttpVersion, RequestConfig};
use bsoap::transport::tcp::{Framing, TcpTransport};
use bsoap::transport::{ServerMode, TestServer, Transport};
use bsoap::{OpDesc, ParamDesc, TypeDesc, Value, WidthPolicy};

fn mcs_op() -> OpDesc {
    // addMetadata(logicalName, sizeBytes, checksum, createdUnix, replicas)
    OpDesc::new(
        "addMetadata",
        "urn:mcs",
        vec![
            ParamDesc {
                name: "logicalName".into(),
                desc: TypeDesc::Scalar(ScalarKind::Str),
            },
            ParamDesc {
                name: "sizeBytes".into(),
                desc: TypeDesc::Scalar(ScalarKind::Long),
            },
            ParamDesc {
                name: "checksum".into(),
                desc: TypeDesc::Scalar(ScalarKind::Long),
            },
            ParamDesc {
                name: "createdUnix".into(),
                desc: TypeDesc::Scalar(ScalarKind::Long),
            },
            ParamDesc {
                name: "replicas".into(),
                desc: TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Int)),
            },
        ],
    )
}

fn main() {
    let op = mcs_op();
    let server = TestServer::spawn(ServerMode::Collect).expect("bind loopback");
    println!("MCS front-end on {}", server.addr());

    let cfg = RequestConfig {
        path: "/mcs".into(),
        host: "localhost".into(),
        soap_action: "urn:mcs#addMetadata".into(),
        version: HttpVersion::Http11Length,
        extra_headers: Vec::new(),
    };
    let mut transport = TcpTransport::connect(server.addr(), Framing::Http(cfg)).expect("connect");

    // Stuff numeric fields to full width so every request is a perfect
    // structural match (names are kept fixed-length for the same reason —
    // the schema "specifies all the attributes", including their shape).
    let config = bsoap::EngineConfig::paper_default().with_width(WidthPolicy::Max);
    let mut client = bsoap::Client::new(config);

    const REQUESTS: usize = 200;
    for i in 0..REQUESTS {
        let args = vec![
            Value::Str(format!("lfn://climate/run42/chunk-{i:06}.nc")),
            Value::Long(1 << 28 | i as i64),
            Value::Long(0x00C0FFEE ^ (i as i64 * 2_654_435_761)),
            Value::Long(1_088_640_000 + i as i64 * 3600),
            Value::IntArray(vec![(i % 7) as i32, ((i * 3) % 11) as i32, 2]),
        ];
        client
            .call_via("http://mcs/svc", &op, &args, |slices| {
                transport.send_message(slices)
            })
            .unwrap();
        // Each POST gets a 200 ack; drain it to keep the connection clean.
        let (status, _) = bsoap::transport::http::read_response(transport.stream()).unwrap();
        assert_eq!(status, 200);
    }
    let client_stats = client.stats();
    transport.finish().unwrap();
    drop(transport);

    // --- server side: replay the collected bodies through the
    //     differential deserializer ---
    let requests = server.stop_collecting();
    assert_eq!(requests.len(), REQUESTS);
    let mut deser = DiffDeserializer::new(op);
    let mut identical = 0usize;
    let mut differential = 0usize;
    let mut full = 0usize;
    for req in &requests {
        let (_args, outcome) = deser.deserialize(&req.body).unwrap();
        match outcome {
            DiffOutcome::Identical => identical += 1,
            DiffOutcome::Differential { .. } => differential += 1,
            DiffOutcome::FullParse => full += 1,
        }
    }
    let s = deser.stats();

    println!(
        "\nclient: {} requests — tiers: first={} content={} perfect={} partial={}",
        client_stats.calls(),
        client_stats.first_time,
        client_stats.content_match,
        client_stats.perfect_structural,
        client_stats.partial_structural
    );
    println!("server: full parses={full} differential={differential} identical={identical}");
    println!(
        "        leaves re-parsed {} / skipped {} ({:.1}% skipped)",
        s.leaves_reparsed,
        s.leaves_skipped,
        100.0 * s.leaves_skipped as f64 / (s.leaves_reparsed + s.leaves_skipped).max(1) as f64
    );
    println!(
        "        reference message retained: {} bytes",
        deser.retained_bytes()
    );
}
