//! Condor flocking scenario (paper §3.4): ClassAd-style resource reports.
//!
//! "Flocks of Condor systems exchange ClassAd information to describe the
//! resources in various Condor clusters … information will be similar in
//! structure and even content (if resource characteristics do not change)
//! across multiple consecutive exchanges. Therefore, bSOAP would be able
//! to automatically reserialize only the differences from previous
//! exchanges."
//!
//! A pool of worker nodes reports its ClassAds every cycle. Static
//! attributes (cpus, memory) never change; load and state change rarely.
//! Most cycles are content matches; the rest are perfect structural
//! matches with tiny dirty sets. The example prints the tier histogram
//! and the fraction of leaf values ever rewritten.
//!
//! Run with: `cargo run --release --example condor_flock`

use bsoap::convert::ScalarKind;
use bsoap::transport::SinkTransport;
use bsoap::{Client, OpDesc, TypeDesc, Value, WidthPolicy};

const NODES: usize = 300;
const CYCLES: usize = 100;

/// ClassAd: [slotId, cpus, memoryMb, loadX1000, claimed(0/1)] as a struct
/// of ints plus a double for load average.
fn classad_type() -> TypeDesc {
    TypeDesc::Struct {
        name: "classad".into(),
        fields: vec![
            ("slotId".into(), TypeDesc::Scalar(ScalarKind::Int)),
            ("cpus".into(), TypeDesc::Scalar(ScalarKind::Int)),
            ("memoryMb".into(), TypeDesc::Scalar(ScalarKind::Int)),
            ("load".into(), TypeDesc::Scalar(ScalarKind::Double)),
            ("claimed".into(), TypeDesc::Scalar(ScalarKind::Bool)),
        ],
    }
}

struct Node {
    slot: i32,
    cpus: i32,
    memory: i32,
    load: f64,
    claimed: bool,
}

fn main() {
    let op = OpDesc::single(
        "reportResources",
        "urn:condor",
        "ads",
        TypeDesc::array_of(classad_type()),
    );
    // Stuffed widths so load fluctuations never shift the template.
    let mut client = Client::new(bsoap::EngineConfig::paper_default().with_width(WidthPolicy::Max));
    let mut sink = SinkTransport::new();

    let mut nodes: Vec<Node> = (0..NODES)
        .map(|i| Node {
            slot: i as i32,
            cpus: 4 + (i % 3) as i32 * 4,
            memory: 8192 * (1 + (i % 4) as i32),
            load: 0.25,
            claimed: i % 5 == 0,
        })
        .collect();

    let ads = |nodes: &[Node]| {
        Value::Array(
            nodes
                .iter()
                .map(|n| {
                    Value::Struct(vec![
                        Value::Int(n.slot),
                        Value::Int(n.cpus),
                        Value::Int(n.memory),
                        Value::Double(n.load),
                        Value::Bool(n.claimed),
                    ])
                })
                .collect(),
        )
    };

    // Deterministic xorshift for "rare" state changes.
    let mut seed = 0xDEADBEEFu64;
    let mut rand = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };

    let mut values_rewritten = 0u64;
    for cycle in 0..CYCLES {
        // ~3% of nodes see a load change; ~1% flip claim state.
        for n in nodes.iter_mut() {
            let r = rand();
            if r % 100 < 3 {
                n.load = ((r >> 32) % 4000) as f64 / 1000.0;
            }
            if r % 1000 < 10 {
                n.claimed = !n.claimed;
            }
        }
        let r = client
            .call("condor://central-manager", &op, &[ads(&nodes)], &mut sink)
            .unwrap();
        values_rewritten += r.values_written as u64;
        if cycle < 3 || cycle == CYCLES - 1 {
            println!(
                "cycle {:>3}: tier {:<24} {:>4} of {} leaves rewritten",
                cycle,
                r.tier.name(),
                r.values_written,
                NODES * 5
            );
        }
    }

    let stats = client.stats();
    println!(
        "\n{} cycles x {} nodes ({} leaves per message)",
        CYCLES,
        NODES,
        NODES * 5
    );
    println!(
        "tiers: first={} content={} perfect={} partial={}",
        stats.first_time, stats.content_match, stats.perfect_structural, stats.partial_structural
    );
    let total_leaves = (CYCLES as u64) * (NODES as u64) * 5;
    println!(
        "leaves rewritten: {} of {} sent ({:.2}%) — everything else rode the template",
        values_rewritten,
        total_leaves,
        100.0 * values_rewritten as f64 / total_leaves as f64
    );
    println!("bytes shipped: {}", stats.bytes_sent);
}
