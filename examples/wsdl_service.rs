//! Driving the stack from a WSDL service description.
//!
//! "WSDL provides a precise description of a Web Service interface and of
//! the communication protocols it supports" (paper §1). This example
//! publishes a service description, then configures *both* sides from it:
//! the client builds its operations, SOAPAction headers, and endpoint
//! from the parsed WSDL; the server parses incoming envelopes against the
//! same description.
//!
//! Run with: `cargo run --release --example wsdl_service`

use bsoap::convert::ScalarKind;
use bsoap::deser::DiffDeserializer;
use bsoap::transport::http::{HttpVersion, RequestConfig};
use bsoap::transport::tcp::{Framing, TcpTransport};
use bsoap::transport::{ServerMode, TestServer, Transport};
use bsoap::wsdl::{parse_wsdl, write_wsdl, ServiceDesc};
use bsoap::{Client, OpDesc, TypeDesc, Value};

fn main() {
    // --- 1. The service owner publishes a WSDL ---
    let published = ServiceDesc {
        name: "Telemetry".into(),
        namespace: "urn:telemetry".into(),
        endpoint: "http://replaced.at.runtime/telemetry".into(),
        operations: vec![OpDesc::single(
            "pushSamples",
            "urn:telemetry",
            "samples",
            TypeDesc::array_of(TypeDesc::Scalar(ScalarKind::Double)),
        )],
    };
    let wsdl_xml = write_wsdl(&published);
    println!("published WSDL ({} bytes):\n", wsdl_xml.len());
    for line in wsdl_xml.lines().take(8) {
        println!("  {line}");
    }
    println!("  …\n");

    // --- 2. The client configures itself from the WSDL ---
    let svc = parse_wsdl(wsdl_xml.as_bytes()).expect("well-formed WSDL");
    let op = svc
        .operation("pushSamples")
        .expect("described operation")
        .clone();

    let server = TestServer::spawn(ServerMode::Collect).expect("bind");
    let cfg = RequestConfig {
        path: "/telemetry".into(),
        host: "localhost".into(),
        soap_action: svc.soap_action("pushSamples"),
        version: HttpVersion::Http11Length,
        extra_headers: Vec::new(),
    };
    let mut transport = TcpTransport::connect(server.addr(), Framing::Http(cfg)).expect("connect");
    let mut client = Client::with_defaults();

    let mut samples: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin()).collect();
    for round in 0..20 {
        samples[round * 12 % 256] += 0.5;
        client
            .call_via(
                &svc.endpoint,
                &op,
                &[Value::DoubleArray(samples.clone())],
                |s| transport.send_message(s),
            )
            .unwrap();
        let (status, _) = bsoap::transport::http::read_response(transport.stream()).unwrap();
        assert_eq!(status, 200);
    }
    transport.finish().unwrap();
    drop(transport);

    // --- 3. The server parses against the same description ---
    let requests = server.stop_collecting();
    let mut deser = DiffDeserializer::new(op);
    for req in &requests {
        assert_eq!(
            req.head.header("soapaction").map(|s| s.trim_matches('"')),
            Some(svc.soap_action("pushSamples").as_str()),
            "SOAPAction from the WSDL rode every request"
        );
        deser.deserialize(&req.body).unwrap();
    }

    let cs = client.stats();
    let ds = deser.stats();
    println!(
        "client tiers: first={} content={} perfect={} partial={}",
        cs.first_time, cs.content_match, cs.perfect_structural, cs.partial_structural
    );
    println!(
        "server paths: full={} differential={} identical={} (leaves skipped: {})",
        ds.full_parses, ds.differential, ds.identical, ds.leaves_skipped
    );
    println!("\nboth sides agreed on the interface without sharing a line of code —");
    println!("only the {}-byte WSDL document.", wsdl_xml.len());
}
