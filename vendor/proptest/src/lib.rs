//! Offline subset of the `proptest` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so this vendored crate implements the slice of proptest's API the
//! workspace's property tests actually use: the [`proptest!`] macro,
//! strategies ([`Strategy`], ranges, tuples, [`strategy::Just`],
//! `prop_oneof!`, `prop_map`/`prop_filter`, [`collection::vec`],
//! [`collection::hash_set`], [`char::range`], regex-subset string
//! strategies) and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case reports its per-case seed instead, and
//!   generation is deterministic (seeded from the test name), so a failure
//!   reproduces by rerunning the test;
//! * no persistence — `.proptest-regressions` files are ignored;
//! * `PROPTEST_CASES` in the environment overrides every test's case
//!   count (used by CI to trade coverage for wall-clock time).

pub mod test_runner {
    /// Result carrier for one generated case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was vacuous (`prop_assume!` failed) — try another.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    /// Per-test configuration (subset: case count only).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Config {
        /// Configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic splitmix64 generator.
    pub struct TestRng(u64);

    impl TestRng {
        /// Construct from a seed.
        pub fn seeded(seed: u64) -> Self {
            TestRng(seed)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Modulo bias is irrelevant for test generation purposes.
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn seed_from_name(name: &str) -> u64 {
        // FNV-1a over the test name keeps runs deterministic per test.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        h
    }

    /// Drive one property test: generate cases until `config.cases`
    /// succeed, skipping rejected (assumed-away) cases, panicking with the
    /// per-case seed on the first failure.
    pub fn run<F>(name: &str, config: &Config, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let cases = match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(config.cases),
            Err(_) => config.cases,
        };
        // `PROPTEST_SEED` perturbs the per-name seed so CI can run a
        // genuinely fresh schedule pass (e.g. seeded from the run id) on
        // top of the deterministic default. Failures still report the
        // per-case seed, which reproduces regardless of this knob.
        let run_seed = match std::env::var("PROPTEST_SEED") {
            Ok(v) => v.parse().unwrap_or(0u64),
            Err(_) => 0,
        };
        // `PROPTEST_CASE_SEED` (hex or decimal) replays exactly the one
        // case a failure message named, for every proptest in the binary
        // — the direct reproduction path for a CI-reported seed.
        if let Ok(v) = std::env::var("PROPTEST_CASE_SEED") {
            let v = v.trim();
            let parsed = match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            if let Ok(case_seed) = parsed {
                let mut rng = TestRng::seeded(case_seed);
                match f(&mut rng) {
                    Ok(()) | Err(TestCaseError::Reject(_)) => return,
                    Err(TestCaseError::Fail(msg)) => panic!(
                        "proptest case failed: {name} (replayed case seed \
                         {case_seed:#018x}):\n{msg}"
                    ),
                }
            }
        }
        let mut seeder = TestRng::seeded(seed_from_name(name) ^ run_seed);
        let mut done = 0u32;
        let mut rejects = 0u64;
        let max_rejects = cases as u64 * 50 + 1000;
        while done < cases {
            let case_seed = seeder.next_u64();
            let mut rng = TestRng::seeded(case_seed);
            match f(&mut rng) {
                Ok(()) => done += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    assert!(
                        rejects <= max_rejects,
                        "{name}: too many rejected cases ({rejects}) — \
                         prop_assume/filter conditions are too strict"
                    );
                }
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest case failed: {name} (after {done} passing cases, \
                     case seed {case_seed:#018x}):\n{msg}"
                ),
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    ///
    /// Unlike real proptest there is no value tree: `new_value` yields the
    /// final value directly (no shrinking).
    pub trait Strategy {
        /// The value type produced.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Keep only values satisfying `f` (resampling on rejection).
        fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                f,
            }
        }

        /// Type-erase this strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe strategy facade behind [`BoxedStrategy`].
    trait DynStrategy<V> {
        fn new_value_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn new_value_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            self.0.new_value_dyn(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.new_value(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter({}) rejected 10000 samples in a row",
                self.reason
            );
        }
    }

    /// Equal-weight union of same-valued strategies (`prop_oneof!`).
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        /// Union over the given arms (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// `&str` regex-subset strategies: a sequence of character classes
    /// (`[a-z0-9._-]`) or literal characters, each optionally repeated by
    /// `{lo,hi}`. This covers the name/identifier patterns the tests use.
    impl Strategy for &'static str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            gen_from_pattern(self, rng)
        }
    }

    fn gen_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class or a literal char.
            let class: Vec<(char, char)>;
            if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unterminated [class] in pattern")
                    + i;
                class = parse_class(&chars[i + 1..close]);
                i = close + 1;
            } else {
                class = vec![(chars[i], chars[i])];
                i += 1;
            }
            // Optional {lo,hi} repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated {rep} in pattern")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (a.parse().unwrap(), b.parse().unwrap()),
                    None => {
                        let n: usize = body.parse().unwrap();
                        (n, n)
                    }
                }
            } else {
                (1usize, 1usize)
            };
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            let total: u64 = class.iter().map(|&(a, b)| b as u64 - a as u64 + 1).sum();
            for _ in 0..n {
                let mut pick = rng.below(total);
                for &(a, b) in &class {
                    let span = b as u64 - a as u64 + 1;
                    if pick < span {
                        out.push(char::from_u32(a as u32 + pick as u32).expect("ascii class"));
                        break;
                    }
                    pick -= span;
                }
            }
        }
        out
    }

    fn parse_class(body: &[char]) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                ranges.push((body[i], body[i + 2]));
                i += 3;
            } else {
                ranges.push((body[i], body[i]));
                i += 1;
            }
        }
        ranges
    }

    /// `any::<T>()` support trait (subset of proptest's `Arbitrary`).
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary_value(rng: &mut TestRng) -> u128 {
            (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary_value(rng: &mut TestRng) -> i128 {
            u128::arbitrary_value(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary_value(rng: &mut TestRng) -> char {
            loop {
                if let Some(c) = char::from_u32((rng.next_u64() % 0x11_0000) as u32) {
                    return c;
                }
            }
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_value(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    /// Strategy returned by [`any`].
    pub struct ArbitraryStrategy<A>(std::marker::PhantomData<A>);

    impl<A: Arbitrary> Strategy for ArbitraryStrategy<A> {
        type Value = A;
        fn new_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary_value(rng)
        }
    }

    /// Unconstrained values of `A` — proptest's `any::<A>()`.
    pub fn any<A: Arbitrary>() -> ArbitraryStrategy<A> {
        ArbitraryStrategy(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Element-count specification for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// `Vec` strategy over an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vectors of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.new_value(rng)).collect()
        }
    }

    /// `HashSet` strategy over an element strategy.
    pub struct HashSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Hash sets of `size` distinct elements drawn from `elem`.
    pub fn hash_set<S>(elem: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = HashSet::with_capacity(n);
            let mut tries = 0;
            while out.len() < n {
                out.insert(self.elem.new_value(rng));
                tries += 1;
                if tries > 1000 + n * 100 {
                    // Element domain smaller than requested size; return
                    // what we have (still within the size range's intent).
                    break;
                }
            }
            out
        }
    }
}

pub mod char {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy over an inclusive character range.
    pub struct CharRange {
        lo: u32,
        hi: u32,
    }

    /// Characters in `[lo, hi]` inclusive.
    pub fn range(lo: char, hi: char) -> CharRange {
        assert!(lo <= hi);
        CharRange {
            lo: lo as u32,
            hi: hi as u32,
        }
    }

    impl Strategy for CharRange {
        type Value = char;
        fn new_value(&self, rng: &mut TestRng) -> char {
            loop {
                let v = self.lo + rng.below((self.hi - self.lo + 1) as u64) as u32;
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Subset of proptest's macro: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// parameters are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::test_runner::run(stringify!($name), &config, |rng| {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), rng);)+
                    let run_case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    run_case()
                });
            }
        )*
    };
}

/// Equal-weight choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Skip this case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail this case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)),
            ));
        }
    };
}

/// Fail this case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
                    l, r, format!($($fmt)*)
                ),
            ));
        }
    }};
}

/// Fail this case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `left != right`\n  both: `{:?}`", l),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `left != right`\n  both: `{:?}`: {}",
                    l, format!($($fmt)*)
                ),
            ));
        }
    }};
}
