//! Offline subset of `parking_lot`, backed by `std::sync`.
//!
//! The build environment for this repository cannot reach crates.io, so
//! this vendored crate provides the `Mutex`/`RwLock` surface the
//! workspace uses, delegating to the standard library. Like real
//! parking_lot (and unlike raw `std::sync`), locks do not expose
//! poisoning: a lock held by a panicking thread is simply re-acquired.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion wrapper matching parking_lot's no-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Unwrap the value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (ignores poisoning, like parking_lot).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock wrapper matching parking_lot's no-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Unwrap the value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
