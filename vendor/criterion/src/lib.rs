//! Offline subset of the `criterion` crate.
//!
//! The build environment for this repository cannot reach crates.io, so
//! this vendored crate implements the slice of criterion's API the bench
//! targets use: `Criterion`, `benchmark_group`/`bench_function`,
//! `BenchmarkId`, `Bencher::iter`/`iter_batched`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Differences from real criterion:
//!
//! * measurement is a plain warm-up + timed-loop mean (no outlier
//!   analysis, no plots, no saved baselines);
//! * every run appends a machine-readable summary to
//!   `BENCH_<bench-name>.json` in the working directory (criterion's
//!   `target/criterion` tree is not produced) — this is what the repo's
//!   perf-trajectory tooling consumes;
//! * command-line flags are accepted and ignored (so `cargo bench`
//!   filter arguments do not error).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One recorded measurement.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Full benchmark path `group/id`.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Iterations measured.
    pub iters: u64,
}

/// Top-level harness state (subset of criterion's `Criterion`).
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    results: Vec<Sample>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(500),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Set the nominal number of samples (kept for API compatibility; the
    /// subset uses it only to bound the timed loop).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Set the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }

    /// Run a benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().label;
        self.run_one(id, f);
    }

    /// All samples recorded so far.
    pub fn results(&self) -> &[Sample] {
        &self.results
    }

    fn run_one<F>(&mut self, id: String, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        eprintln!("{id:<60} {:>12.1} ns/iter ({} iters)", b.mean_ns, b.iters);
        self.results.push(Sample {
            id,
            mean_ns: b.mean_ns,
            iters: b.iters,
        });
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().label);
        self.c.run_one(full, f);
        self
    }

    /// Finish the group (no-op in the subset; exists for API parity).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// How `iter_batched` amortizes setup cost (accepted and ignored).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: discover a per-call cost estimate while warming caches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_call = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;

        // Measure in batches sized so clock reads do not dominate.
        let batch = ((1000.0 / per_call.max(0.5)) as u64).clamp(1, 10_000);
        let mut total_ns = 0u128;
        let mut total_iters = 0u64;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measurement_time {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total_ns += t.elapsed().as_nanos();
            total_iters += batch;
        }
        self.mean_ns = total_ns as f64 / total_iters.max(1) as f64;
        self.iters = total_iters;
    }

    /// Measure `routine` on fresh inputs produced by `setup` (setup time
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            let input = setup();
            black_box(routine(input));
        }

        let mut total_ns = 0u128;
        let mut total_iters = 0u64;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measurement_time {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total_ns += t.elapsed().as_nanos();
            total_iters += 1;
        }
        self.mean_ns = total_ns as f64 / total_iters.max(1) as f64;
        self.iters = total_iters;
    }
}

/// Write all recorded samples as a JSON summary: `BENCH_<name>.json`.
///
/// Called by `criterion_main!` after every group has run. The file lands
/// in the working directory (the workspace root under `cargo bench`).
pub fn write_summary_json(bench_name: &str, results: &[Sample]) {
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"bench\": \"{bench_name}\",\n"));
    json.push_str("  \"results\": [\n");
    for (i, s) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"id\": \"{}\", \"mean_ns\": {:.2}, \"iters\": {}}}{}\n",
            s.id.replace('"', "'"),
            s.mean_ns,
            s.iters,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = format!("BENCH_{bench_name}.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("wrote {path}");
    }
}

/// Best-effort bench name from the executable path (strips the trailing
/// `-<hash>` cargo appends to bench binaries).
pub fn bench_name_from_exe() -> String {
    let exe = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&exe)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_owned();
    match stem.rsplit_once('-') {
        Some((name, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            name.to_owned()
        }
        _ => stem,
    }
}

/// Declare a benchmark group function (subset: `name`/`config`/`targets`
/// form and the positional form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() -> $crate::Criterion {
            let mut c = $config;
            $($target(&mut c);)+
            c
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running the given groups and writing the JSON summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let name = $crate::bench_name_from_exe();
            let mut all: Vec<$crate::Sample> = Vec::new();
            $(
                let c = $group();
                all.extend(c.results().iter().cloned());
            )+
            $crate::write_summary_json(&name, &all);
        }
    };
}
